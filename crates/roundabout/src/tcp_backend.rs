//! The loopback-TCP backend: the ring over real kernel sockets.
//!
//! This is the third driver of the sans-IO [`crate::protocol`] core — and
//! the second, after [`crate::sim_backend::SimRing`], that feeds the
//! coordinator-style [`RingProtocol`] directly. Where the simulator maps
//! protocol [`Output`]s onto virtual-time events and the thread backend
//! maps per-hop policies onto bounded channels, this backend maps them
//! onto `std::net` TCP streams:
//!
//! * **Framing** — every message is `[kind: u8][len: u32 LE][body]`
//!   ([`encode_envelope`], [`encode_ack`], [`encode_hello`]), decoded
//!   incrementally by [`FrameDecoder`] so partial reads and short writes
//!   at arbitrary byte boundaries reassemble cleanly. Malformed bytes
//!   become typed [`FrameError`]s, never panics.
//! * **Ring setup** — each host binds a listener on `127.0.0.1:0` (the
//!   kernel assigns the port, so concurrent test runs never race), and
//!   every connection is confirmed with a seeded hello handshake before
//!   any envelope moves.
//! * **Threads per hop** — each endpoint of a connection gets a reader
//!   thread (socket → [`FrameDecoder`] → typed [`Input`]s) and a writer
//!   thread (frame queue → `write_all`). A single coordinator thread owns
//!   the [`RingProtocol`] and is the only place protocol state mutates.
//! * **Backpressure** — the protocol's credit accounting gates every
//!   `Send`; the wire-free credit ([`Input::SendDone`]) is reported only
//!   after `write_all` returned, so a full kernel socket buffer holds the
//!   protocol's send credit exactly like a busy NIC.
//! * **Faults** — the [`FaultPlan`] dice run driver-side, keyed on the
//!   per-sender wire sequence (the numbering all three backends share):
//!   dropped attempts never reach the socket, corrupted attempts cross it
//!   with a flipped checksum, and every fate is reported through
//!   [`RingProtocol::attempt_fate`]. A scheduled crash severs the host's
//!   outgoing connections with a real FIN, so mid-revolution ring healing
//!   runs over actual sockets.
//!
//! The crash sever is deliberately a *write-side* shutdown queued behind
//! the host's pending frames: the driver contract says an attempt whose
//! fate was already reported as live must still arrive, so the FIN goes
//! out only after those bytes flushed. The dead host's read side stays
//! open — frames already in flight toward it reach the protocol's salvage
//! path, exactly as on the simulator's medium.
//!
//! Wall-clock differences from the simulator are expected (real sockets,
//! real threads); the per-host retransmit/checksum *counters* are not —
//! the three-way parity suite pins them to the sim and thread backends.
//! A fault plan's `slow_host` factor is ignored here: the join callback's
//! real execution time governs.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use simnet::fault::{FaultPlan, RescalePlan};
use simnet::span::{counter, SpanKind, SpanTracer, Track};
use simnet::time::{SimDuration, SimTime};
use simnet::topology::HostId;

use crate::config::RingConfig;
use crate::envelope::{Envelope, FragmentId, PayloadBytes};
use crate::error::{FrameError, RingError};
use crate::metrics::{HostMetrics, RingMetrics};
use crate::protocol::{
    envelope_batches, query_batches, teardown, Input, Output, ProtocolConfig, RingProtocol, Timer,
};
use crate::thread_backend::{finish_spans, run_single_host, ErrorCollector, SharedSpans};

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

/// Frame kind: connection handshake (`nonce: u64, host: u32`).
pub const KIND_HELLO: u8 = 1;
/// Frame kind: a circulating envelope (48-byte header + payload).
pub const KIND_ENVELOPE: u8 = 2;
/// Frame kind: a transfer acknowledgement (`tid: u64`).
pub const KIND_ACK: u8 = 3;

/// Largest body a frame may claim; longer prefixes are corruption (or a
/// stranger speaking another protocol) and decode to
/// [`FrameError::Oversized`].
pub const MAX_FRAME: u32 = 1 << 28;

/// Bytes of the frame prefix: kind byte plus little-endian length.
const FRAME_HEADER: usize = 5;
/// Fixed bytes of an envelope body before the payload: tid, fragment id,
/// origin, hops remaining, wire sequence, checksum, visited mask, query id.
const ENVELOPE_HEADER: usize = 52;
/// Bytes of a hello body: nonce plus host id.
const HELLO_BODY: usize = 12;
/// Bytes of an ack body: the transfer id.
const ACK_BODY: usize = 8;

/// Most frames a writer batches into one vectored submission. Bounds the
/// pooled buffers held out of circulation per writer while still letting
/// a burst of small acks/envelopes leave in a single syscall.
pub(crate) const MAX_WRITE_BATCH: usize = 16;

/// Watchdog teardown reason (driver-local; not part of the shared
/// protocol cascade).
const STALLED: &str = "tcp ring stalled: no event arrived within the watchdog window";
/// Invariant: [`Output::StartJoin`] always has a payload in the slot.
const EMPTY_SLOT: &str = "StartJoin with an empty processing slot";
/// Invariant: [`Output::Ack`] is only emitted while a delivery is being
/// processed, which names the acking host.
const ACK_OUT_OF_CONTEXT: &str = "ack emitted outside a delivery context";

/// A payload type that can cross a byte-oriented transport.
///
/// The simulated and threaded backends move payloads by value; TCP moves
/// bytes. Implementations must round-trip exactly — the envelope checksum
/// taken at origination is verified on the decoded payload, so a lossy
/// codec would masquerade as wire corruption.
pub trait WirePayload: PayloadBytes + Sized {
    /// Exact number of bytes [`WirePayload::encode_payload`] will append —
    /// frame buffers are sized from this before encoding, so an
    /// underestimate costs a mid-encode reallocation and copy of
    /// everything written so far.
    fn payload_wire_len(&self) -> usize;
    /// Appends this payload's wire bytes to `out`.
    fn encode_payload(&self, out: &mut Vec<u8>);
    /// Reconstructs a payload from its wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::BadPayload`] when the bytes are not a valid
    /// encoding (truncated tables, impossible partition counts, …).
    fn decode_payload(bytes: &[u8]) -> Result<Self, FrameError>;
}

impl WirePayload for Vec<u8> {
    fn payload_wire_len(&self) -> usize {
        self.len()
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }

    fn decode_payload(bytes: &[u8]) -> Result<Self, FrameError> {
        Ok(bytes.to_vec())
    }
}

impl WirePayload for relation::Relation {
    fn payload_wire_len(&self) -> usize {
        relation::wire::encoded_len(self.len())
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        relation::wire::encode_into(self, out);
    }

    fn decode_payload(bytes: &[u8]) -> Result<Self, FrameError> {
        relation::wire::decode(bytes).map_err(|_| FrameError::BadPayload("relation wire format"))
    }
}

/// Prepared-fragment wire tags (one byte ahead of the relation bytes).
const TAG_PLAIN: u8 = 0;
const TAG_SORTED: u8 = 1;
const TAG_HASH: u8 = 2;

impl WirePayload for mem_joins::PreparedFragment {
    fn payload_wire_len(&self) -> usize {
        match self {
            mem_joins::PreparedFragment::Plain(rel) => 1 + relation::wire::encoded_len(rel.len()),
            mem_joins::PreparedFragment::Sorted(run) => {
                1 + relation::wire::encoded_len(run.as_relation().len())
            }
            mem_joins::PreparedFragment::HashPartitioned(parts) => {
                1 + 4
                    + 4
                    + parts
                        .partitions()
                        .iter()
                        .map(|p| 4 + relation::wire::encoded_len(p.len()))
                        .sum::<usize>()
            }
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            mem_joins::PreparedFragment::Plain(rel) => {
                out.push(TAG_PLAIN);
                relation::wire::encode_into(rel, out);
            }
            mem_joins::PreparedFragment::Sorted(run) => {
                out.push(TAG_SORTED);
                relation::wire::encode_into(run.as_relation(), out);
            }
            mem_joins::PreparedFragment::HashPartitioned(parts) => {
                out.push(TAG_HASH);
                out.extend_from_slice(&parts.bits().to_le_bytes());
                out.extend_from_slice(&(parts.partitions().len() as u32).to_le_bytes());
                for p in parts.partitions() {
                    // The per-partition length prefix is a pure function
                    // of the tuple count, so it can be written *before*
                    // the bytes — no staging copy of the encoding.
                    let enc_len = relation::wire::encoded_len(p.len());
                    out.extend_from_slice(&(enc_len as u32).to_le_bytes());
                    relation::wire::encode_into(p, out);
                }
            }
        }
    }

    fn decode_payload(bytes: &[u8]) -> Result<Self, FrameError> {
        let Some(&tag) = bytes.first() else {
            return Err(FrameError::BadPayload("empty prepared-fragment payload"));
        };
        let rest = bytes.get(1..).unwrap_or_default();
        match tag {
            TAG_PLAIN => {
                let rel = relation::Relation::decode_payload(rest)?;
                Ok(mem_joins::PreparedFragment::Plain(rel))
            }
            TAG_SORTED => {
                let rel = relation::Relation::decode_payload(rest)?;
                // Validate before constructing: `from_sorted` asserts.
                if !rel.is_sorted_by_key() {
                    return Err(FrameError::BadPayload("sorted-run payload is not sorted"));
                }
                Ok(mem_joins::PreparedFragment::Sorted(
                    mem_joins::SortedRun::from_sorted(rel),
                ))
            }
            TAG_HASH => {
                let bits = read_u32(rest, 0)
                    .ok_or(FrameError::BadPayload("truncated radix partition header"))?;
                let count = read_u32(rest, 4)
                    .ok_or(FrameError::BadPayload("truncated radix partition header"))?;
                if bits > 24 {
                    return Err(FrameError::BadPayload("radix bits out of range"));
                }
                if count as u64 != 1u64 << bits {
                    return Err(FrameError::BadPayload(
                        "partition count does not match radix bits",
                    ));
                }
                let mut at = 8usize;
                let mut partitions = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let len = read_u32(rest, at)
                        .ok_or(FrameError::BadPayload("truncated partition table"))?
                        as usize;
                    at += 4;
                    let seg = rest
                        .get(at..at.saturating_add(len))
                        .ok_or(FrameError::BadPayload("truncated partition body"))?;
                    partitions.push(relation::Relation::decode_payload(seg)?);
                    at += len;
                }
                Ok(mem_joins::PreparedFragment::HashPartitioned(
                    mem_joins::RadixPartitioned::from_parts(bits, partitions),
                ))
            }
            _ => Err(FrameError::BadPayload("unknown prepared-fragment tag")),
        }
    }
}

/// One decoded wire frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame<P> {
    /// Connection handshake, exchanged once per direction at setup.
    Hello {
        /// Seeded pair nonce; a mismatch means a stranger connected.
        nonce: u64,
        /// Host id of the sender.
        host: u32,
    },
    /// A circulating envelope.
    Envelope {
        /// Transfer id from the matching [`Output::Send`] (0 on the
        /// classic path).
        tid: u64,
        /// The envelope, checksum carried verbatim (corruption survives
        /// the codec so the receiver's verification can catch it).
        env: Envelope<P>,
    },
    /// A transfer acknowledgement travelling back to its sender.
    Ack {
        /// The acknowledged transfer.
        tid: u64,
    },
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let s = bytes.get(at..at.checked_add(4)?)?;
    Some(u32::from_le_bytes(s.try_into().ok()?))
}

fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let s = bytes.get(at..at.checked_add(8)?)?;
    Some(u64::from_le_bytes(s.try_into().ok()?))
}

/// Opens a frame in `out`: the kind byte plus a zeroed length prefix,
/// patched by [`close_frame`] once the body is in place. Writing the body
/// directly behind the header keeps every frame a single buffer — no
/// body-then-copy staging.
fn open_frame(out: &mut Vec<u8>, kind: u8, body_hint: usize) {
    out.clear();
    out.reserve(FRAME_HEADER + body_hint);
    out.push(kind);
    out.extend_from_slice(&[0u8; 4]);
}

/// Patches the length prefix of a frame started by [`open_frame`].
///
/// # Errors
///
/// Returns [`FrameError::Oversized`] when the body exceeds [`MAX_FRAME`]
/// — such a frame could never be decoded on the other side.
fn close_frame(out: &mut [u8]) -> Result<(), FrameError> {
    let body_len = out.len().saturating_sub(FRAME_HEADER);
    if body_len > MAX_FRAME as usize {
        return Err(FrameError::Oversized {
            len: u32::MAX,
            max: MAX_FRAME,
        });
    }
    if let Some(prefix) = out.get_mut(1..FRAME_HEADER) {
        prefix.copy_from_slice(&(body_len as u32).to_le_bytes());
    }
    Ok(())
}

/// Encodes a handshake frame.
pub fn encode_hello(nonce: u64, host: u32) -> Vec<u8> {
    let mut out = Vec::new();
    open_frame(&mut out, KIND_HELLO, HELLO_BODY);
    out.extend_from_slice(&nonce.to_le_bytes());
    out.extend_from_slice(&host.to_le_bytes());
    let _ = close_frame(&mut out); // 12-byte body: cannot be oversized
    out
}

/// Encodes an acknowledgement frame.
pub fn encode_ack(tid: u64) -> Vec<u8> {
    let mut out = Vec::new();
    encode_ack_into(tid, &mut out);
    out
}

/// Encodes an acknowledgement frame into a reusable buffer (cleared
/// first).
pub fn encode_ack_into(tid: u64, out: &mut Vec<u8>) {
    open_frame(out, KIND_ACK, ACK_BODY);
    out.extend_from_slice(&tid.to_le_bytes());
    let _ = close_frame(out); // 8-byte body: cannot be oversized
}

/// Encodes an envelope frame.
///
/// # Errors
///
/// Returns [`FrameError::Oversized`] when the payload would exceed
/// [`MAX_FRAME`] — such a frame could never be decoded on the other side.
pub fn encode_envelope<P: WirePayload>(tid: u64, env: &Envelope<P>) -> Result<Vec<u8>, FrameError> {
    let mut out = Vec::new();
    encode_envelope_into(tid, env, &mut out)?;
    Ok(out)
}

/// Encodes an envelope frame into a reusable buffer (cleared first). The
/// buffer is right-sized up front from [`WirePayload::payload_wire_len`],
/// so a pooled buffer that has seen a similar payload before makes the
/// whole encode allocation-free.
///
/// # Errors
///
/// As [`encode_envelope`].
pub fn encode_envelope_into<P: WirePayload>(
    tid: u64,
    env: &Envelope<P>,
    out: &mut Vec<u8>,
) -> Result<(), FrameError> {
    open_frame(
        out,
        KIND_ENVELOPE,
        ENVELOPE_HEADER + env.payload.payload_wire_len(),
    );
    out.extend_from_slice(&tid.to_le_bytes());
    out.extend_from_slice(&(env.id.0 as u64).to_le_bytes());
    out.extend_from_slice(&(env.origin.0 as u32).to_le_bytes());
    out.extend_from_slice(&(env.hops_remaining as u32).to_le_bytes());
    out.extend_from_slice(&env.seq.to_le_bytes());
    out.extend_from_slice(&env.checksum.to_le_bytes());
    out.extend_from_slice(&env.visited.to_le_bytes());
    out.extend_from_slice(&env.query.to_le_bytes());
    env.payload.encode_payload(out);
    close_frame(out)
}

/// Ceiling on the capacity a buffer may keep when it returns to the
/// [`FrameBufPool`]: one outsized envelope must not pin its high-water
/// allocation for the rest of the run.
const MAX_POOLED_CAPACITY: usize = 4 * 1024 * 1024;
/// Ceiling on pooled buffers; beyond it, returning buffers are dropped.
const MAX_POOLED_BUFS: usize = 64;

/// A shared pool of encode buffers. The coordinator draws a buffer per
/// outgoing frame, encodes into it, and the writer thread returns it once
/// `write_all` handed the bytes to the kernel — so the steady state
/// allocates nothing per frame instead of a fresh `Vec` per envelope.
#[derive(Default)]
pub(crate) struct FrameBufPool {
    bufs: std::sync::Mutex<Vec<Vec<u8>>>,
}

impl FrameBufPool {
    /// A recycled buffer, or a fresh empty one when the pool is dry.
    pub(crate) fn take(&self) -> Vec<u8> {
        // A poisoned lock only means some thread panicked mid-push; the
        // pool's contents are plain byte buffers, always safe to reuse.
        let mut bufs = self
            .bufs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        bufs.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool (oversized or surplus ones are freed).
    pub(crate) fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() > MAX_POOLED_CAPACITY {
            return;
        }
        buf.clear();
        let mut bufs = self
            .bufs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if bufs.len() < MAX_POOLED_BUFS {
            bufs.push(buf);
        }
    }
}

/// Incremental frame decoder: feed it byte chunks as they come off a
/// socket, pull complete frames out. Partial frames wait for more bytes;
/// malformed ones surface as typed [`FrameError`]s. The decoder never
/// panics on wire input.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends freshly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Decodes the next complete frame, if one is buffered.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadKind`] for an unknown kind byte,
    /// [`FrameError::Oversized`] for a length prefix beyond [`MAX_FRAME`],
    /// [`FrameError::Truncated`] for a body shorter than its fixed header,
    /// and [`FrameError::BadPayload`] for undecodable payload bytes.
    pub fn next_frame<P: WirePayload>(&mut self) -> Result<Option<Frame<P>>, FrameError> {
        let buf = self.buf.get(self.start..).unwrap_or_default();
        let Some(&kind) = buf.first() else {
            return Ok(None);
        };
        if !matches!(kind, KIND_HELLO | KIND_ENVELOPE | KIND_ACK) {
            return Err(FrameError::BadKind(kind));
        }
        let Some(len) = read_u32(buf, 1) else {
            return Ok(None);
        };
        if len > MAX_FRAME {
            return Err(FrameError::Oversized {
                len,
                max: MAX_FRAME,
            });
        }
        let Some(body) = buf.get(FRAME_HEADER..FRAME_HEADER + len as usize) else {
            return Ok(None);
        };
        let frame = decode_body(kind, body)?;
        self.start += FRAME_HEADER + len as usize;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 64 * 1024 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(Some(frame))
    }
}

fn decode_body<P: WirePayload>(kind: u8, body: &[u8]) -> Result<Frame<P>, FrameError> {
    let needed = match kind {
        KIND_HELLO => HELLO_BODY,
        KIND_ACK => ACK_BODY,
        _ => ENVELOPE_HEADER,
    };
    if body.len() < needed {
        return Err(FrameError::Truncated {
            needed,
            got: body.len(),
        });
    }
    match kind {
        KIND_HELLO => Ok(Frame::Hello {
            nonce: read_u64(body, 0).unwrap_or_default(),
            host: read_u32(body, 8).unwrap_or_default(),
        }),
        KIND_ACK => Ok(Frame::Ack {
            tid: read_u64(body, 0).unwrap_or_default(),
        }),
        KIND_ENVELOPE => {
            let payload = P::decode_payload(body.get(ENVELOPE_HEADER..).unwrap_or_default())?;
            Ok(Frame::Envelope {
                tid: read_u64(body, 0).unwrap_or_default(),
                env: Envelope {
                    id: FragmentId(read_u64(body, 8).unwrap_or_default() as usize),
                    origin: HostId(read_u32(body, 16).unwrap_or_default() as usize),
                    hops_remaining: read_u32(body, 20).unwrap_or_default() as usize,
                    seq: read_u64(body, 24).unwrap_or_default(),
                    checksum: read_u64(body, 32).unwrap_or_default(),
                    visited: read_u64(body, 40).unwrap_or_default(),
                    query: read_u32(body, 48).unwrap_or_default(),
                    payload,
                },
            })
        }
        other => Err(FrameError::BadKind(other)),
    }
}

// ---------------------------------------------------------------------------
// Ring setup: port-0 listeners + seeded hello handshake
// ---------------------------------------------------------------------------

/// splitmix64-style mixer for the handshake nonces.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The hello nonce the `from` side of pair (`from`, `to`) must present.
pub(crate) fn pair_nonce(seed: u64, from: usize, to: usize) -> u64 {
    mix(seed ^ ((from as u64) << 32) ^ (to as u64) ^ 0x5e17_ab1e_c0a5_7e11)
}

/// The full in-process mesh: `endpoints[h][p]` is host `h`'s end of its
/// connection with `p` (None on the diagonal). Healing can route any
/// surviving pair, so every pair gets a socket up front.
pub(crate) struct Mesh {
    pub(crate) endpoints: Vec<Vec<Option<TcpStream>>>,
}

pub(crate) fn socket_err(what: &'static str) -> impl Fn(std::io::Error) -> RingError {
    move |_| RingError::Socket(what)
}

/// Builds the full loopback mesh (every pair connected). Every host binds
/// `127.0.0.1:0` — the kernel assigns a fresh port, so concurrent runs
/// (CI, proptests) never collide — and each connection is confirmed with
/// a two-way seeded hello before it joins the ring.
fn build_mesh(hosts: usize, seed: u64, handshake_timeout: Duration) -> Result<Mesh, RingError> {
    build_mesh_pairs(hosts, seed, handshake_timeout, |_, _| true)
}

/// Builds the loopback mesh restricted to the pairs `want(a, b)` accepts
/// (`a < b`). The reactor driver uses this to open only ring-neighbor
/// sockets on plan-free wide rings, where a full 256-host mesh would
/// exhaust the process fd budget for connections healing can never use.
pub(crate) fn build_mesh_pairs(
    hosts: usize,
    seed: u64,
    handshake_timeout: Duration,
    mut want: impl FnMut(usize, usize) -> bool,
) -> Result<Mesh, RingError> {
    let mut endpoints: Vec<Vec<Option<TcpStream>>> = (0..hosts)
        .map(|_| (0..hosts).map(|_| None).collect())
        .collect();
    for b in 1..hosts {
        let wanted: Vec<usize> = (0..b).filter(|&a| want(a, b)).collect();
        if wanted.is_empty() {
            continue;
        }
        let listener =
            TcpListener::bind(("127.0.0.1", 0)).map_err(socket_err("bind loopback listener"))?;
        let addr = listener
            .local_addr()
            .map_err(socket_err("resolve listener address"))?;
        for a in wanted {
            let connect = TcpStream::connect(addr).map_err(socket_err("connect to ring peer"))?;
            let (accept, _) = listener.accept().map_err(socket_err("accept ring peer"))?;
            handshake(a, b, seed, &connect, &accept, handshake_timeout)?;
            if let Some(row) = endpoints.get_mut(a) {
                if let Some(slot) = row.get_mut(b) {
                    *slot = Some(connect);
                }
            }
            if let Some(row) = endpoints.get_mut(b) {
                if let Some(slot) = row.get_mut(a) {
                    *slot = Some(accept);
                }
            }
        }
    }
    Ok(Mesh { endpoints })
}

/// Confirms one freshly accepted connection in both directions.
fn handshake(
    a: usize,
    b: usize,
    seed: u64,
    connect: &TcpStream,
    accept: &TcpStream,
    timeout: Duration,
) -> Result<(), RingError> {
    for s in [connect, accept] {
        s.set_read_timeout(Some(timeout))
            .map_err(socket_err("set handshake timeout"))?;
    }
    send_hello(connect, pair_nonce(seed, a, b), a)?;
    expect_hello(accept, pair_nonce(seed, a, b), a)?;
    send_hello(accept, pair_nonce(seed, b, a), b)?;
    expect_hello(connect, pair_nonce(seed, b, a), b)?;
    for s in [connect, accept] {
        s.set_read_timeout(None)
            .map_err(socket_err("clear handshake timeout"))?;
        // The ring moves small control frames (acks) between large
        // envelopes; Nagle batching would serialize the stop-and-wait.
        s.set_nodelay(true).map_err(socket_err("set TCP_NODELAY"))?;
    }
    Ok(())
}

fn send_hello(stream: &TcpStream, nonce: u64, host: usize) -> Result<(), RingError> {
    let mut writer = stream;
    writer
        .write_all(&encode_hello(nonce, host as u32))
        .map_err(socket_err("send hello"))
}

fn expect_hello(stream: &TcpStream, nonce: u64, host: usize) -> Result<(), RingError> {
    let mut reader = stream;
    let mut decoder = FrameDecoder::new();
    let mut chunk = [0u8; 256];
    loop {
        match decoder.next_frame::<Vec<u8>>() {
            Ok(Some(Frame::Hello { nonce: n, host: h })) => {
                return if n == nonce && h as usize == host {
                    Ok(())
                } else {
                    Err(RingError::Socket("handshake: hello nonce or host mismatch"))
                };
            }
            Ok(Some(_)) => return Err(RingError::Socket("handshake: unexpected frame")),
            Ok(None) => {}
            Err(e) => return Err(e.into()),
        }
        let n = reader
            .read(&mut chunk)
            .map_err(socket_err("handshake read"))?;
        if n == 0 {
            return Err(RingError::Socket("handshake: peer closed during hello"));
        }
        decoder.feed(chunk.get(..n).unwrap_or_default());
    }
}

// ---------------------------------------------------------------------------
// Driver plumbing: events, jobs, per-endpoint threads
// ---------------------------------------------------------------------------

/// What the coordinator hears from the worker threads.
enum Event<P> {
    FromWire {
        at: HostId,
        frame: Frame<P>,
    },
    JoinDone {
        host: HostId,
        id: FragmentId,
        hop: usize,
        spent: Duration,
        panicked: bool,
    },
    AbsorbDone {
        host: HostId,
        dead: HostId,
        roles: usize,
        spent: Duration,
        panicked: bool,
        /// True when the rebuild was a planned rescale handoff rather
        /// than a crash-healing absorb (labels only — the protocol input
        /// is the same).
        planned: bool,
    },
    SendDone {
        from: HostId,
    },
    TimerFired {
        kind: TimerKind,
    },
    Fatal {
        error: RingError,
    },
}

/// Timers are protocol backoffs plus the fault and rescale plans'
/// scheduled events, all realized on the same wall-clock timer thread.
#[derive(Debug, Clone, Copy)]
enum TimerKind {
    Protocol(Timer),
    Crash(HostId),
    Pause(HostId),
    Resume(HostId),
    JoinRequest(HostId),
    DrainRequest(HostId),
}

struct TimerCmd {
    deadline: Instant,
    kind: TimerKind,
}

/// Work for a writer thread. `Sever` queues *behind* pending frames, so a
/// crash's FIN goes out only after every already-committed byte flushed.
enum WriteJob {
    Frame {
        bytes: Vec<u8>,
        delay: Duration,
        notify: Option<HostId>,
    },
    Sever,
}

/// Work for a host's join worker thread.
enum JoinJob<P> {
    Join {
        payload: P,
        /// Which multiplexed query the fragment belongs to (0 on
        /// single-query runs).
        query: u32,
        roles: Option<Vec<usize>>,
        id: FragmentId,
        hop: usize,
    },
    Absorb {
        dead: HostId,
        roles: Vec<usize>,
        /// True for a planned rescale handoff (the donor is alive).
        planned: bool,
    },
}

type WriterGrid = Vec<Vec<Option<Sender<WriteJob>>>>;

fn reader_loop<P: WirePayload>(stream: TcpStream, at: HostId, events: Sender<Event<P>>) {
    let mut stream = stream;
    let mut decoder = FrameDecoder::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return, // EOF or reset: the connection is gone
            Ok(n) => n,
        };
        decoder.feed(chunk.get(..n).unwrap_or_default());
        loop {
            match decoder.next_frame::<P>() {
                Ok(Some(frame)) => {
                    if events.send(Event::FromWire { at, frame }).is_err() {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let _ = events.send(Event::Fatal {
                        error: RingError::Frame(e),
                    });
                    return;
                }
            }
        }
    }
}

/// Writes every frame in `frames`, submitting them as one vectored
/// `writev` whenever the kernel cooperates. Each frame is already a
/// complete `[kind][len][body]` encoding from the pooled buffers, so the
/// prefix and payload of many frames leave in a single syscall instead of
/// one `write_all` per frame. Short writes resume from the exact byte
/// offset; `Interrupted` retries; a zero-length write reports the peer
/// gone as `WriteZero`.
pub fn write_frames_vectored<W: Write>(stream: &mut W, frames: &[Vec<u8>]) -> std::io::Result<()> {
    let total: usize = frames.iter().map(Vec::len).sum();
    let mut written = 0usize;
    while written < total {
        let mut slices: Vec<std::io::IoSlice<'_>> = Vec::with_capacity(frames.len());
        let mut skip = written;
        for f in frames {
            if skip >= f.len() {
                skip -= f.len();
                continue;
            }
            slices.push(std::io::IoSlice::new(f.get(skip..).unwrap_or_default()));
            skip = 0;
        }
        match stream.write_vectored(&slices) {
            Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
            Ok(n) => written = written.saturating_add(n),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn writer_loop<P>(
    stream: TcpStream,
    jobs: Receiver<WriteJob>,
    events: Sender<Event<P>>,
    pool: Arc<FrameBufPool>,
) {
    let mut stream = stream;
    // A job the batching peek pulled off the queue but could not batch
    // (a delayed frame or a sever); handled on the next iteration so
    // FIFO order is preserved.
    let mut carry: Option<WriteJob> = None;
    loop {
        let job = match carry.take() {
            Some(job) => job,
            None => match jobs.recv() {
                Ok(job) => job,
                Err(_) => return,
            },
        };
        match job {
            WriteJob::Frame {
                bytes,
                delay,
                notify,
            } => {
                if !delay.is_zero() {
                    // A fault-plan delay spike: the frame dawdles on the
                    // medium (and, FIFO queue, delays what's behind it).
                    thread::sleep(delay);
                }
                // Batch whatever undelayed frames are already queued
                // behind this one into a single vectored submission.
                let mut batch = vec![bytes];
                let mut notifies = vec![notify];
                while batch.len() < MAX_WRITE_BATCH {
                    match jobs.try_recv() {
                        Ok(WriteJob::Frame {
                            bytes,
                            delay,
                            notify,
                        }) if delay.is_zero() => {
                            batch.push(bytes);
                            notifies.push(notify);
                        }
                        Ok(job) => {
                            carry = Some(job);
                            break;
                        }
                        Err(_) => break,
                    }
                }
                // A blocked write on a full socket buffer IS the
                // backpressure: the wire-free credits below are withheld
                // until the kernel accepted every byte. A write error
                // means the peer is gone — the frames are lost on the
                // medium and the reliable transport's timeout repairs
                // them.
                let _ = write_frames_vectored(&mut stream, &batch);
                for bytes in batch {
                    pool.put(bytes);
                }
                for from in notifies.into_iter().flatten() {
                    if events.send(Event::SendDone { from }).is_err() {
                        return;
                    }
                }
            }
            WriteJob::Sever => {
                let _ = stream.shutdown(Shutdown::Write);
            }
        }
    }
}

fn worker_loop<P, F, A>(
    host: HostId,
    jobs: Receiver<JoinJob<P>>,
    events: Sender<Event<P>>,
    visit: &F,
    absorb: &A,
) where
    P: WirePayload,
    F: Fn(HostId, u32, &[usize], &P) + Sync,
    A: Fn(HostId, usize) + Sync,
{
    for job in jobs.iter() {
        match job {
            JoinJob::Join {
                payload,
                query,
                roles,
                id,
                hop,
            } => {
                let started = Instant::now();
                let own = [host.0];
                // Guard the user callback: a panic inside it must become
                // a typed teardown error, not a dead scope.
                let outcome = catch_unwind(AssertUnwindSafe(|| match &roles {
                    Some(rs) => visit(host, query, rs, &payload),
                    None => visit(host, query, &own, &payload),
                }));
                let done = Event::JoinDone {
                    host,
                    id,
                    hop,
                    spent: started.elapsed(),
                    panicked: outcome.is_err(),
                };
                if events.send(done).is_err() {
                    return;
                }
            }
            JoinJob::Absorb {
                dead,
                roles,
                planned,
            } => {
                let started = Instant::now();
                let count = roles.len();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    for &r in &roles {
                        absorb(host, r);
                    }
                }));
                let done = Event::AbsorbDone {
                    host,
                    dead,
                    roles: count,
                    spent: started.elapsed(),
                    panicked: outcome.is_err(),
                    planned,
                };
                if events.send(done).is_err() {
                    return;
                }
            }
        }
    }
}

fn timer_loop<P>(cmds: Receiver<TimerCmd>, events: Sender<Event<P>>) {
    let mut armed: Vec<(Instant, TimerKind)> = Vec::new();
    loop {
        let now = Instant::now();
        let (due, rest): (Vec<_>, Vec<_>) = armed.into_iter().partition(|(d, _)| *d <= now);
        armed = rest;
        for (_, kind) in due {
            if events.send(Event::TimerFired { kind }).is_err() {
                return;
            }
        }
        let wait = armed
            .iter()
            .map(|(d, _)| d.saturating_duration_since(Instant::now()))
            .min()
            .unwrap_or(Duration::from_secs(3600));
        match cmds.recv_timeout(wait) {
            Ok(cmd) => armed.push((cmd.deadline, cmd.kind)),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

// ---------------------------------------------------------------------------
// The coordinator: one thread owning the protocol
// ---------------------------------------------------------------------------

struct Coordinator<'a, P: WirePayload> {
    proto: RingProtocol<P>,
    plan: Option<&'a FaultPlan>,
    writers: WriterGrid,
    jobs: Vec<Sender<JoinJob<P>>>,
    timer_tx: Sender<TimerCmd>,
    /// Encode buffers recycled through the writer threads.
    pool: Arc<FrameBufPool>,
    /// Events produced synchronously while applying outputs (a dropped
    /// attempt's local send completion), processed before the channel.
    pending: VecDeque<Event<P>>,
    errors: ErrorCollector,
    fatal: bool,
    tracer: SpanTracer,
    epoch: Instant,
    wall_ack_timeout: Duration,
    join_threads: usize,
    busy: Vec<Duration>,
    last_done: Vec<Instant>,
    bytes_forwarded: Vec<u64>,
    last_progress: Instant,
    crash_at: Vec<Option<Instant>>,
    detection_latency: SimDuration,
    /// The original (uncloned) streams, kept to sever everything at
    /// teardown so reader threads unblock.
    severs: Vec<Vec<Option<TcpStream>>>,
}

impl<P: WirePayload + Clone> Coordinator<'_, P> {
    fn now_stamp(&self) -> SimTime {
        SimTime::from_nanos(SimDuration::from(self.epoch.elapsed()).as_nanos())
    }

    fn stamp_before(&self, spent: Duration) -> SimTime {
        SimTime::from_nanos(
            SimDuration::from(self.epoch.elapsed().saturating_sub(spent)).as_nanos(),
        )
    }

    fn fail(&mut self, error: RingError) {
        self.errors.record(error);
        self.fatal = true;
    }

    fn arm(&mut self, deadline: Instant, kind: TimerKind) {
        let _ = self.timer_tx.send(TimerCmd { deadline, kind });
    }

    /// Translates one driver event into a protocol [`Input`], mirroring
    /// the simulated driver's crash-guard policy: joins and fault-plan
    /// events die with a crashed host; wire deliveries, send completions
    /// and timer ticks always reach the protocol (deliveries at a crashed
    /// host feed its salvage path).
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn handle(&mut self, event: Event<P>) {
        match event {
            Event::FromWire { at, frame } => match frame {
                Frame::Envelope { tid, env } => {
                    let out = self.proto.input(Input::Delivered { to: at, env, tid });
                    self.apply(out, Some(at));
                }
                Frame::Ack { tid } => {
                    let out = self.proto.input(Input::Ack { tid });
                    self.apply(out, None);
                }
                Frame::Hello { .. } => self.fail(RingError::Socket("mid-run hello frame")),
            },
            Event::JoinDone {
                host,
                id,
                hop,
                spent,
                panicked,
            } => {
                if self.proto.is_crashed(host) {
                    // The join died with the host; healing salvages its
                    // envelope.
                    return;
                }
                if panicked {
                    self.fail(RingError::Teardown(teardown::CALLBACK_PANICKED));
                    return;
                }
                self.busy[host.0] += spent;
                let now = Instant::now();
                self.last_done[host.0] = now;
                self.last_progress = self.last_progress.max(now);
                if self.tracer.is_enabled() {
                    let start = self.stamp_before(spent);
                    self.tracer.span_with_hop(
                        host.0,
                        SpanKind::Join,
                        format!("join {id}"),
                        start,
                        spent.into(),
                        Some(hop),
                    );
                }
                let out = self.proto.input(Input::JoinDone {
                    host,
                    app_finished: false,
                });
                self.apply(out, None);
            }
            Event::AbsorbDone {
                host,
                dead,
                roles,
                spent,
                panicked,
                planned,
            } => {
                if self.proto.is_crashed(host) {
                    return;
                }
                if panicked {
                    self.fail(RingError::Teardown(teardown::CALLBACK_PANICKED));
                    return;
                }
                self.busy[host.0] += spent;
                let now = Instant::now();
                self.last_done[host.0] = now;
                self.last_progress = self.last_progress.max(now);
                if self.tracer.is_enabled() {
                    let start = self.stamp_before(spent);
                    let name = if planned {
                        format!("handoff {roles} role(s) from host {}", dead.0)
                    } else {
                        format!("absorb {roles} role(s) of host {}", dead.0)
                    };
                    self.tracer
                        .span(host.0, SpanKind::Absorb, name, start, spent.into());
                }
                let out = self.proto.input(Input::AbsorbDone { host });
                self.apply(out, None);
            }
            Event::SendDone { from } => {
                let out = self.proto.input(Input::SendDone { from });
                self.apply(out, None);
            }
            Event::TimerFired { kind } => match kind {
                TimerKind::Protocol(timer) => {
                    let out = self.proto.input(Input::Tick { timer });
                    self.apply(out, None);
                }
                TimerKind::Crash(host) => self.crash(host),
                TimerKind::Pause(host) => {
                    if self.proto.is_crashed(host) {
                        return;
                    }
                    if self.tracer.is_enabled() {
                        self.tracer
                            .event(Some(host.0), Track::Control, "paused", self.now_stamp());
                    }
                    let out = self.proto.input(Input::Paused { host });
                    self.apply(out, None);
                }
                TimerKind::Resume(host) => {
                    if self.proto.is_crashed(host) {
                        return;
                    }
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Control,
                            "resumed",
                            self.now_stamp(),
                        );
                    }
                    let out = self.proto.input(Input::Resumed { host });
                    self.apply(out, None);
                }
                TimerKind::JoinRequest(host) => {
                    if self.proto.is_crashed(host) {
                        return;
                    }
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Control,
                            "join requested",
                            self.now_stamp(),
                        );
                    }
                    let out = self.proto.input(Input::JoinRequest { host });
                    self.apply(out, None);
                }
                TimerKind::DrainRequest(host) => {
                    if self.proto.is_crashed(host) {
                        return;
                    }
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Control,
                            "drain requested",
                            self.now_stamp(),
                        );
                    }
                    let out = self.proto.input(Input::DrainRequest { host });
                    self.apply(out, None);
                }
            },
            Event::Fatal { error } => self.fail(error),
        }
    }

    /// Realizes a scheduled crash: sever the host's outgoing connections
    /// (write-side FIN, queued behind already-committed frames — the
    /// driver contract says an attempt reported live must still arrive),
    /// then report the ground truth to the protocol. The read side stays
    /// open as the salvage path, matching the simulator's medium.
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn crash(&mut self, host: HostId) {
        if self.proto.is_crashed(host) {
            return;
        }
        self.crash_at[host.0] = Some(Instant::now());
        if self.tracer.is_enabled() {
            self.tracer
                .event(Some(host.0), Track::Control, "crashed", self.now_stamp());
        }
        for tx in self.writers[host.0].iter().flatten() {
            let _ = tx.send(WriteJob::Sever);
        }
        let out = self.proto.input(Input::PeerDead { host });
        self.apply(out, None);
    }

    /// Applies protocol outputs strictly in emission order, mapping each
    /// onto socket writes, worker jobs, wall-clock timers and traces.
    /// `ctx` names the host whose delivery is being processed — the only
    /// context in which the protocol emits [`Output::Ack`].
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn apply(&mut self, outputs: Vec<Output<P>>, ctx: Option<HostId>) {
        for output in outputs {
            if self.fatal {
                return;
            }
            match output {
                Output::StartJoin {
                    host,
                    id,
                    hop,
                    roles,
                    bytes: _,
                } => {
                    let Some(payload) = self.proto.processing_payload(host).cloned() else {
                        self.fail(RingError::Teardown(EMPTY_SLOT));
                        return;
                    };
                    let job = JoinJob::Join {
                        payload,
                        query: self.proto.processing_query(host),
                        roles,
                        id,
                        hop,
                    };
                    if self.jobs[host.0].send(job).is_err() {
                        self.fail(RingError::Teardown(teardown::RING_CLOSED));
                    }
                }
                Output::PassThrough { host, id } => {
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Join,
                            format!("pass-through {id}"),
                            self.now_stamp(),
                        );
                    }
                }
                Output::Processed { .. } => {}
                Output::Send {
                    from,
                    to,
                    tid,
                    attempt,
                    env,
                } => self.apply_send(from, to, tid, attempt, env),
                Output::Ack { to, tid } => match ctx {
                    Some(at) => {
                        let mut bytes = self.pool.take();
                        encode_ack_into(tid, &mut bytes);
                        self.enqueue(
                            at,
                            to,
                            WriteJob::Frame {
                                bytes,
                                delay: Duration::ZERO,
                                notify: None,
                            },
                        );
                    }
                    None => self.fail(RingError::Teardown(ACK_OUT_OF_CONTEXT)),
                },
                Output::ArmTimer { timer, backoff_exp } => {
                    let delay = self
                        .wall_ack_timeout
                        .saturating_mul(1u32 << backoff_exp.min(31));
                    self.arm(Instant::now() + delay, TimerKind::Protocol(timer));
                }
                Output::Delivered { host, id, bytes: _ } => {
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Receiver,
                            format!("recv {id}"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::ENVELOPES_RECEIVED, 1);
                    }
                }
                Output::DuplicateDropped { host, id } => {
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Receiver,
                            format!("duplicate {id} dropped"),
                            self.now_stamp(),
                        );
                    }
                }
                Output::ChecksumMismatch { host, id } => {
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Receiver,
                            format!("checksum mismatch {id}"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::CHECKSUM_MISMATCHES, 1);
                    }
                }
                Output::Retire { host, id, salvaged } => {
                    self.last_progress = self.last_progress.max(Instant::now());
                    if self.tracer.is_enabled() {
                        let name = if salvaged {
                            format!("retired {id} (salvaged)")
                        } else {
                            format!("retired {id}")
                        };
                        self.tracer
                            .event(Some(host.0), Track::Join, name, self.now_stamp());
                        self.tracer.count(counter::FRAGMENTS_RETIRED, 1);
                    }
                }
                Output::Heal { dead } => {
                    let latency = match self.crash_at[dead.0] {
                        Some(at) => SimDuration::from(at.elapsed()),
                        None => SimDuration::ZERO,
                    };
                    self.detection_latency = self.detection_latency.max(latency);
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            None,
                            Track::Control,
                            format!("heal: host {} confirmed dead", dead.0),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::HEAL_EVENTS, 1);
                    }
                }
                Output::Absorb {
                    survivor,
                    dead,
                    roles,
                } => {
                    if self.jobs[survivor.0]
                        .send(JoinJob::Absorb {
                            dead,
                            roles,
                            planned: false,
                        })
                        .is_err()
                    {
                        self.fail(RingError::Teardown(teardown::RING_CLOSED));
                    }
                }
                Output::Activate { host, epoch } => {
                    self.last_progress = self.last_progress.max(Instant::now());
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Control,
                            format!("activated (epoch {epoch})"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::RESCALE_JOINS, 1);
                    }
                }
                Output::Handoff { from, to, roles } => {
                    if self.tracer.is_enabled() {
                        self.tracer
                            .count(counter::RESCALE_HANDOFFS, roles.len() as u64);
                    }
                    if self.jobs[to.0]
                        .send(JoinJob::Absorb {
                            dead: from,
                            roles,
                            planned: true,
                        })
                        .is_err()
                    {
                        self.fail(RingError::Teardown(teardown::RING_CLOSED));
                    }
                }
                Output::Departed { host, epoch } => {
                    self.last_progress = self.last_progress.max(Instant::now());
                    // The drainee left the ring for good: retire its
                    // outgoing connections with a real FIN (queued behind
                    // any bytes it still owed). Nobody routes to it any
                    // more, so its read sides merely await teardown.
                    for tx in self.writers[host.0].iter().flatten() {
                        let _ = tx.send(WriteJob::Sever);
                    }
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Control,
                            format!("departed (epoch {epoch})"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::RESCALE_DRAINS, 1);
                    }
                }
                Output::Resent { target, id } => {
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(target.0),
                            Track::Control,
                            format!("re-sent {id} from origin"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::FRAGMENTS_RESENT, 1);
                    }
                }
                Output::Finished { .. } => {}
                Output::QueryAdmitted { query, tenant } => {
                    self.last_progress = self.last_progress.max(Instant::now());
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            None,
                            Track::Control,
                            format!("query {query} admitted (tenant {tenant})"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::QUERIES_ADMITTED, 1);
                    }
                }
                Output::QueryDone { query, tenant } => {
                    self.last_progress = self.last_progress.max(Instant::now());
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            None,
                            Track::Control,
                            format!("query {query} done (tenant {tenant})"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::QUERIES_COMPLETED, 1);
                    }
                }
                Output::Teardown { reason } => self.fail(RingError::Teardown(reason)),
            }
        }
    }

    /// Puts one attempt of a transfer toward the socket: rolls the fault
    /// dice (the medium's business, not the protocol's), reports the fate
    /// back, and hands the frame to the hop's writer thread.
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn apply_send(&mut self, from: HostId, to: HostId, tid: u64, attempt: u32, env: Envelope<P>) {
        let bytes = env.bytes();
        self.bytes_forwarded[from.0] += bytes;
        let mut wire = env;
        let mut dropped = false;
        let mut delay = Duration::ZERO;
        match self.plan {
            Some(plan) => {
                // Dice keyed on the per-sender wire sequence (`env.seq`),
                // the numbering all three backends share — the three-way
                // parity suite depends on this.
                let seq = wire.seq;
                dropped = plan.should_drop(from, seq, attempt);
                let corrupt = !dropped && plan.should_corrupt(from, seq, attempt);
                delay = Duration::from(plan.delay_spike(from, seq, attempt));
                self.proto.attempt_fate(tid, dropped, corrupt);
                if corrupt {
                    // In-flight bit flips: the receiver's checksum
                    // verification rejects the copy and withholds the ack.
                    wire.checksum = !wire.checksum;
                }
                if attempt == 1 {
                    self.tracer.count(counter::ENVELOPES_SENT, 1);
                } else if self.tracer.is_enabled() {
                    self.tracer.event(
                        Some(from.0),
                        Track::Transmitter,
                        format!("retransmit {} attempt {attempt}", wire.id),
                        self.now_stamp(),
                    );
                    self.tracer.count(counter::RETRANSMITS, 1);
                }
            }
            None => self.tracer.count(counter::ENVELOPES_SENT, 1),
        }
        if dropped {
            // The medium ate this attempt before any byte hit the socket;
            // the sender's NIC still reports its wire free.
            self.pending.push_back(Event::SendDone { from });
            return;
        }
        let mut frame = self.pool.take();
        match encode_envelope_into(tid, &wire, &mut frame) {
            Ok(()) => self.enqueue(
                from,
                to,
                WriteJob::Frame {
                    bytes: frame,
                    delay,
                    notify: Some(from),
                },
            ),
            Err(e) => self.fail(RingError::Frame(e)),
        }
    }

    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn enqueue(&mut self, from: HostId, to: HostId, job: WriteJob) {
        let sent = match self.writers[from.0].get(to.0).and_then(Option::as_ref) {
            Some(tx) => tx.send(job).is_ok(),
            None => false,
        };
        if !sent {
            self.fail(RingError::Teardown(teardown::TX_GONE));
        }
    }

    /// Converts the finished run into the common metrics shape and closes
    /// out the tracer (materializing every well-known counter so trace
    /// consumers see zeros observed rather than missing).
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn into_result(self) -> (RingMetrics, SpanTracer) {
        let n = self.proto.config().hosts;
        let mut hosts = Vec::with_capacity(n);
        for h in 0..n {
            let busy = self.busy[h];
            let window = self.last_done[h].saturating_duration_since(self.epoch);
            let mut cpu = simnet::cpu::CpuAccount::new();
            cpu.charge(
                simnet::cpu::CostCategory::Compute,
                SimDuration::from(busy) * self.join_threads as u64,
            );
            hosts.push(HostMetrics {
                setup: SimDuration::ZERO,
                join_busy: busy.into(),
                sync: window.saturating_sub(busy).into(),
                join_window: window.into(),
                cpu,
                fragments_processed: self.proto.host(HostId(h)).fragments_processed(),
                bytes_forwarded: self.bytes_forwarded[h],
                retransmits: self.proto.retransmits(HostId(h)),
                checksum_mismatches: self.proto.checksum_mismatches(HostId(h)),
            });
        }
        let metrics = RingMetrics {
            hosts,
            wall_clock: self
                .last_progress
                .saturating_duration_since(self.epoch)
                .into(),
            fragments_completed: self.proto.fragments_completed(),
            heal_events: self.proto.heal_events(),
            detection_latency: self.detection_latency,
            fragments_resent: self.proto.fragments_resent(),
            membership_epoch: self.proto.membership_epoch(),
            rescale_joins: self.proto.rescale_joins(),
            rescale_drains: self.proto.rescale_drains(),
            rescale_handoffs: self.proto.rescale_handoffs(),
            rescale_escalations: self.proto.rescale_escalations(),
            queries: self.proto.query_metrics(),
        };
        let mut tracer = self.tracer;
        if tracer.is_enabled() {
            for name in [
                counter::ENVELOPES_SENT,
                counter::ENVELOPES_RECEIVED,
                counter::FRAGMENTS_RETIRED,
                counter::RETRANSMITS,
                counter::CHECKSUM_MISMATCHES,
                counter::HEAL_EVENTS,
                counter::FRAGMENTS_RESENT,
                counter::RESCALE_JOINS,
                counter::RESCALE_DRAINS,
                counter::RESCALE_HANDOFFS,
            ] {
                tracer.count(name, 0);
            }
        }
        (metrics, tracer)
    }
}

// ---------------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------------

/// Builder for a loopback-TCP ring run — the single entry point of this
/// backend, mirroring [`crate::thread_backend::RingDriver`].
///
/// ```
/// use data_roundabout::{RingConfig, TcpRingDriver};
///
/// // Three hosts, two fragments each, over real loopback sockets.
/// let fragments: Vec<Vec<Vec<u8>>> =
///     (0..3).map(|_| vec![vec![0u8; 64]; 2]).collect();
/// let (metrics, _spans) = TcpRingDriver::new(&RingConfig::paper(3))
///     .run(fragments, |_, _| {})
///     .unwrap();
/// assert_eq!(metrics.fragments_completed, 6);
/// ```
#[derive(Clone, Copy)]
pub struct TcpRingDriver<'a> {
    config: &'a RingConfig,
    fault_plan: Option<&'a FaultPlan>,
    rescale_plan: Option<&'a RescalePlan>,
    trace: bool,
}

impl<'a> TcpRingDriver<'a> {
    /// A driver for `config` with the classic transport and no tracing.
    pub fn new(config: &'a RingConfig) -> Self {
        TcpRingDriver {
            config,
            fault_plan: None,
            rescale_plan: None,
            trace: false,
        }
    }

    /// Runs the ring over the unreliable medium described by `plan`, with
    /// every hop protected by the protocol core's acknowledged transport.
    /// Scheduled crashes become real socket severs and mid-revolution
    /// ring healing; `config.ack_timeout` is interpreted in wall-clock
    /// time (choose it to comfortably exceed a loopback round trip plus
    /// coordinator latency, or losses masquerade as timeouts).
    pub fn with_fault_plan(mut self, plan: &'a FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Attaches a planned [`RescalePlan`]: standby hosts joining and
    /// members draining out mid-workload over the live socket mesh. Hosts
    /// with a scheduled join start as provisioned standbys outside the
    /// ring (their mesh connections are built up front and spliced into
    /// the rotation at activation); a completed drain retires the
    /// drainee's connections with a real FIN. Attaching a rescale plan
    /// switches the transport into its reliable mode even without a fault
    /// plan. Schedule instants are interpreted in wall-clock time.
    pub fn with_rescale_plan(mut self, plan: &'a RescalePlan) -> Self {
        self.rescale_plan = Some(plan);
        self
    }

    /// Enables structured span recording for this run.
    pub fn with_tracer(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Runs the ring to completion. `fragments[h]` are host `h`'s local
    /// fragments; `process` is invoked once per (host, envelope) visit.
    ///
    /// # Errors
    ///
    /// As [`TcpRingDriver::run_with_roles`].
    pub fn run<P, F>(
        self,
        fragments: Vec<Vec<P>>,
        process: F,
    ) -> Result<(RingMetrics, SpanTracer), RingError>
    where
        P: WirePayload + Send + Clone,
        F: Fn(HostId, &P) + Sync,
    {
        self.run_with_roles(
            fragments,
            |host, _roles, payload| process(host, payload),
            |_, _| {},
        )
    }

    /// Like [`TcpRingDriver::run`], but role-aware for healing runs:
    /// `visit(host, roles, payload)` applies the named logical stationary
    /// roles (the host's own, plus any absorbed from dead hosts), and
    /// `absorb(survivor, role)` performs the state takeover when the ring
    /// heals around a confirmed death.
    ///
    /// # Errors
    ///
    /// Returns [`RingError::Config`] for an invalid configuration,
    /// [`RingError::Shape`] when `fragments.len() != config.hosts`,
    /// [`RingError::UnsupportedFault`] for fault plans this backend cannot
    /// realize (more than 64 hosts with a plan, a crash on a single-host
    /// ring, or faults naming hosts outside the ring),
    /// [`RingError::Socket`] when the loopback mesh cannot be built, and
    /// [`RingError::Frame`] / [`RingError::Teardown`] when the run dies
    /// mid-revolution (undecodable bytes, a panicking callback, an
    /// exhausted retransmission budget on a live ring, or a stall).
    pub fn run_with_roles<P, F, A>(
        self,
        fragments: Vec<Vec<P>>,
        visit: F,
        absorb: A,
    ) -> Result<(RingMetrics, SpanTracer), RingError>
    where
        P: WirePayload + Send + Clone,
        F: Fn(HostId, &[usize], &P) + Sync,
        A: Fn(HostId, usize) + Sync,
    {
        self.config.validate()?;
        let n = self.config.hosts;
        if fragments.len() != n {
            return Err(RingError::Shape {
                expected: n,
                got: fragments.len(),
            });
        }
        if let Some(plan) = self.fault_plan {
            if n > 64 {
                return Err(RingError::UnsupportedFault(
                    "the exactly-once role bitmask supports at most 64 hosts",
                ));
            }
            if n == 1 && !plan.crashes().is_empty() {
                return Err(RingError::UnsupportedFault(
                    "a single-host ring cannot heal around its own crash",
                ));
            }
            let in_ring = |h: HostId| h.0 < n;
            if !plan.crashes().iter().all(|c| in_ring(c.host))
                || !plan.pauses().iter().all(|p| in_ring(p.host))
            {
                return Err(RingError::UnsupportedFault(
                    "fault plan names a host outside the ring",
                ));
            }
        }
        if let Some(plan) = self.rescale_plan {
            if n > 64 {
                return Err(RingError::UnsupportedFault(
                    "the exactly-once role bitmask supports at most 64 hosts",
                ));
            }
            if n == 1 && !plan.is_quiet() {
                return Err(RingError::UnsupportedFault(
                    "a single-host ring has no membership to rescale",
                ));
            }
            let in_ring = |h: HostId| h.0 < n;
            if !plan.joins().iter().all(|j| in_ring(j.host))
                || !plan.drains().iter().all(|d| in_ring(d.host))
            {
                return Err(RingError::UnsupportedFault(
                    "rescale plan names a host outside the ring",
                ));
            }
            if plan
                .joins()
                .iter()
                .any(|j| !fragments.get(j.host.0).is_none_or(Vec::is_empty))
            {
                return Err(RingError::UnsupportedFault(
                    "a standby host must not contribute fragments before joining",
                ));
            }
        }
        let envelopes = envelope_batches(fragments, n);
        if n == 1 {
            // A single-host "ring" has no sockets to run; share the
            // thread backend's local path.
            let spans = self.trace.then(SharedSpans::new);
            let backlog = envelopes.into_iter().next().unwrap_or_default();
            let own = [0usize];
            let metrics = run_single_host(backlog, |h, p| visit(h, &own, p), spans.as_ref())?;
            let tracer = finish_spans(spans, &metrics);
            return Ok((metrics, tracer));
        }
        run_mesh(
            self.config,
            self.fault_plan,
            self.rescale_plan,
            self.trace,
            MeshWorkload::Single(envelopes),
            &|host, _query: u32, roles: &[usize], payload: &P| visit(host, roles, payload),
            &absorb,
        )
    }

    /// Runs several queries multiplexed over one ring of real sockets.
    /// `queries[q]` is `(tenant, fragments)` with `fragments[h]` host
    /// `h`'s local fragments for query `q`; at most `max_active` queries
    /// circulate concurrently, the rest wait in the admission queue.
    /// `visit(host, query, roles, payload)` joins one fragment of `query`
    /// against the named stationary roles; `absorb(survivor, role)`
    /// rebuilds a dead host's state (for every query) when the ring
    /// heals. Always uses the reliable acked transport (quiet dice are
    /// synthesized without a fault plan).
    ///
    /// # Errors
    ///
    /// As [`TcpRingDriver::run_with_roles`], plus
    /// [`RingError::UnsupportedFault`] on a single-host ring, an empty
    /// query list or a zero `max_active`.
    pub fn run_queries<P, F, A>(
        self,
        queries: Vec<(u32, Vec<Vec<P>>)>,
        max_active: usize,
        visit: F,
        absorb: A,
    ) -> Result<(RingMetrics, SpanTracer), RingError>
    where
        P: WirePayload + Send + Clone,
        F: Fn(HostId, u32, &[usize], &P) + Sync,
        A: Fn(HostId, usize) + Sync,
    {
        self.config.validate()?;
        let n = self.config.hosts;
        if n < 2 {
            return Err(RingError::UnsupportedFault(
                "multiplexing needs a ring of at least two hosts",
            ));
        }
        if n > 64 {
            return Err(RingError::UnsupportedFault(
                "the exactly-once role bitmask supports at most 64 hosts",
            ));
        }
        if queries.is_empty() || max_active == 0 {
            return Err(RingError::UnsupportedFault(
                "a multi-tenant run needs at least one query and a positive admission bound",
            ));
        }
        for (_, fragments) in &queries {
            if fragments.len() != n {
                return Err(RingError::Shape {
                    expected: n,
                    got: fragments.len(),
                });
            }
        }
        let in_ring = |h: HostId| h.0 < n;
        if let Some(plan) = self.fault_plan {
            if !plan.crashes().iter().all(|c| in_ring(c.host))
                || !plan.pauses().iter().all(|p| in_ring(p.host))
            {
                return Err(RingError::UnsupportedFault(
                    "fault plan names a host outside the ring",
                ));
            }
        }
        if let Some(plan) = self.rescale_plan {
            if !plan.joins().iter().all(|j| in_ring(j.host))
                || !plan.drains().iter().all(|d| in_ring(d.host))
            {
                return Err(RingError::UnsupportedFault(
                    "rescale plan names a host outside the ring",
                ));
            }
            if plan.joins().iter().any(|j| {
                queries
                    .iter()
                    .any(|(_, f)| f.get(j.host.0).is_some_and(|b| !b.is_empty()))
            }) {
                return Err(RingError::UnsupportedFault(
                    "a standby host must not contribute fragments before joining",
                ));
            }
        }
        run_mesh(
            self.config,
            self.fault_plan,
            self.rescale_plan,
            self.trace,
            MeshWorkload::Multi {
                queries: query_batches(queries, n),
                max_active,
            },
            &visit,
            &absorb,
        )
    }
}

/// What circulates on the mesh: one query's envelopes (the classic path)
/// or several pre-numbered queries plus an admission bound.
pub(crate) enum MeshWorkload<P> {
    Single(Vec<Vec<Envelope<P>>>),
    Multi {
        queries: Vec<(u32, Vec<Vec<Envelope<P>>>)>,
        max_active: usize,
    },
}

/// One endpoint's thread material, cloned up front so no fallible IO
/// happens after the first thread spawns (an early error return from a
/// scope with live blocking readers would hang the scope join).
struct Lane {
    reader: TcpStream,
    writer: TcpStream,
    host: usize,
    peer: usize,
}

fn run_mesh<P, F, A>(
    config: &RingConfig,
    plan: Option<&FaultPlan>,
    rescale: Option<&RescalePlan>,
    trace: bool,
    workload: MeshWorkload<P>,
    visit: &F,
    absorb: &A,
) -> Result<(RingMetrics, SpanTracer), RingError>
where
    P: WirePayload + Send + Clone,
    F: Fn(HostId, u32, &[usize], &P) + Sync,
    A: Fn(HostId, usize) + Sync,
{
    let n = config.hosts;
    // Rescale and multi-tenant rotation ride the reliable transport:
    // without explicit adversity the medium still needs (quiet) dice and
    // the acked hop protocol.
    let quiet_dice;
    let plan = match (plan, rescale) {
        (None, Some(r)) => {
            quiet_dice = FaultPlan::seeded(r.seed());
            Some(&quiet_dice)
        }
        (None, None) if matches!(workload, MeshWorkload::Multi { .. }) => {
            quiet_dice = FaultPlan::seeded(0);
            Some(&quiet_dice)
        }
        (p, _) => p,
    };
    let seed = plan.map(|p| p.seed()).unwrap_or(0x0dd0_ba11);
    let watchdog = Duration::from(config.watchdog);
    let mesh = build_mesh(n, seed, Duration::from(config.handshake_timeout))?;
    let mut lanes = Vec::new();
    for (h, row) in mesh.endpoints.iter().enumerate() {
        for (p, endpoint) in row.iter().enumerate() {
            if let Some(stream) = endpoint {
                lanes.push(Lane {
                    reader: stream
                        .try_clone()
                        .map_err(socket_err("clone ring socket"))?,
                    writer: stream
                        .try_clone()
                        .map_err(socket_err("clone ring socket"))?,
                    host: h,
                    peer: p,
                });
            }
        }
    }
    let proto_cfg = ProtocolConfig {
        hosts: n,
        buffers_per_host: config.buffers_per_host,
        max_retransmits: config.max_retransmits,
        continuous: false,
        reliable: plan.is_some(),
        standby: rescale.map_or(0, |p| p.standby_mask()),
    };
    let proto = match workload {
        MeshWorkload::Single(envelopes) => RingProtocol::new(proto_cfg, envelopes),
        MeshWorkload::Multi {
            queries,
            max_active,
        } => RingProtocol::new_multi(proto_cfg, queries, max_active),
    };
    let total = proto.fragments_total();

    let (events_tx, events_rx) = channel::<Event<P>>();
    let (timer_tx, timer_rx) = channel::<TimerCmd>();
    let pool = Arc::new(FrameBufPool::default());

    thread::scope(|s| {
        let mut writers: WriterGrid = (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for lane in lanes {
            let tx = events_tx.clone();
            let at = HostId(lane.host);
            let reader = lane.reader;
            s.spawn(move || reader_loop::<P>(reader, at, tx));
            let (wtx, wrx) = channel::<WriteJob>();
            let tx = events_tx.clone();
            let writer = lane.writer;
            let wpool = Arc::clone(&pool);
            s.spawn(move || writer_loop::<P>(writer, wrx, tx, wpool));
            if let Some(slot) = writers
                .get_mut(lane.host)
                .and_then(|row| row.get_mut(lane.peer))
            {
                *slot = Some(wtx);
            }
        }
        let mut jobs = Vec::with_capacity(n);
        for h in 0..n {
            let (jtx, jrx) = channel::<JoinJob<P>>();
            let tx = events_tx.clone();
            s.spawn(move || worker_loop(HostId(h), jrx, tx, visit, absorb));
            jobs.push(jtx);
        }
        {
            let tx = events_tx.clone();
            s.spawn(move || timer_loop::<P>(timer_rx, tx));
        }

        let epoch = Instant::now();
        let mut co = Coordinator {
            proto,
            plan,
            writers,
            jobs,
            timer_tx,
            pool: Arc::clone(&pool),
            pending: VecDeque::new(),
            errors: ErrorCollector::default(),
            fatal: false,
            tracer: if trace {
                SpanTracer::enabled()
            } else {
                SpanTracer::disabled()
            },
            epoch,
            wall_ack_timeout: Duration::from_secs_f64(config.ack_timeout.as_secs_f64()),
            join_threads: config.join_threads,
            busy: vec![Duration::ZERO; n],
            last_done: vec![epoch; n],
            bytes_forwarded: vec![0; n],
            last_progress: epoch,
            crash_at: vec![None; n],
            detection_latency: SimDuration::ZERO,
            severs: mesh.endpoints,
        };
        if let Some(plan) = plan {
            for c in plan.crashes() {
                let at = epoch + Duration::from(c.at.saturating_duration_since(SimTime::ZERO));
                co.arm(at, TimerKind::Crash(c.host));
            }
            for p in plan.pauses() {
                let at = epoch + Duration::from(p.at.saturating_duration_since(SimTime::ZERO));
                co.arm(at, TimerKind::Pause(p.host));
                co.arm(at + Duration::from(p.duration), TimerKind::Resume(p.host));
            }
        }
        if let Some(plan) = rescale {
            for j in plan.joins() {
                let at = epoch + Duration::from(j.at.saturating_duration_since(SimTime::ZERO));
                co.arm(at, TimerKind::JoinRequest(j.host));
            }
            for d in plan.drains() {
                let at = epoch + Duration::from(d.at.saturating_duration_since(SimTime::ZERO));
                co.arm(at, TimerKind::DrainRequest(d.host));
            }
        }
        for h in 0..n {
            let out = co.proto.input(Input::SetupDone { host: HostId(h) });
            co.apply(out, None);
        }

        while !co.fatal && co.proto.fragments_completed() < total {
            let event = match co.pending.pop_front() {
                Some(ev) => ev,
                None => match events_rx.recv_timeout(watchdog) {
                    Ok(ev) => ev,
                    Err(RecvTimeoutError::Timeout) => {
                        co.fail(RingError::Teardown(STALLED));
                        break;
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        co.fail(RingError::Teardown(teardown::RING_CLOSED));
                        break;
                    }
                },
            };
            co.handle(event);
        }

        // Teardown: severing every socket unblocks the readers; dropping
        // the coordinator (at scope-closure end) disconnects the writer,
        // worker and timer channels, draining those threads.
        for row in &co.severs {
            for stream in row.iter().flatten() {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
        match std::mem::take(&mut co.errors).first() {
            Some(err) => Err(err),
            None => Ok(co.into_result()),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn payloads(hosts: usize, per_host: usize, bytes: usize) -> Vec<Vec<Vec<u8>>> {
        (0..hosts)
            .map(|h| {
                (0..per_host)
                    .map(|i| vec![(h * 31 + i) as u8; bytes])
                    .collect()
            })
            .collect()
    }

    fn roundtrip<P: WirePayload + PartialEq + std::fmt::Debug>(frame: Frame<P>, step: usize) {
        let bytes = match &frame {
            Frame::Hello { nonce, host } => encode_hello(*nonce, *host),
            Frame::Envelope { tid, env } => encode_envelope(*tid, env).unwrap(),
            Frame::Ack { tid } => encode_ack(*tid),
        };
        let mut decoder = FrameDecoder::new();
        let mut decoded = None;
        for chunk in bytes.chunks(step) {
            assert!(decoded.is_none(), "frame decoded before all bytes arrived");
            decoder.feed(chunk);
            if let Some(f) = decoder.next_frame::<P>().unwrap() {
                decoded = Some(f);
            }
        }
        assert_eq!(decoded.as_ref(), Some(&frame));
        assert!(decoder.next_frame::<P>().unwrap().is_none());
    }

    #[test]
    fn frame_codec_roundtrips_under_any_split() {
        let env = Envelope::new(FragmentId(7), HostId(2), 5, vec![9u8; 100]);
        for step in [1, 2, 3, 7, 64, 1024] {
            roundtrip::<Vec<u8>>(
                Frame::Hello {
                    nonce: 0xdead_beef,
                    host: 3,
                },
                step,
            );
            roundtrip::<Vec<u8>>(Frame::Ack { tid: u64::MAX }, step);
            roundtrip(
                Frame::Envelope {
                    tid: 42,
                    env: env.clone(),
                },
                step,
            );
        }
    }

    #[test]
    fn into_encoders_match_fresh_encoders_and_reuse_capacity() {
        let rel = relation::GenSpec::uniform(500, 3).generate();
        let env = Envelope::new(FragmentId(9), HostId(1), 4, rel);
        let mut buf = Vec::new();
        encode_envelope_into(11, &env, &mut buf).unwrap();
        assert_eq!(buf, encode_envelope(11, &env).unwrap());
        assert_eq!(
            buf.len(),
            FRAME_HEADER + ENVELOPE_HEADER + env.payload.payload_wire_len(),
            "payload_wire_len must be exact so pooled buffers never realloc"
        );
        let cap = buf.capacity();
        // A second encode into the same (dirty) buffer must produce the
        // same bytes without growing it.
        encode_envelope_into(11, &env, &mut buf).unwrap();
        assert_eq!(buf, encode_envelope(11, &env).unwrap());
        assert_eq!(buf.capacity(), cap);

        let mut ack = vec![0xAA; 3];
        encode_ack_into(7, &mut ack);
        assert_eq!(ack, encode_ack(7));
    }

    #[test]
    fn payload_wire_len_is_exact_for_every_variant() {
        use mem_joins::Algorithm;
        let rel = relation::GenSpec::uniform(300, 5).generate();
        for (alg, bits) in [
            (Algorithm::NestedLoops, 0),
            (Algorithm::SortMerge, 0),
            (Algorithm::partitioned_hash(), 3),
        ] {
            let frag = alg.prepare_fragment(&rel, bits, 1);
            let mut bytes = Vec::new();
            frag.encode_payload(&mut bytes);
            assert_eq!(bytes.len(), frag.payload_wire_len());
        }
        let v = vec![1u8, 2, 3];
        assert_eq!(v.payload_wire_len(), 3);
        assert_eq!(rel.payload_wire_len(), relation::wire::encoded_len(300));
    }

    #[test]
    fn frame_pool_recycles_and_caps() {
        let pool = FrameBufPool::default();
        let mut a = pool.take();
        assert!(a.is_empty());
        a.extend_from_slice(&[1, 2, 3]);
        let cap = a.capacity();
        pool.put(a);
        let b = pool.take();
        assert!(b.is_empty(), "returned buffers come back cleared");
        assert_eq!(b.capacity(), cap, "capacity survives the round trip");
        // Oversized buffers are dropped, not pooled.
        pool.put(Vec::with_capacity(MAX_POOLED_CAPACITY + 1));
        assert_eq!(pool.take().capacity(), 0);
    }

    #[test]
    fn corrupted_checksums_survive_the_codec() {
        let mut env = Envelope::new(FragmentId(1), HostId(0), 3, vec![1u8; 16]);
        env.checksum = !env.checksum;
        let bytes = encode_envelope(5, &env).unwrap();
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes);
        let Some(Frame::Envelope { env: back, .. }) = decoder.next_frame::<Vec<u8>>().unwrap()
        else {
            panic!("expected an envelope frame");
        };
        assert!(!back.checksum_ok(), "the flipped checksum must survive");
    }

    #[test]
    fn decoder_rejects_malformed_prefixes() {
        let mut d = FrameDecoder::new();
        d.feed(&[0x7f, 0, 0, 0, 0]);
        assert_eq!(d.next_frame::<Vec<u8>>(), Err(FrameError::BadKind(0x7f)));

        let mut d = FrameDecoder::new();
        let mut bytes = vec![KIND_ACK];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        d.feed(&bytes);
        assert_eq!(
            d.next_frame::<Vec<u8>>(),
            Err(FrameError::Oversized {
                len: u32::MAX,
                max: MAX_FRAME
            })
        );

        let mut d = FrameDecoder::new();
        let mut bytes = vec![KIND_ENVELOPE];
        bytes.extend_from_slice(&7u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 7]);
        d.feed(&bytes);
        assert_eq!(
            d.next_frame::<Vec<u8>>(),
            Err(FrameError::Truncated {
                needed: ENVELOPE_HEADER,
                got: 7
            })
        );
    }

    #[test]
    fn relation_payloads_roundtrip() {
        let rel = relation::GenSpec::uniform(200, 17).generate();
        let mut bytes = Vec::new();
        rel.encode_payload(&mut bytes);
        let back = relation::Relation::decode_payload(&bytes).unwrap();
        assert_eq!(back, rel);
        assert!(relation::Relation::decode_payload(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn prepared_fragment_payloads_roundtrip() {
        use mem_joins::{Algorithm, PreparedFragment};
        let rel = relation::GenSpec::uniform(300, 5).generate();
        for (alg, bits) in [
            (Algorithm::NestedLoops, 0),
            (Algorithm::SortMerge, 0),
            (Algorithm::partitioned_hash(), 3),
        ] {
            let frag = alg.prepare_fragment(&rel, bits, 1);
            let mut bytes = Vec::new();
            frag.encode_payload(&mut bytes);
            let back = PreparedFragment::decode_payload(&bytes).unwrap();
            assert_eq!(back.len(), frag.len());
            assert_eq!(back.payload_checksum(), frag.payload_checksum());
            match (&frag, &back) {
                (PreparedFragment::Plain(a), PreparedFragment::Plain(b)) => assert_eq!(a, b),
                (PreparedFragment::Sorted(a), PreparedFragment::Sorted(b)) => {
                    assert_eq!(a.as_relation(), b.as_relation());
                }
                (PreparedFragment::HashPartitioned(a), PreparedFragment::HashPartitioned(b)) => {
                    assert_eq!(a, b);
                }
                _ => panic!("variant changed across the wire"),
            }
        }
    }

    #[test]
    fn prepared_fragment_decode_validates_partition_count() {
        let mut bytes = vec![TAG_HASH];
        bytes.extend_from_slice(&2u32.to_le_bytes()); // bits = 2 → needs 4
        bytes.extend_from_slice(&3u32.to_le_bytes()); // claims 3
        let err = mem_joins::PreparedFragment::decode_payload(&bytes).unwrap_err();
        assert!(matches!(err, FrameError::BadPayload(_)));
    }

    #[test]
    fn every_host_sees_every_fragment_over_tcp() {
        let hosts = 3;
        let counts: Vec<AtomicUsize> = (0..hosts).map(|_| AtomicUsize::new(0)).collect();
        let (metrics, _) = TcpRingDriver::new(&RingConfig::paper(hosts))
            .run(payloads(hosts, 2, 64), |h, _| {
                counts[h.0].fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        assert_eq!(metrics.fragments_completed, 6);
        for c in &counts {
            assert_eq!(c.load(Ordering::SeqCst), 6);
        }
        for h in &metrics.hosts {
            assert_eq!(h.fragments_processed, 6);
        }
        assert_eq!(
            metrics.total_bytes_forwarded() as usize,
            6 * 64 * (hosts - 1)
        );
        assert!(metrics.fault_free());
    }

    #[test]
    fn single_host_ring_needs_no_sockets() {
        let n = AtomicUsize::new(0);
        let (metrics, _) = TcpRingDriver::new(&RingConfig::paper(1))
            .run(payloads(1, 4, 32), |_, _| {
                n.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        assert_eq!(metrics.fragments_completed, 4);
        assert_eq!(n.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn shape_and_config_errors_are_typed() {
        let err = TcpRingDriver::new(&RingConfig::paper(3))
            .run(payloads(2, 1, 8), |_, _| {})
            .unwrap_err();
        assert!(matches!(
            err,
            RingError::Shape {
                expected: 3,
                got: 2
            }
        ));
        let bad = RingConfig::paper(0);
        let err = TcpRingDriver::new(&bad)
            .run(vec![], |_: HostId, _: &Vec<u8>| {})
            .unwrap_err();
        assert!(matches!(err, RingError::Config(_)));
    }

    #[test]
    fn out_of_ring_faults_are_rejected() {
        let plan = FaultPlan::seeded(1).crash_host(HostId(9), SimTime::from_nanos(1));
        let err = TcpRingDriver::new(&RingConfig::paper(2))
            .with_fault_plan(&plan)
            .run(payloads(2, 1, 8), |_, _| {})
            .unwrap_err();
        assert!(matches!(err, RingError::UnsupportedFault(_)));
    }

    #[test]
    fn lossy_and_corrupt_links_are_repaired() {
        let hosts = 3;
        let plan = FaultPlan::seeded(7)
            .lossy_link(HostId(0), 0.3)
            .corrupt_link(HostId(1), 0.3);
        let config = RingConfig::paper(hosts)
            .with_ack_timeout(SimDuration::from_millis(40))
            .with_max_retransmits(10);
        let counts: Vec<AtomicUsize> = (0..hosts).map(|_| AtomicUsize::new(0)).collect();
        let (metrics, _) = TcpRingDriver::new(&config)
            .with_fault_plan(&plan)
            .run(payloads(hosts, 3, 256), |h, _| {
                counts[h.0].fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        assert_eq!(metrics.fragments_completed, 9);
        for c in &counts {
            assert_eq!(c.load(Ordering::SeqCst), 9);
        }
        let retransmits: u64 = metrics.hosts.iter().map(|h| h.retransmits).sum();
        assert!(retransmits > 0, "a 30% loss rate must provoke retransmits");
    }

    #[test]
    fn callback_panics_become_typed_teardowns() {
        let err = TcpRingDriver::new(&RingConfig::paper(3))
            .run(payloads(3, 2, 16), |h, _: &Vec<u8>| {
                assert!(h.0 != 1, "injected test panic");
            })
            .unwrap_err();
        assert_eq!(err, RingError::Teardown(teardown::CALLBACK_PANICKED));
    }

    #[test]
    fn crash_heals_over_real_sockets() {
        let hosts = 4;
        let per_host = 2;
        let total = hosts * per_host;
        let plan = FaultPlan::seeded(4242).crash_host(HostId(2), SimTime::from_nanos(4_000_000));
        let config = RingConfig::paper(hosts)
            .with_ack_timeout(SimDuration::from_millis(8))
            .with_max_retransmits(3);
        // One exactly-once cell per (fragment, logical role).
        let applied: Vec<Vec<AtomicUsize>> = (0..total)
            .map(|_| (0..hosts).map(|_| AtomicUsize::new(0)).collect())
            .collect();
        let (metrics, _) = TcpRingDriver::new(&config)
            .with_fault_plan(&plan)
            .run_with_roles(
                payloads(hosts, per_host, 128),
                |_, roles, payload| {
                    // Identify the fragment by its payload fill byte.
                    let frag = payload.first().copied().unwrap_or(0) as usize;
                    let frag = (0..hosts)
                        .flat_map(|h| (0..per_host).map(move |i| (h, i)))
                        .position(|(h, i)| h * 31 + i == frag)
                        .unwrap();
                    for &r in roles {
                        applied[frag][r].fetch_add(1, Ordering::SeqCst);
                    }
                    std::thread::sleep(Duration::from_micros(500));
                },
                |_, _| {},
            )
            .unwrap();
        assert_eq!(metrics.fragments_completed, total);
        assert_eq!(metrics.heal_events, 1, "one confirmed death");
        assert!(metrics.detection_latency > SimDuration::ZERO);
        for (f, roles) in applied.iter().enumerate() {
            for (r, cell) in roles.iter().enumerate() {
                assert_eq!(
                    cell.load(Ordering::SeqCst),
                    1,
                    "fragment {f} role {r} must be applied exactly once"
                );
            }
        }
    }

    #[test]
    fn planned_join_and_drain_over_real_sockets() {
        // Host 2 starts as a standby and joins at 1 ms (rendezvous moves
        // role 0 to it — a pure function of ids); host 0, now role-less,
        // drains at 8 ms while per-buffer sleeps keep the ring busy well
        // past that instant. The departed host's sockets see a real FIN.
        let hosts = 3;
        let per_host = 3;
        let rescale = RescalePlan::seeded(77)
            .join_host(HostId(2), SimTime::from_nanos(1_000_000))
            .drain_host(HostId(0), SimTime::from_nanos(8_000_000));
        let config = RingConfig::paper(hosts)
            .with_ack_timeout(SimDuration::from_millis(20))
            .with_max_retransmits(6);
        let mut envelopes = payloads(hosts, per_host, 64);
        envelopes[2].clear(); // the standby provisions no fragments
        let counts: Vec<AtomicUsize> = (0..hosts).map(|_| AtomicUsize::new(0)).collect();
        let (metrics, tracer) = TcpRingDriver::new(&config)
            .with_rescale_plan(&rescale)
            .with_tracer(true)
            .run(envelopes, |h, _: &Vec<u8>| {
                counts[h.0].fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(2));
            })
            .unwrap();
        assert_eq!(metrics.fragments_completed, 2 * per_host);
        assert_eq!(metrics.membership_epoch, 2, "one join + one drain");
        assert_eq!(metrics.rescale_joins, 1);
        assert_eq!(metrics.rescale_drains, 1);
        assert_eq!(metrics.rescale_handoffs, 1, "role 0 moved to the newcomer");
        assert_eq!(metrics.heal_events, 0, "a planned rescale is not a fault");
        assert!(
            counts[2].load(Ordering::SeqCst) > 0,
            "newcomer must process"
        );
        assert_eq!(tracer.count_events("activated"), 1);
        assert_eq!(tracer.count_events("departed"), 1);
        let c = tracer.counters();
        assert_eq!(c.get(counter::RESCALE_JOINS), 1);
        assert_eq!(c.get(counter::RESCALE_DRAINS), 1);
        assert_eq!(c.get(counter::RESCALE_HANDOFFS), 1);
    }

    #[test]
    fn rescale_plans_are_validated_up_front() {
        let out_of_range = RescalePlan::seeded(1).drain_host(HostId(9), SimTime::from_nanos(1_000));
        let err = TcpRingDriver::new(&RingConfig::paper(2))
            .with_rescale_plan(&out_of_range)
            .run(payloads(2, 1, 8), |_, _| {})
            .unwrap_err();
        assert!(matches!(err, RingError::UnsupportedFault(_)));

        let standby_with_fragments =
            RescalePlan::seeded(1).join_host(HostId(1), SimTime::from_nanos(1_000));
        let err = TcpRingDriver::new(&RingConfig::paper(2))
            .with_rescale_plan(&standby_with_fragments)
            .run(payloads(2, 1, 8), |_, _| {})
            .unwrap_err();
        assert!(matches!(err, RingError::UnsupportedFault(_)));

        let single = RescalePlan::seeded(1).drain_host(HostId(0), SimTime::from_nanos(1_000));
        let err = TcpRingDriver::new(&RingConfig::paper(1))
            .with_rescale_plan(&single)
            .run(payloads(1, 1, 8), |_, _| {})
            .unwrap_err();
        assert!(matches!(err, RingError::UnsupportedFault(_)));
    }

    #[test]
    fn traced_runs_materialize_every_counter() {
        let (metrics, tracer) = TcpRingDriver::new(&RingConfig::paper(2))
            .with_tracer(true)
            .run(payloads(2, 2, 32), |_, _| {})
            .unwrap();
        assert_eq!(metrics.fragments_completed, 4);
        assert!(tracer.is_enabled());
        let counters = tracer.counters();
        for name in [
            counter::ENVELOPES_SENT,
            counter::ENVELOPES_RECEIVED,
            counter::FRAGMENTS_RETIRED,
            counter::RETRANSMITS,
            counter::CHECKSUM_MISMATCHES,
            counter::HEAL_EVENTS,
            counter::FRAGMENTS_RESENT,
            counter::RESCALE_JOINS,
            counter::RESCALE_DRAINS,
            counter::RESCALE_HANDOFFS,
        ] {
            assert!(
                counters.iter().any(|(n, _)| n == name),
                "counter {name} must be observed"
            );
        }
        assert_eq!(counters.get(counter::FRAGMENTS_RETIRED), 4);
    }

    #[test]
    fn multiplexed_queries_complete_over_sockets() {
        let hosts = 3;
        let queries = 3;
        let cfg = RingConfig::paper(hosts)
            .with_ack_timeout(SimDuration::from_millis(50))
            .with_max_retransmits(6);
        let tenants: Vec<(u32, Vec<Vec<Vec<u8>>>)> = (0..queries)
            .map(|q| (q as u32, payloads(hosts, 2, 64)))
            .collect();
        let counts: Vec<AtomicUsize> = (0..hosts).map(|_| AtomicUsize::new(0)).collect();
        let (metrics, spans) = TcpRingDriver::new(&cfg)
            .with_tracer(true)
            .run_queries(
                tenants,
                2,
                |h, _query, _roles: &[usize], _: &Vec<u8>| {
                    counts[h.0].fetch_add(1, Ordering::SeqCst);
                },
                |_, _| {},
            )
            .unwrap();
        assert_eq!(metrics.fragments_completed, queries * hosts * 2);
        assert_eq!(metrics.queries.len(), queries);
        for (q, m) in metrics.queries.iter().enumerate() {
            assert_eq!(m.tenant, q as u32);
            assert!(m.completed, "query {q}: {m:?}");
            assert_eq!(m.fragments_completed, hosts * 2);
        }
        for c in &counts {
            assert_eq!(c.load(Ordering::SeqCst), queries * hosts * 2);
        }
        let counters = spans.counters();
        assert_eq!(counters.get(counter::QUERIES_ADMITTED), queries as u64);
        assert_eq!(counters.get(counter::QUERIES_COMPLETED), queries as u64);
    }

    #[test]
    fn multiplexed_queries_survive_socket_faults() {
        let hosts = 3;
        let queries = 4;
        let mut plan = FaultPlan::seeded(19);
        for h in 0..hosts {
            plan = plan.lossy_link(HostId(h), 0.08);
        }
        let cfg = RingConfig::paper(hosts)
            .with_ack_timeout(SimDuration::from_millis(40))
            .with_max_retransmits(8);
        let tenants: Vec<(u32, Vec<Vec<Vec<u8>>>)> = (0..queries)
            .map(|q| (q as u32, payloads(hosts, 2, 48)))
            .collect();
        let (metrics, _) = TcpRingDriver::new(&cfg)
            .with_fault_plan(&plan)
            .run_queries(
                tenants,
                queries,
                |_, _, _: &[usize], _: &Vec<u8>| {},
                |_, _| {},
            )
            .unwrap();
        assert_eq!(metrics.fragments_completed, queries * hosts * 2);
        assert!(metrics.queries.iter().all(|m| m.completed));
    }
}
