//! Property-based tests of the Data Roundabout transport protocol.

use std::collections::HashMap;

use data_roundabout::protocol::{envelope_batches, Input, Output, ProtocolConfig, RingProtocol};
use data_roundabout::{FixedCostApp, RingConfig, RingDriver, SimRing};
use proptest::prelude::*;
use simnet::time::SimDuration;
use simnet::topology::HostId;

fn payloads(counts: &[usize], bytes: usize) -> Vec<Vec<Vec<u8>>> {
    counts
        .iter()
        .map(|&n| (0..n).map(|_| vec![0u8; bytes]).collect())
        .collect()
}

/// Drives the sans-IO protocol core directly — no channels, threads or
/// simulator — applying the pending inputs in an order chosen by a seeded
/// xorshift, so every proptest case exercises a different (but legal)
/// interleaving of deliveries, completions and acks.
fn drive_protocol(counts: &[usize], buffers: usize, reliable: bool, seed: u64) {
    let hosts = counts.len();
    let total: usize = counts.iter().sum();
    let proto_cfg = ProtocolConfig {
        hosts,
        buffers_per_host: buffers,
        max_retransmits: 8,
        continuous: false,
        reliable,
    };
    let mut proto = RingProtocol::new(proto_cfg, envelope_batches(payloads(counts, 16), hosts));
    let mut pending: Vec<Input<Vec<u8>>> = (0..hosts)
        .map(|h| Input::SetupDone { host: HostId(h) })
        .collect();
    let mut joins: HashMap<(usize, usize), usize> = HashMap::new();
    let mut wire_deliveries: HashMap<(usize, usize), usize> = HashMap::new();
    let mut rng = seed | 1;
    let mut steps = 0usize;
    while !pending.is_empty() {
        steps += 1;
        prop_assert!(steps < 200_000, "interleaving did not quiesce");
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let idx = (rng as usize) % pending.len();
        let input = pending.swap_remove(idx);
        for output in proto.input(input) {
            match output {
                Output::StartJoin { host, id, .. } => {
                    *joins.entry((host.0, id.0)).or_default() += 1;
                    pending.push(Input::JoinDone {
                        host,
                        app_finished: false,
                    });
                }
                Output::Send {
                    from, to, tid, env, ..
                } => {
                    // A quiet medium: every attempt arrives intact, in
                    // whatever order the interleaving picks. Retransmit
                    // timers are armed but never fire.
                    pending.push(Input::SendDone { from });
                    pending.push(Input::Delivered { to, env, tid });
                }
                Output::Ack { tid, .. } => pending.push(Input::Ack { tid }),
                Output::Delivered { host, id, .. } => {
                    *wire_deliveries.entry((host.0, id.0)).or_default() += 1;
                }
                Output::Teardown { reason } => panic!("teardown: {reason}"),
                _ => {}
            }
        }
        for h in 0..hosts {
            let hp = proto.host(HostId(h));
            // The credit invariant: pool occupancy stays within the
            // configured buffer budget (it can never go negative — the
            // counter is unsigned and reserve/release are balanced).
            prop_assert!(
                hp.pool_used() <= hp.buffers(),
                "host {h} oversubscribed: {} of {} buffers",
                hp.pool_used(),
                hp.buffers()
            );
        }
    }
    prop_assert_eq!(proto.fragments_completed(), total, "every fragment retires");
    for h in 0..hosts {
        let hp = proto.host(HostId(h));
        prop_assert_eq!(
            hp.pool_used(),
            0,
            "host {} leaked buffer slots across the revolution",
            h
        );
        prop_assert_eq!(hp.fragments_processed(), total, "host {} join count", h);
        prop_assert_eq!(proto.retransmits(HostId(h)), 0, "quiet medium");
        prop_assert_eq!(proto.checksum_mismatches(HostId(h)), 0, "quiet medium");
    }
    // Exactly-once processing: every host joined every fragment once.
    for (&(h, id), &n) in &joins {
        prop_assert_eq!(n, 1, "host {} joined {} {} times", h, id, n);
    }
    prop_assert_eq!(
        joins.len(),
        hosts * total,
        "every (host, fragment) pair joined"
    );
    // Exactly-once wire delivery: each fragment crosses each of its
    // hosts-1 downstream hops exactly once.
    for (&(h, id), &n) in &wire_deliveries {
        prop_assert_eq!(n, 1, "host {} received {} {} times", h, id, n);
    }
    if hosts > 1 {
        prop_assert_eq!(wire_deliveries.len(), (hosts - 1) * total);
    }
    prop_assert_eq!(proto.heal_events(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: every fragment completes its revolution and every
    /// host processes every fragment exactly once — for any ring size,
    /// buffer depth, fragment distribution and payload size.
    #[test]
    fn sim_ring_conserves_fragments(
        counts in prop::collection::vec(0usize..6, 1..8),
        buffers in 1usize..5,
        kilobytes in 1usize..64,
        join_ms in 0u64..8,
    ) {
        let hosts = counts.len();
        let total: usize = counts.iter().sum();
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(join_ms),
        );
        let config = RingConfig::paper(hosts).with_buffers(buffers);
        let out = SimRing::new(config, payloads(&counts, kilobytes << 10), app).run();
        prop_assert_eq!(out.metrics.fragments_completed, total);
        for h in &out.metrics.hosts {
            prop_assert_eq!(h.fragments_processed, total);
        }
        prop_assert_eq!(
            out.app.processed.iter().sum::<usize>(),
            total * hosts
        );
    }

    /// Byte accounting: every multi-host fragment crosses exactly
    /// `hosts − 1` links, so total forwarded bytes are exact.
    #[test]
    fn sim_ring_accounts_bytes(
        counts in prop::collection::vec(0usize..5, 2..6),
        bytes in 1usize..100_000,
    ) {
        let hosts = counts.len();
        let total: usize = counts.iter().sum();
        let app = FixedCostApp::new(hosts, SimDuration::ZERO, SimDuration::from_micros(10));
        let out = SimRing::new(RingConfig::paper(hosts), payloads(&counts, bytes), app).run();
        prop_assert_eq!(
            out.metrics.total_bytes_forwarded(),
            (total * bytes * (hosts - 1)) as u64
        );
    }

    /// Virtual phase accounting is consistent on every host.
    #[test]
    fn sim_ring_phase_accounting(
        counts in prop::collection::vec(0usize..5, 1..7),
        buffers in 1usize..4,
    ) {
        let hosts = counts.len();
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(2),
            SimDuration::from_millis(3),
        );
        let config = RingConfig::paper(hosts).with_buffers(buffers);
        let out = SimRing::new(config, payloads(&counts, 4096), app).run();
        for h in &out.metrics.hosts {
            prop_assert_eq!(h.join_busy + h.sync, h.join_window);
            prop_assert_eq!(h.setup, SimDuration::from_millis(2));
        }
    }

    /// The real-thread backend conserves fragments under any interleaving.
    #[test]
    fn thread_ring_conserves_fragments(
        counts in prop::collection::vec(0usize..5, 1..6),
        buffers in 1usize..4,
    ) {
        let hosts = counts.len();
        let total: usize = counts.iter().sum();
        let config = RingConfig::paper(hosts).with_buffers(buffers);
        let (metrics, _) = RingDriver::new(&config)
            .run(payloads(&counts, 64), |_, _| {})
            .unwrap();
        prop_assert_eq!(metrics.fragments_completed, total);
        for h in &metrics.hosts {
            prop_assert_eq!(h.fragments_processed, total);
        }
    }

    /// The protocol core alone, classic path: any legal interleaving of
    /// inputs preserves the credit invariant, conserves buffer slots
    /// across the revolution, and joins/delivers exactly once per host.
    #[test]
    fn protocol_core_classic_survives_any_interleaving(
        counts in prop::collection::vec(0usize..5, 1..6),
        buffers in 1usize..4,
        seed in any::<u64>(),
    ) {
        drive_protocol(&counts, buffers, false, seed);
    }

    /// Same invariants on the reliable (acked stop-and-wait) path, with
    /// acks and completions racing deliveries in random order.
    #[test]
    fn protocol_core_reliable_survives_any_interleaving(
        counts in prop::collection::vec(0usize..5, 1..6),
        buffers in 1usize..4,
        seed in any::<u64>(),
    ) {
        drive_protocol(&counts, buffers, true, seed);
    }

    /// Determinism: identical simulated runs produce identical metrics.
    #[test]
    fn sim_ring_is_deterministic(
        counts in prop::collection::vec(0usize..4, 1..6),
        join_us in 0u64..5_000,
    ) {
        let hosts = counts.len();
        let run = || {
            let app = FixedCostApp::new(
                hosts,
                SimDuration::from_micros(100),
                SimDuration::from_micros(join_us),
            );
            SimRing::new(RingConfig::paper(hosts), payloads(&counts, 1024), app)
                .run()
                .metrics
        };
        prop_assert_eq!(run(), run());
    }
}
