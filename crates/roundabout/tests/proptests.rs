//! Property-based tests of the Data Roundabout transport protocol.

use std::collections::HashMap;

use data_roundabout::protocol::{
    envelope_batches, query_batches, Input, Output, ProtocolConfig, RingProtocol, Timer,
};
use data_roundabout::{FixedCostApp, RingConfig, RingDriver, SimRing};
use proptest::prelude::*;
use simnet::time::SimDuration;
use simnet::topology::HostId;

fn payloads(counts: &[usize], bytes: usize) -> Vec<Vec<Vec<u8>>> {
    counts
        .iter()
        .map(|&n| (0..n).map(|_| vec![0u8; bytes]).collect())
        .collect()
}

/// Drives the sans-IO protocol core directly — no channels, threads or
/// simulator — applying the pending inputs in an order chosen by a seeded
/// xorshift, so every proptest case exercises a different (but legal)
/// interleaving of deliveries, completions and acks.
fn drive_protocol(counts: &[usize], buffers: usize, reliable: bool, seed: u64) {
    let hosts = counts.len();
    let total: usize = counts.iter().sum();
    let proto_cfg = ProtocolConfig {
        hosts,
        buffers_per_host: buffers,
        max_retransmits: 8,
        continuous: false,
        reliable,
        standby: 0,
    };
    let mut proto = RingProtocol::new(proto_cfg, envelope_batches(payloads(counts, 16), hosts));
    let mut pending: Vec<Input<Vec<u8>>> = (0..hosts)
        .map(|h| Input::SetupDone { host: HostId(h) })
        .collect();
    let mut joins: HashMap<(usize, usize), usize> = HashMap::new();
    let mut wire_deliveries: HashMap<(usize, usize), usize> = HashMap::new();
    let mut rng = seed | 1;
    let mut steps = 0usize;
    while !pending.is_empty() {
        steps += 1;
        prop_assert!(steps < 200_000, "interleaving did not quiesce");
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let idx = (rng as usize) % pending.len();
        let input = pending.swap_remove(idx);
        for output in proto.input(input) {
            match output {
                Output::StartJoin { host, id, .. } => {
                    *joins.entry((host.0, id.0)).or_default() += 1;
                    pending.push(Input::JoinDone {
                        host,
                        app_finished: false,
                    });
                }
                Output::Send {
                    from, to, tid, env, ..
                } => {
                    // A quiet medium: every attempt arrives intact, in
                    // whatever order the interleaving picks. Retransmit
                    // timers are armed but never fire.
                    pending.push(Input::SendDone { from });
                    pending.push(Input::Delivered { to, env, tid });
                }
                Output::Ack { tid, .. } => pending.push(Input::Ack { tid }),
                Output::Delivered { host, id, .. } => {
                    *wire_deliveries.entry((host.0, id.0)).or_default() += 1;
                }
                Output::Teardown { reason } => panic!("teardown: {reason}"),
                _ => {}
            }
        }
        for h in 0..hosts {
            let hp = proto.host(HostId(h));
            // The credit invariant: pool occupancy stays within the
            // configured buffer budget (it can never go negative — the
            // counter is unsigned and reserve/release are balanced).
            prop_assert!(
                hp.pool_used() <= hp.buffers(),
                "host {h} oversubscribed: {} of {} buffers",
                hp.pool_used(),
                hp.buffers()
            );
        }
    }
    prop_assert_eq!(proto.fragments_completed(), total, "every fragment retires");
    for h in 0..hosts {
        let hp = proto.host(HostId(h));
        prop_assert_eq!(
            hp.pool_used(),
            0,
            "host {} leaked buffer slots across the revolution",
            h
        );
        prop_assert_eq!(hp.fragments_processed(), total, "host {} join count", h);
        prop_assert_eq!(proto.retransmits(HostId(h)), 0, "quiet medium");
        prop_assert_eq!(proto.checksum_mismatches(HostId(h)), 0, "quiet medium");
    }
    // Exactly-once processing: every host joined every fragment once.
    for (&(h, id), &n) in &joins {
        prop_assert_eq!(n, 1, "host {} joined {} {} times", h, id, n);
    }
    prop_assert_eq!(
        joins.len(),
        hosts * total,
        "every (host, fragment) pair joined"
    );
    // Exactly-once wire delivery: each fragment crosses each of its
    // hosts-1 downstream hops exactly once.
    for (&(h, id), &n) in &wire_deliveries {
        prop_assert_eq!(n, 1, "host {} received {} {} times", h, id, n);
    }
    if hosts > 1 {
        prop_assert_eq!(wire_deliveries.len(), (hosts - 1) * total);
    }
    prop_assert_eq!(proto.heal_events(), 0);
}

/// Drives the reliable protocol core through a planned rescale — every
/// provisioned standby joins, one member drains, and optionally one host
/// crashes — with the driver's obligations applied in a random legal
/// order, including armed timers. Timer fidelity: a retransmit tick may
/// only fire once the transfer it watches has actually settled on the
/// (instant, lossless) wire — i.e. its delivery and ack are no longer
/// pending — exactly the contract every real driver provides. Drain
/// deadlines and probes carry no such dependency and fire whenever the
/// interleaving picks them, so a perfectly healthy drain can stall-escalate
/// into crash healing mid-test; the invariants must hold regardless.
fn drive_rescale(counts: &[usize], standbys: usize, buffers: usize, crash: bool, seed: u64) {
    let members = counts.len();
    let hosts = members + standbys;
    let mut standby_mask = 0u64;
    for h in members..hosts {
        standby_mask |= 1 << h;
    }
    let mut rng = seed | 1;
    let mut next_rng = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let drain_target = (next_rng() as usize) % members;
    let crash_target = (next_rng() as usize) % members;

    let mut all_counts = counts.to_vec();
    if crash {
        // The failure detector is traffic-driven (retransmit and probe
        // exhaustion), exactly as in the real backends — a corpse no
        // fragment ever needs to reach is undetectable by construction.
        // The crash target therefore originates nothing; its callers
        // pass counts ≥ 1, so every other member originates traffic
        // that must hop through the corpse.
        all_counts[crash_target] = 0;
    }
    all_counts.resize(hosts, 0);
    let total: usize = all_counts.iter().sum();
    let proto_cfg = ProtocolConfig {
        hosts,
        buffers_per_host: buffers,
        max_retransmits: 4,
        continuous: false,
        reliable: true,
        standby: standby_mask,
    };
    let mut proto = RingProtocol::new(
        proto_cfg,
        envelope_batches(payloads(&all_counts, 16), hosts),
    );

    let mut pending: Vec<Input<Vec<u8>>> = (0..hosts)
        .map(|h| Input::SetupDone { host: HostId(h) })
        .collect();
    for h in members..hosts {
        pending.push(Input::JoinRequest { host: HostId(h) });
    }
    pending.push(Input::DrainRequest {
        host: HostId(drain_target),
    });
    if crash {
        pending.push(Input::PeerDead {
            host: HostId(crash_target),
        });
    }

    // Exactly-once handoff ledger: every stationary role has one owner at
    // all times, and each Handoff/Absorb moves it from exactly the host
    // that held it — a duplicate or replayed handoff trips the ledger.
    let mut owner: HashMap<usize, usize> = (0..members).map(|r| (r, r)).collect();
    // Exactly-once retirement: a fragment forked by a buggy healing path
    // retires twice; a lost one never retires.
    let mut retired: Vec<usize> = Vec::new();

    // A retransmit tick is stalled-transfer evidence; it may not outrun
    // the wire it is watching.
    fn tick_eligible(input: &Input<Vec<u8>>, pending: &[Input<Vec<u8>>]) -> bool {
        let Input::Tick {
            timer: Timer::Retransmit { tid, .. },
        } = input
        else {
            return true;
        };
        !pending.iter().any(|p| {
            matches!(p, Input::Delivered { tid: t, .. } if t == tid)
                || matches!(p, Input::Ack { tid: t } if t == tid)
        })
    }

    let mut steps = 0usize;
    while !pending.is_empty() {
        steps += 1;
        assert!(steps < 200_000, "rescale interleaving did not quiesce");
        let eligible: Vec<usize> = (0..pending.len())
            .filter(|&i| tick_eligible(&pending[i], &pending))
            .collect();
        assert!(!eligible.is_empty(), "only ineligible ticks left pending");
        let idx = eligible[(next_rng() as usize) % eligible.len()];
        let input = pending.swap_remove(idx);
        let mut fates: Vec<u64> = Vec::new();
        for output in proto.input(input) {
            match output {
                Output::StartJoin { host, .. } => pending.push(Input::JoinDone {
                    host,
                    app_finished: false,
                }),
                Output::Send {
                    from, to, tid, env, ..
                } => {
                    // A quiet, lossless wire: report the attempt's fate
                    // (intact) exactly as every real driver does after
                    // rolling its fault dice.
                    fates.push(tid);
                    pending.push(Input::SendDone { from });
                    pending.push(Input::Delivered { to, env, tid });
                }
                Output::Ack { tid, .. } => pending.push(Input::Ack { tid }),
                Output::ArmTimer { timer, .. } => pending.push(Input::Tick { timer }),
                Output::Handoff { from, to, roles } => {
                    for &r in &roles {
                        assert_eq!(
                            owner.insert(r, to.0),
                            Some(from.0),
                            "role {r} handed off by host {} without owning it",
                            from.0
                        );
                    }
                    pending.push(Input::AbsorbDone { host: to });
                }
                Output::Absorb {
                    survivor,
                    dead,
                    roles,
                } => {
                    for &r in &roles {
                        assert_eq!(
                            owner.insert(r, survivor.0),
                            Some(dead.0),
                            "role {r} absorbed from host {} without it owning it",
                            dead.0
                        );
                    }
                    pending.push(Input::AbsorbDone { host: survivor });
                }
                Output::Departed { host, .. } => {
                    assert!(
                        owner.values().all(|&o| o != host.0),
                        "host {} departed while still owning a role",
                        host.0
                    );
                }
                Output::Teardown { reason } => panic!("teardown: {reason}"),
                Output::Retire { id, .. } => {
                    assert!(
                        !retired.contains(&id.0),
                        "fragment {} retired twice — healing forked it",
                        id.0
                    );
                    retired.push(id.0);
                }
                _ => {}
            }
        }
        for tid in fates {
            proto.attempt_fate(tid, false, false);
        }
        for h in 0..hosts {
            let hp = proto.host(HostId(h));
            assert!(
                hp.pool_used() <= hp.buffers(),
                "host {h} oversubscribed: {} of {} buffers",
                hp.pool_used(),
                hp.buffers()
            );
        }
    }

    // A crashed host is only ever *confirmed* dead by traffic: an
    // exhausted retransmission budget or probe at some live peer. A
    // corpse that accepted the last circulating fragments and owes
    // nobody an ack generates neither — no traffic-driven failure
    // detector can see it (real deployments layer heartbeats on top,
    // out of the core's scope). That stall is legal, but only with
    // exact accounting: every missing fragment rests in the corpse's
    // pool and nothing else leaked.
    let corpse = HostId(crash_target);
    let corpse_unconfirmed = crash && proto.is_member(corpse) && proto.is_crashed(corpse);
    if corpse_unconfirmed && proto.fragments_completed() < total {
        assert_eq!(
            proto.fragments_completed() + proto.host(corpse).pool_used(),
            total,
            "stall is not the undetectable-corpse case: fragments lost outside host {crash_target}"
        );
    } else {
        assert_eq!(
            proto.fragments_completed(),
            total,
            "every fragment survives the rescale (drain={drain_target} crash={crash_target})"
        );
    }
    assert_eq!(
        proto.membership_epoch(),
        proto.rescale_joins() + proto.rescale_drains(),
        "the epoch counts completed transitions exactly"
    );
    // Every stationary role ends at a live ring member. The one excuse
    // is an unconfirmed corpse (crash observed by the driver but never
    // by the ring — e.g. the crash landed after quiescence): until the
    // failure detector confirms the death, the corpse keeps its roles.
    for (&role, &holder) in &owner {
        if corpse_unconfirmed && holder == crash_target {
            continue;
        }
        let host = HostId(holder);
        assert!(
            proto.is_member(host) && !proto.is_crashed(host),
            "role {role} stranded on host {holder}"
        );
    }
    for h in 0..hosts {
        let host = HostId(h);
        if !proto.is_crashed(host) {
            assert_eq!(
                proto.host(host).pool_used(),
                0,
                "host {h} leaked buffer slots across the rescale"
            );
        }
    }
}

/// Drives a multi-tenant ring — 2–4 concurrent queries multiplexed over
/// one reliable protocol core — through a random legal interleaving.
/// Checked invariants, after every single input:
///
/// * the global credit invariant (pool occupancy within budget);
/// * the **per-query credit partition**: no query ever holds more than
///   its quota of any host's pool;
/// * the admission bound: at most `max_active` queries active at once;
/// * the fairness bound: a starved query's transmit deficit never
///   exceeds `queries × pool depth` (DRR with quantum 1).
///
/// And at quiescence: exactly-once join and wire delivery per
/// `(query, fragment)` pair, every query completes, nothing leaks.
fn drive_multiplex(hosts: usize, n_queries: usize, buffers: usize, max_active: usize, seed: u64) {
    let mut rng = seed | 1;
    let mut next_rng = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    // Random per-(query, host) fragment counts; every query originates
    // at least one fragment so it has a completion to report.
    let per_query: Vec<Vec<usize>> = (0..n_queries)
        .map(|_| {
            let mut counts: Vec<usize> = (0..hosts).map(|_| (next_rng() as usize) % 3).collect();
            let anchor = (next_rng() as usize) % hosts;
            counts[anchor] = counts[anchor].max(1);
            counts
        })
        .collect();
    let total: usize = per_query.iter().flat_map(|c| c.iter()).sum();

    let batches = query_batches(
        per_query
            .iter()
            .enumerate()
            .map(|(q, counts)| (q as u32, payloads(counts, 16)))
            .collect(),
        hosts,
    );
    // Global fragment numbering lets the invariants attribute every
    // ledger event back to its (query, fragment) pair.
    let mut id_query: HashMap<usize, u32> = HashMap::new();
    for (_, per_host) in &batches {
        for envs in per_host {
            for env in envs {
                id_query.insert(env.id.0, env.query);
            }
        }
    }

    let proto_cfg = ProtocolConfig {
        hosts,
        buffers_per_host: buffers,
        max_retransmits: 8,
        continuous: false,
        reliable: true,
        standby: 0,
    };
    let mut proto = RingProtocol::new_multi(proto_cfg, batches, max_active);
    let deficit_bound = (n_queries * buffers) as u64;

    let mut pending: Vec<Input<Vec<u8>>> = (0..hosts)
        .map(|h| Input::SetupDone { host: HostId(h) })
        .collect();
    let mut joins: HashMap<(usize, u32, usize), usize> = HashMap::new();
    let mut deliveries: HashMap<(usize, u32, usize), usize> = HashMap::new();
    let mut active: Vec<u32> = Vec::new();
    let mut admitted: Vec<u32> = Vec::new();
    let mut done: Vec<u32> = Vec::new();
    let mut steps = 0usize;
    while !pending.is_empty() {
        steps += 1;
        assert!(steps < 200_000, "multiplexed interleaving did not quiesce");
        let idx = (next_rng() as usize) % pending.len();
        let input = pending.swap_remove(idx);
        let mut fates: Vec<u64> = Vec::new();
        for output in proto.input(input) {
            match output {
                Output::StartJoin { host, id, .. } => {
                    let q = id_query[&id.0];
                    assert_eq!(
                        proto.processing_query(host),
                        q,
                        "processing slot misattributes fragment {} to another query",
                        id.0
                    );
                    *joins.entry((host.0, q, id.0)).or_default() += 1;
                    pending.push(Input::JoinDone {
                        host,
                        app_finished: false,
                    });
                }
                Output::Send {
                    from, to, tid, env, ..
                } => {
                    fates.push(tid);
                    pending.push(Input::SendDone { from });
                    pending.push(Input::Delivered { to, env, tid });
                }
                Output::Ack { tid, .. } => pending.push(Input::Ack { tid }),
                Output::Delivered { host, id, .. } => {
                    *deliveries
                        .entry((host.0, id_query[&id.0], id.0))
                        .or_default() += 1;
                }
                Output::QueryAdmitted { query, .. } => {
                    assert!(!admitted.contains(&query), "query {query} admitted twice");
                    admitted.push(query);
                    active.push(query);
                    assert!(
                        active.len() <= max_active,
                        "admission bound violated: {} active, bound {max_active}",
                        active.len()
                    );
                }
                Output::QueryDone { query, .. } => {
                    assert!(!done.contains(&query), "query {query} completed twice");
                    done.push(query);
                    active.retain(|&q| q != query);
                }
                Output::Teardown { reason } => panic!("teardown: {reason}"),
                _ => {}
            }
        }
        for tid in fates {
            proto.attempt_fate(tid, false, false);
        }
        let ledger = proto
            .query_ledger()
            .expect("multi-tenant ring has a ledger");
        let quota = ledger.quota();
        assert!(
            ledger.max_deficit() <= deficit_bound,
            "fairness bound violated: deficit {} exceeds {deficit_bound}",
            ledger.max_deficit()
        );
        for h in 0..hosts {
            let hp = proto.host(HostId(h));
            assert!(
                hp.pool_used() <= hp.buffers(),
                "host {h} oversubscribed: {} of {} buffers",
                hp.pool_used(),
                hp.buffers()
            );
            for (q, &used) in hp.used_by_query().iter().enumerate() {
                assert!(
                    used <= quota,
                    "query {q} holds {used} of host {h}'s pool, quota {quota}"
                );
            }
        }
    }

    assert_eq!(proto.fragments_completed(), total, "every fragment retires");
    assert_eq!(admitted.len(), n_queries, "every query was admitted");
    assert_eq!(done.len(), n_queries, "every query completed");
    let ledger = proto.query_ledger().unwrap();
    assert_eq!(ledger.admitted_total(), n_queries as u64);
    assert_eq!(ledger.completed_total(), n_queries as u64);
    assert!(ledger.all_done());
    for (q, m) in proto.query_metrics().iter().enumerate() {
        assert!(m.completed, "query {q} did not complete");
        assert_eq!(m.retransmits, 0, "quiet medium");
    }
    for h in 0..hosts {
        let hp = proto.host(HostId(h));
        assert_eq!(hp.pool_used(), 0, "host {h} leaked buffer slots");
        assert!(
            hp.used_by_query().iter().all(|&u| u == 0),
            "host {h} leaked a per-query credit"
        );
    }
    // Exactly-once join per (host, query, fragment): every host applied
    // every query's every fragment once, and nothing was forked.
    for (&(h, q, id), &n) in &joins {
        assert_eq!(n, 1, "host {h} joined query {q} fragment {id} {n} times");
    }
    assert_eq!(
        joins.len(),
        hosts * total,
        "every (host, query, fragment) joined"
    );
    // Exactly-once wire delivery per (query, fragment) and hop.
    for (&(h, q, id), &n) in &deliveries {
        assert_eq!(n, 1, "host {h} received query {q} fragment {id} {n} times");
    }
    assert_eq!(deliveries.len(), (hosts - 1) * total);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: every fragment completes its revolution and every
    /// host processes every fragment exactly once — for any ring size,
    /// buffer depth, fragment distribution and payload size.
    #[test]
    fn sim_ring_conserves_fragments(
        counts in prop::collection::vec(0usize..6, 1..8),
        buffers in 1usize..5,
        kilobytes in 1usize..64,
        join_ms in 0u64..8,
    ) {
        let hosts = counts.len();
        let total: usize = counts.iter().sum();
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(join_ms),
        );
        let config = RingConfig::paper(hosts).with_buffers(buffers);
        let out = SimRing::new(config, payloads(&counts, kilobytes << 10), app).run();
        prop_assert_eq!(out.metrics.fragments_completed, total);
        for h in &out.metrics.hosts {
            prop_assert_eq!(h.fragments_processed, total);
        }
        prop_assert_eq!(
            out.app.processed.iter().sum::<usize>(),
            total * hosts
        );
    }

    /// Byte accounting: every multi-host fragment crosses exactly
    /// `hosts − 1` links, so total forwarded bytes are exact.
    #[test]
    fn sim_ring_accounts_bytes(
        counts in prop::collection::vec(0usize..5, 2..6),
        bytes in 1usize..100_000,
    ) {
        let hosts = counts.len();
        let total: usize = counts.iter().sum();
        let app = FixedCostApp::new(hosts, SimDuration::ZERO, SimDuration::from_micros(10));
        let out = SimRing::new(RingConfig::paper(hosts), payloads(&counts, bytes), app).run();
        prop_assert_eq!(
            out.metrics.total_bytes_forwarded(),
            (total * bytes * (hosts - 1)) as u64
        );
    }

    /// Virtual phase accounting is consistent on every host.
    #[test]
    fn sim_ring_phase_accounting(
        counts in prop::collection::vec(0usize..5, 1..7),
        buffers in 1usize..4,
    ) {
        let hosts = counts.len();
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(2),
            SimDuration::from_millis(3),
        );
        let config = RingConfig::paper(hosts).with_buffers(buffers);
        let out = SimRing::new(config, payloads(&counts, 4096), app).run();
        for h in &out.metrics.hosts {
            prop_assert_eq!(h.join_busy + h.sync, h.join_window);
            prop_assert_eq!(h.setup, SimDuration::from_millis(2));
        }
    }

    /// The real-thread backend conserves fragments under any interleaving.
    #[test]
    fn thread_ring_conserves_fragments(
        counts in prop::collection::vec(0usize..5, 1..6),
        buffers in 1usize..4,
    ) {
        let hosts = counts.len();
        let total: usize = counts.iter().sum();
        let config = RingConfig::paper(hosts).with_buffers(buffers);
        let (metrics, _) = RingDriver::new(&config)
            .run(payloads(&counts, 64), |_, _| {})
            .unwrap();
        prop_assert_eq!(metrics.fragments_completed, total);
        for h in &metrics.hosts {
            prop_assert_eq!(h.fragments_processed, total);
        }
    }

    /// The protocol core alone, classic path: any legal interleaving of
    /// inputs preserves the credit invariant, conserves buffer slots
    /// across the revolution, and joins/delivers exactly once per host.
    #[test]
    fn protocol_core_classic_survives_any_interleaving(
        counts in prop::collection::vec(0usize..5, 1..6),
        buffers in 1usize..4,
        seed in any::<u64>(),
    ) {
        drive_protocol(&counts, buffers, false, seed);
    }

    /// Same invariants on the reliable (acked stop-and-wait) path, with
    /// acks and completions racing deliveries in random order.
    #[test]
    fn protocol_core_reliable_survives_any_interleaving(
        counts in prop::collection::vec(0usize..5, 1..6),
        buffers in 1usize..4,
        seed in any::<u64>(),
    ) {
        drive_protocol(&counts, buffers, true, seed);
    }

    /// Planned membership chaos: standbys join and a member drains at
    /// arbitrary points of the revolution (including drain deadlines that
    /// fire early and escalate). The credit invariant, exactly-once
    /// S-partition handoff and fragment conservation hold under every
    /// interleaving.
    #[test]
    fn protocol_core_rescale_survives_any_interleaving(
        counts in prop::collection::vec(0usize..4, 3..6),
        standbys in 1usize..3,
        buffers in 1usize..4,
        seed in any::<u64>(),
    ) {
        drive_rescale(&counts, standbys, buffers, false, seed);
    }

    /// The same invariants with an unplanned crash racing the planned
    /// rescale — including crash-of-the-drainee and crash-of-a-donor
    /// interleavings resolved by the healing path. Every surviving
    /// member originates at least one fragment so the corpse always
    /// sits in the path of detectable traffic (the driver zeroes the
    /// crash target's own allotment).
    #[test]
    fn protocol_core_rescale_survives_crashes(
        counts in prop::collection::vec(1usize..4, 3..6),
        standbys in 0usize..3,
        buffers in 1usize..4,
        seed in any::<u64>(),
    ) {
        drive_rescale(&counts, standbys, buffers, true, seed);
    }

    /// Multi-tenant multiplexing: 2–4 concurrent queries on one reliable
    /// ring, driven through random interleavings — the per-query credit
    /// partition, the admission bound, the DRR fairness bound and
    /// exactly-once join/delivery per (query, fragment) all hold.
    #[test]
    fn protocol_core_multiplex_survives_any_interleaving(
        hosts in 2usize..5,
        n_queries in 2usize..5,
        buffers in 2usize..4,
        max_active in 2usize..5,
        seed in any::<u64>(),
    ) {
        drive_multiplex(hosts, n_queries, buffers, max_active, seed);
    }

    /// The same invariants under maximal admission pressure: a bound of
    /// one serializes the queries through the admission queue, so every
    /// pending tenant is starved until its predecessors finish — the
    /// deficit and credit bounds must still hold.
    #[test]
    fn protocol_core_multiplex_single_slot_admission(
        hosts in 2usize..5,
        n_queries in 2usize..5,
        buffers in 1usize..4,
        seed in any::<u64>(),
    ) {
        drive_multiplex(hosts, n_queries, buffers, 1, seed);
    }

    /// Determinism: identical simulated runs produce identical metrics.
    #[test]
    fn sim_ring_is_deterministic(
        counts in prop::collection::vec(0usize..4, 1..6),
        join_us in 0u64..5_000,
    ) {
        let hosts = counts.len();
        let run = || {
            let app = FixedCostApp::new(
                hosts,
                SimDuration::from_micros(100),
                SimDuration::from_micros(join_us),
            );
            SimRing::new(RingConfig::paper(hosts), payloads(&counts, 1024), app)
                .run()
                .metrics
        };
        prop_assert_eq!(run(), run());
    }

    /// TCP frame codec round trip: any sequence of frames, encoded and
    /// streamed through the incremental decoder under *arbitrary*
    /// read-split boundaries (modeling partial reads and short writes),
    /// reassembles to exactly the same frames in the same order.
    #[test]
    fn tcp_frames_roundtrip_under_arbitrary_splits(
        frames in prop::collection::vec(arb_frame(), 1..8),
        seed in any::<u64>(),
        max_chunk in 1usize..96,
    ) {
        let mut wire = Vec::new();
        for frame in &frames {
            wire.extend_from_slice(&encode_frame(frame));
        }
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        let mut rng = seed | 1;
        let mut at = 0usize;
        while at < wire.len() {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let n = 1 + (rng as usize) % max_chunk;
            let end = (at + n).min(wire.len());
            decoder.feed(&wire[at..end]);
            at = end;
            while let Some(frame) = decoder.next_frame::<Vec<u8>>().expect("well-formed bytes") {
                decoded.push(frame);
            }
        }
        prop_assert_eq!(decoded, frames);
    }

    /// Malformed bytes never panic the decoder: arbitrary byte soup either
    /// decodes, waits for more input, or yields a typed [`FrameError`]
    /// that converts into a typed [`RingError`]. (Case in point: a length
    /// prefix beyond the frame cap is `Oversized`, an unknown kind byte is
    /// `BadKind` — never an index panic.)
    #[test]
    fn malformed_tcp_bytes_yield_typed_errors_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes);
        loop {
            match decoder.next_frame::<Vec<u8>>() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    // The error is typed and reportable as a ring error.
                    let ring: RingError = e.into();
                    prop_assert!(matches!(ring, RingError::Frame(_)));
                    break;
                }
            }
        }
    }

    /// Every length prefix beyond the cap is rejected as `Oversized`
    /// before the decoder waits for (or touches) a single body byte.
    #[test]
    fn oversized_length_prefixes_are_typed_errors(
        kind in 1u8..4,
        len in (MAX_FRAME as u64 + 1..=u32::MAX as u64).prop_map(|l| l as u32),
    ) {
        let mut decoder = FrameDecoder::new();
        let mut bytes = vec![kind];
        bytes.extend_from_slice(&len.to_le_bytes());
        decoder.feed(&bytes);
        let err = decoder.next_frame::<Vec<u8>>().expect_err("beyond the cap");
        prop_assert_eq!(err, FrameError::Oversized { len, max: MAX_FRAME });
    }

    /// The reactor's hierarchical timer wheel agrees with a naive
    /// sorted-list model under any interleaving of inserts (overdue,
    /// near, and multi-level-future deadlines so the due list, level 0
    /// and the cascade all see traffic), O(1) cancellations, and monotone
    /// or repeated advances. Checked invariants: a timer never fires
    /// before its deadline's tick, every eligible timer fires (none lost
    /// in a cascade), cancelled timers never fire, each batch comes out
    /// in `(deadline, insertion id)` order, and `len`/`next_deadline`
    /// track the live set exactly.
    #[test]
    fn timer_wheel_matches_the_sorted_model(
        ops in prop::collection::vec((0u8..4, any::<u64>()), 1..120),
        resolution_ticks in 1u64..50,
    ) {
        let resolution_ns = resolution_ticks * 100;
        let mut wheel = TimerWheel::new(Duration::from_nanos(resolution_ns));
        // Model: the live (armed, unfired, uncancelled) set, plus the
        // wheel's monotone notion of time. An entry becomes eligible once
        // its quantized tick is at or behind the wheel's tick.
        let mut live: Vec<(TimerId, u64)> = Vec::new();
        let mut now = 0u64;
        let mut wheel_tick = 0u64;
        let mut max_deadline = 0u64;
        let mut out: Vec<(TimerId, u64)> = Vec::new();
        let mut check_advance = |wheel: &mut TimerWheel<u64>,
                                 live: &mut Vec<(TimerId, u64)>,
                                 wheel_tick: &mut u64,
                                 now: u64| {
            *wheel_tick = (now / resolution_ns).max(*wheel_tick);
            let mut expected: Vec<(TimerId, u64)> = live
                .iter()
                .copied()
                .filter(|&(_, d)| d.div_ceil(resolution_ns) <= *wheel_tick)
                .collect();
            expected.sort_by_key(|&(id, d)| (d, id));
            live.retain(|&(_, d)| d.div_ceil(resolution_ns) > *wheel_tick);
            out.clear();
            wheel.advance(now, &mut out);
            prop_assert_eq!(&out, &expected, "advance({}) fired the wrong set", now);
        };
        for (op, x) in ops {
            match op {
                0 | 1 => {
                    let deadline = if x % 7 == 0 {
                        now.saturating_sub(x % (4 * resolution_ns))
                    } else {
                        now + x % (5_000 * resolution_ns)
                    };
                    let id = wheel.insert(deadline, deadline);
                    live.push((id, deadline));
                    max_deadline = max_deadline.max(deadline);
                }
                2 => {
                    if !live.is_empty() {
                        let (id, _) = live.swap_remove((x as usize) % live.len());
                        prop_assert!(wheel.cancel(id), "live timer must cancel");
                        prop_assert!(!wheel.cancel(id), "double-cancel must report dead");
                    }
                }
                _ => {
                    now += x % (200 * resolution_ns);
                    check_advance(&mut wheel, &mut live, &mut wheel_tick, now);
                }
            }
            prop_assert_eq!(wheel.len(), live.len());
            prop_assert_eq!(
                wheel.next_deadline(),
                live.iter().map(|&(_, d)| d).min()
            );
        }
        // Drain: one advance past every armed deadline fires the rest.
        now = now.max(max_deadline + resolution_ns);
        check_advance(&mut wheel, &mut live, &mut wheel_tick, now);
        prop_assert!(live.is_empty(), "model retained an entry past its deadline");
        prop_assert!(wheel.is_empty(), "wheel leaked or lost an armed timer");
        prop_assert_eq!(wheel.next_deadline(), None);
    }
}

// --- TCP frame codec strategies -------------------------------------------

use data_roundabout::envelope::{Envelope, FragmentId};
use data_roundabout::tcp_backend::{
    encode_ack, encode_envelope, encode_hello, Frame, FrameDecoder, MAX_FRAME,
};
use data_roundabout::wheel::{TimerId, TimerWheel};
use data_roundabout::{FrameError, RingError};
use std::time::Duration;

fn encode_frame(frame: &Frame<Vec<u8>>) -> Vec<u8> {
    match frame {
        Frame::Hello { nonce, host } => encode_hello(*nonce, *host),
        Frame::Ack { tid } => encode_ack(*tid),
        Frame::Envelope { tid, env } => {
            encode_envelope(*tid, env).expect("test envelopes fit the frame cap")
        }
    }
}

fn arb_frame() -> impl Strategy<Value = Frame<Vec<u8>>> {
    // The vendored proptest shim has no `prop_oneof!`; an integer
    // discriminant mapped through a match covers the three frame kinds.
    (
        0u8..3,
        any::<u64>(),
        any::<u32>(),
        (0usize..1024, 0usize..8, any::<u64>(), any::<bool>()),
        prop::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(
            |(which, word, host, (id, origin, seq, corrupt), payload)| match which {
                0 => Frame::Hello { nonce: word, host },
                1 => Frame::Ack { tid: word },
                _ => {
                    let mut env = Envelope::new(FragmentId(id), HostId(origin), 8, payload);
                    env.seq = seq;
                    if corrupt {
                        // In-flight corruption crosses the codec verbatim.
                        env.checksum = !env.checksum;
                    }
                    Frame::Envelope { tid: word, env }
                }
            },
        )
}
