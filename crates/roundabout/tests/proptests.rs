//! Property-based tests of the Data Roundabout transport protocol.

use data_roundabout::{run_threaded, FixedCostApp, RingConfig, SimRing};
use proptest::prelude::*;
use simnet::time::SimDuration;

fn payloads(counts: &[usize], bytes: usize) -> Vec<Vec<Vec<u8>>> {
    counts
        .iter()
        .map(|&n| (0..n).map(|_| vec![0u8; bytes]).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: every fragment completes its revolution and every
    /// host processes every fragment exactly once — for any ring size,
    /// buffer depth, fragment distribution and payload size.
    #[test]
    fn sim_ring_conserves_fragments(
        counts in prop::collection::vec(0usize..6, 1..8),
        buffers in 1usize..5,
        kilobytes in 1usize..64,
        join_ms in 0u64..8,
    ) {
        let hosts = counts.len();
        let total: usize = counts.iter().sum();
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(join_ms),
        );
        let config = RingConfig::paper(hosts).with_buffers(buffers);
        let out = SimRing::new(config, payloads(&counts, kilobytes << 10), app).run();
        prop_assert_eq!(out.metrics.fragments_completed, total);
        for h in &out.metrics.hosts {
            prop_assert_eq!(h.fragments_processed, total);
        }
        prop_assert_eq!(
            out.app.processed.iter().sum::<usize>(),
            total * hosts
        );
    }

    /// Byte accounting: every multi-host fragment crosses exactly
    /// `hosts − 1` links, so total forwarded bytes are exact.
    #[test]
    fn sim_ring_accounts_bytes(
        counts in prop::collection::vec(0usize..5, 2..6),
        bytes in 1usize..100_000,
    ) {
        let hosts = counts.len();
        let total: usize = counts.iter().sum();
        let app = FixedCostApp::new(hosts, SimDuration::ZERO, SimDuration::from_micros(10));
        let out = SimRing::new(RingConfig::paper(hosts), payloads(&counts, bytes), app).run();
        prop_assert_eq!(
            out.metrics.total_bytes_forwarded(),
            (total * bytes * (hosts - 1)) as u64
        );
    }

    /// Virtual phase accounting is consistent on every host.
    #[test]
    fn sim_ring_phase_accounting(
        counts in prop::collection::vec(0usize..5, 1..7),
        buffers in 1usize..4,
    ) {
        let hosts = counts.len();
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(2),
            SimDuration::from_millis(3),
        );
        let config = RingConfig::paper(hosts).with_buffers(buffers);
        let out = SimRing::new(config, payloads(&counts, 4096), app).run();
        for h in &out.metrics.hosts {
            prop_assert_eq!(h.join_busy + h.sync, h.join_window);
            prop_assert_eq!(h.setup, SimDuration::from_millis(2));
        }
    }

    /// The real-thread backend conserves fragments under any interleaving.
    #[test]
    fn thread_ring_conserves_fragments(
        counts in prop::collection::vec(0usize..5, 1..6),
        buffers in 1usize..4,
    ) {
        let hosts = counts.len();
        let total: usize = counts.iter().sum();
        let config = RingConfig::paper(hosts).with_buffers(buffers);
        let metrics = run_threaded(&config, payloads(&counts, 64), |_, _| {}).unwrap();
        prop_assert_eq!(metrics.fragments_completed, total);
        for h in &metrics.hosts {
            prop_assert_eq!(h.fragments_processed, total);
        }
    }

    /// Determinism: identical simulated runs produce identical metrics.
    #[test]
    fn sim_ring_is_deterministic(
        counts in prop::collection::vec(0usize..4, 1..6),
        join_us in 0u64..5_000,
    ) {
        let hosts = counts.len();
        let run = || {
            let app = FixedCostApp::new(
                hosts,
                SimDuration::from_micros(100),
                SimDuration::from_micros(join_us),
            );
            SimRing::new(RingConfig::paper(hosts), payloads(&counts, 1024), app)
                .run()
                .metrics
        };
        prop_assert_eq!(run(), run());
    }
}
