//! Self-tests of the vendored loom model checker (`third_party/loom`).
//!
//! These run in the ordinary (non-`--cfg loom`) test suite, so tier-1
//! continuously proves the checker itself works: that it *finds* classic
//! concurrency bugs (lost updates, deadlocks), that it *passes* correct
//! synchronization, and that it actually explores multiple schedules.
//! The ring-protocol models that build on this live in `loom_ring.rs`
//! and only compile under `RUSTFLAGS="--cfg loom"` (see
//! `scripts/analyze.sh`).
//!
//! The tests use the loom primitives directly (not the
//! `data_roundabout::sync` shim, which resolves to `std` in this
//! configuration — uninstrumented primitives must never be used inside
//! `loom::model`, the scheduler cannot see them).

use std::panic::{catch_unwind, AssertUnwindSafe};

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;

/// The canonical lost update: two threads doing unsynchronized
/// load-then-store increments. Some interleaving loses one increment,
/// and the checker must find it and fail the model.
#[test]
fn finds_the_lost_update() {
    let failure = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let count = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let count = Arc::clone(&count);
                handles.push(thread::spawn(move || {
                    let seen = count.load(Ordering::SeqCst);
                    count.store(seen + 1, Ordering::SeqCst);
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(count.load(Ordering::SeqCst), 2, "an increment was lost");
        });
    }));
    let msg = match failure {
        Ok(()) => panic!("the model checker missed the lost update"),
        Err(payload) => *payload
            .downcast::<String>()
            .expect("model failure carries a message"),
    };
    assert!(
        msg.contains("an increment was lost"),
        "unexpected failure: {msg}"
    );
}

/// The same increment behind a mutex has no bad interleaving; the model
/// must complete (exhaustively) without failure.
#[test]
fn mutexed_increment_is_race_free() {
    loom::model(|| {
        let count = Arc::new(Mutex::new(0usize));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let count = Arc::clone(&count);
            handles.push(thread::spawn(move || {
                *count.lock().unwrap() += 1;
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*count.lock().unwrap(), 2);
    });
}

/// Condvar hand-off: the waiter re-checks its predicate under the lock,
/// so no interleaving (including notify-before-wait) deadlocks. A lost
/// wakeup would trip the checker's deadlock detector.
#[test]
fn condvar_handoff_completes() {
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let (flag, cv) = &*pair;
                let mut ready = flag.lock().unwrap();
                while !*ready {
                    ready = cv.wait(ready).unwrap();
                }
            })
        };
        let (flag, cv) = &*pair;
        *flag.lock().unwrap() = true;
        cv.notify_one();
        waiter.join().unwrap();
    });
}

/// AB-BA lock ordering: the checker must find the interleaving where
/// both threads hold one lock and block on the other, and report it as a
/// deadlock instead of hanging.
#[test]
fn detects_the_ab_ba_deadlock() {
    let failure = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let t = {
                let a = Arc::clone(&a);
                let b = Arc::clone(&b);
                thread::spawn(move || {
                    let _ga = a.lock().unwrap();
                    let _gb = b.lock().unwrap();
                })
            };
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
            drop(_ga);
            drop(_gb);
            t.join().unwrap();
        });
    }));
    let msg = match failure {
        Ok(()) => panic!("the model checker missed the AB-BA deadlock"),
        Err(payload) => *payload
            .downcast::<String>()
            .expect("model failure carries a message"),
    };
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

/// A bounded single-slot buffer (the shape of the ring's credit-based
/// buffer pools): producer blocks on full, consumer blocks on empty, and
/// every interleaving delivers both values in order.
#[test]
fn bounded_buffer_hand_off_is_exhaustively_correct() {
    loom::model(|| {
        let buf = Arc::new((Mutex::new(Vec::new()), Condvar::new(), Condvar::new()));
        let producer = {
            let buf = Arc::clone(&buf);
            thread::spawn(move || {
                let (slot, not_empty, not_full) = &*buf;
                for v in [1u8, 2] {
                    let mut q = slot.lock().unwrap();
                    while !q.is_empty() {
                        q = not_full.wait(q).unwrap();
                    }
                    q.push(v);
                    drop(q);
                    not_empty.notify_one();
                }
            })
        };
        let (slot, not_empty, not_full) = &*buf;
        let mut got = Vec::new();
        for _ in 0..2 {
            let mut q = slot.lock().unwrap();
            while q.is_empty() {
                q = not_empty.wait(q).unwrap();
            }
            got.extend(q.drain(..));
            drop(q);
            not_full.notify_one();
        }
        producer.join().unwrap();
        assert_eq!(got, vec![1, 2], "credit hand-off lost or reordered data");
    });
}

/// The shape of the [`RingDriver`] hand-off (PR 4): a transmitter stamps
/// monotone per-link sequence numbers — retransmitting one envelope, as
/// the reliable driver does on an ack timeout — and the receiver dedups
/// on its last-delivered sequence, exactly as the protocol core's
/// `LinkSender::stamp` / `LinkReceiver::receive` pair. Every interleaving
/// of the duplicate against the fresh envelope must deliver each fragment
/// exactly once, in order.
///
/// [`RingDriver`]: data_roundabout::RingDriver
#[test]
fn driver_hand_off_dedups_retransmits_exactly_once() {
    loom::model(|| {
        let wire = Arc::new((Mutex::new(Vec::<(u64, u8)>::new()), Condvar::new()));
        let transmitter = {
            let wire = Arc::clone(&wire);
            thread::spawn(move || {
                let (slot, arrived) = &*wire;
                // seq 1 sent, timer fires, seq 1 retransmitted, seq 2 sent:
                // the same stamped envelope crosses the link twice.
                for (seq, payload) in [(1u64, 10u8), (1, 10), (2, 20)] {
                    slot.lock().unwrap().push((seq, payload));
                    arrived.notify_one();
                }
            })
        };
        let (slot, arrived) = &*wire;
        let mut last_seq = 0u64;
        let mut delivered = Vec::new();
        while delivered.len() < 2 {
            let mut q = slot.lock().unwrap();
            while q.is_empty() {
                q = arrived.wait(q).unwrap();
            }
            for (seq, payload) in q.drain(..) {
                // LinkReceiver::receive: advance only on fresh sequences.
                if seq == last_seq + 1 {
                    last_seq = seq;
                    delivered.push(payload);
                }
            }
        }
        transmitter.join().unwrap();
        assert_eq!(
            delivered,
            vec![10, 20],
            "retransmit dedup lost or duplicated"
        );
    });
}

/// The checker is not a single-schedule smoke test: a model with real
/// concurrency must be explored more than once.
#[test]
fn explores_multiple_schedules() {
    let executions = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let counter = std::sync::Arc::clone(&executions);
    loom::model(move || {
        counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let flag = Arc::new(AtomicUsize::new(0));
        let t = {
            let flag = Arc::clone(&flag);
            thread::spawn(move || flag.store(1, Ordering::SeqCst))
        };
        // Both orders of this load against the store must be explored.
        let _ = flag.load(Ordering::SeqCst);
        t.join().unwrap();
    });
    let explored = executions.load(std::sync::atomic::Ordering::SeqCst);
    assert!(
        explored >= 2,
        "expected at least 2 explored schedules, got {explored}"
    );
}
