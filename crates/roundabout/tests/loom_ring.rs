//! Model checking the live ring: exhaustive interleaving exploration of
//! the receive → join → transmit hand-off, the teardown wave, and the
//! role-takeover ledger.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (see `scripts/analyze.sh`),
//! where `data_roundabout::sync` resolves to the vendored loom checker's
//! instrumented primitives. The headline test runs the *actual*
//! [`data_roundabout::RingDriver`] backend — join entities, transmitter
//! threads, bounded buffer pools, credit flow control and all, driven by
//! the shared sans-IO protocol core — under the model, so every schedule
//! the token-passing scheduler can produce is checked for lost envelopes,
//! double delivery and deadlock.

#![cfg(loom)]

use data_roundabout::sync::atomic::{AtomicU64, Ordering};
use data_roundabout::sync::{mpmc, thread, Arc};
use data_roundabout::{RingConfig, RingDriver};

/// The real threaded backend on a two-host ring, one fragment per host:
/// five threads (main, two join entities, two transmitters) and every
/// interleaving of their channel and mutex operations. Each host must
/// see both fragments exactly once in every schedule.
///
/// Preemption bound 1 (instead of the default 2): five threads of real
/// protocol code explode combinatorially at 2, while bound 1 already
/// covers every schedule reachable through the blocking structure plus
/// one forced preemption at any point — and still finishes in seconds.
#[test]
fn two_host_ring_hand_off_is_exhaustively_correct() {
    let mut builder = loom::model::Builder::new();
    builder.preemption_bound = Some(1);
    builder.check(|| {
        let fragments: Vec<Vec<Vec<u8>>> = (0..2).map(|h| vec![vec![h as u8; 8]]).collect();
        let (metrics, _) = RingDriver::new(&RingConfig::paper(2))
            .run(fragments, |_, _| {})
            .unwrap();
        assert_eq!(metrics.fragments_completed, 2, "a fragment was lost");
        for host in &metrics.hosts {
            assert_eq!(
                host.fragments_processed, 2,
                "a host missed or double-processed an envelope"
            );
        }
    });
}

/// The hand-off pattern in isolation: two hosts exchange their fragment
/// through single-slot buffer pools (capacity 1 == one buffer credit).
/// No interleaving may lose, duplicate, or cross-deliver an envelope.
#[test]
fn credit_hand_off_never_loses_an_envelope() {
    loom::model(|| {
        let (tx_a, rx_a) = mpmc::bounded::<u8>(1); // host A's buffer pool
        let (tx_b, rx_b) = mpmc::bounded::<u8>(1); // host B's buffer pool
        let a = thread::spawn(move || {
            tx_b.send(10).unwrap(); // transmit local fragment to B
            rx_a.recv().unwrap() // receive B's fragment
        });
        let b = thread::spawn(move || {
            tx_a.send(20).unwrap();
            rx_b.recv().unwrap()
        });
        assert_eq!(a.join().unwrap(), 20);
        assert_eq!(b.join().unwrap(), 10);
    });
}

/// The teardown wave: a receiver leaving mid-stream must wake a sender
/// blocked on a full buffer pool (or fail its next send) in every
/// interleaving — this is how worker death propagates around the ring
/// without leaving a neighbor blocked forever. A missed disconnect
/// notification would show up here as a model deadlock.
#[test]
fn teardown_unblocks_a_blocked_sender() {
    loom::model(|| {
        let (tx, rx) = mpmc::bounded::<u8>(1);
        let consumer = thread::spawn(move || {
            // Take at most one envelope, then die with rx.
            let _ = rx.recv();
        });
        let _ = tx.send(1);
        // May block on the full pool; the consumer's recv or its death
        // must unblock it either way.
        let _ = tx.send(2);
        consumer.join().unwrap();
        // The pool is gone for good now: the send must fail, not hang.
        assert!(tx.send(3).is_err(), "send to a dead host must disconnect");
    });
}

/// The other direction of the wave: a receiver blocked on an empty pool
/// must observe its last sender's death as a disconnect, not sleep
/// forever.
#[test]
fn teardown_unblocks_a_blocked_receiver() {
    loom::model(|| {
        let (tx, rx) = mpmc::unbounded::<u8>();
        let producer = thread::spawn(move || {
            tx.send(7).unwrap();
            // tx drops here: the ring predecessor is gone.
        });
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err(), "disconnect must end the stream");
        producer.join().unwrap();
    });
}

/// The mid-revolution healing invariant (PR 1): when two survivors race
/// to take over a dead host's logical role, the ledger must admit
/// exactly one — in every interleaving. This is the compare-exchange
/// claim protocol the simulated backend's role ledger relies on for its
/// exactly-once guarantee.
/// The PR 6 planned-drain scenario on the two-host ring: host B drains
/// gracefully — it flushes the credit hand-off it still owes A through
/// the single-slot buffer pool, then publishes its role at the
/// rendezvous — while A's drain-deadline escalation fires concurrently
/// and tries to seize the same role through the crash-healing path. In
/// every interleaving the owed envelope must arrive exactly once and
/// the role must land exactly once: a drain racing ahead of the credit
/// hand-off must not strand the envelope, and an escalation racing the
/// rendezvous must lose the compare-exchange, not double-claim.
#[test]
fn drain_handoff_racing_escalation_claims_the_role_once() {
    loom::model(|| {
        let (tx_a, rx_a) = mpmc::bounded::<u8>(1); // host A's buffer pool
        let ledger = Arc::new(AtomicU64::new(0)); // bit r = role r claimed
        let bit = 1u64 << 1; // host B's role, leaving with it

        // Host B's farewell duties, in protocol order: credit hand-off
        // first, role hand-off second.
        let ledger_b = Arc::clone(&ledger);
        let b = thread::spawn(move || {
            tx_a.send(42).unwrap();
            claim_role(&ledger_b, bit)
        });
        // Host A's escalation path, racing the rendezvous.
        let ledger_a = Arc::clone(&ledger);
        let a = thread::spawn(move || claim_role(&ledger_a, bit));

        // Host A as receiver: the owed fragment arrives exactly once no
        // matter which claimant won the role.
        assert_eq!(rx_a.recv(), Ok(42), "the drain stranded its last envelope");
        let handoff = b.join().unwrap();
        let escalation = a.join().unwrap();
        assert!(
            handoff ^ escalation,
            "the drained role must land exactly once (handoff {handoff}, escalation {escalation})"
        );
        assert!(rx_a.recv().is_err(), "the drained host must stay gone");
    });
}

/// The compare-exchange claim loop both the rendezvous hand-off and the
/// escalation path run against the shared role ledger: returns whether
/// this claimant won the role.
fn claim_role(ledger: &AtomicU64, bit: u64) -> bool {
    loop {
        let seen = ledger.load(Ordering::SeqCst);
        if seen & bit != 0 {
            return false;
        }
        match ledger.compare_exchange(seen, seen | bit, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return true,
            Err(_) => continue,
        }
    }
}

#[test]
fn role_takeover_is_exactly_once() {
    loom::model(|| {
        let ledger = Arc::new(AtomicU64::new(0)); // bit r = role r claimed
        let dead_role = 1u64;
        let mut survivors = Vec::new();
        for _ in 0..2 {
            let ledger = Arc::clone(&ledger);
            survivors.push(thread::spawn(move || {
                let bit = 1u64 << dead_role;
                loop {
                    let seen = ledger.load(Ordering::SeqCst);
                    if seen & bit != 0 {
                        return false; // someone else already owns the role
                    }
                    match ledger.compare_exchange(
                        seen,
                        seen | bit,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    ) {
                        Ok(_) => return true,
                        Err(_) => continue, // raced; re-read the ledger
                    }
                }
            }));
        }
        let winners = survivors
            .into_iter()
            .map(|s| s.join().unwrap())
            .filter(|&won| won)
            .count();
        assert_eq!(winners, 1, "a role was taken over {winners} times");
    });
}
