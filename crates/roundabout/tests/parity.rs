//! Cross-backend fault parity: the simulated, real-thread, loopback-TCP
//! and reactor drivers sit on the same sans-IO protocol core and key the
//! fault dice identically — per-sender wire sequence, attempt number — so
//! an identical seeded [`FaultPlan`] must produce *identical* fault
//! counters on all four, even though one runs in virtual time, one on
//! live OS threads, and two over real kernel sockets (one blocking, one
//! on a single readiness event loop).

use data_roundabout::{
    FaultPlan, FixedCostApp, HostId, ReactorRingDriver, RescalePlan, RingConfig, RingDriver,
    SimRing, TcpRingDriver,
};
use simnet::time::{SimDuration, SimTime};

fn payloads(hosts: usize, per_host: usize, bytes: usize) -> Vec<Vec<Vec<u8>>> {
    (0..hosts)
        .map(|_| (0..per_host).map(|_| vec![0u8; bytes]).collect())
        .collect()
}

fn fault_counters(hosts: &[data_roundabout::HostMetrics]) -> Vec<(u64, u64)> {
    hosts
        .iter()
        .map(|h| (h.retransmits, h.checksum_mismatches))
        .collect()
}

/// All four backends, one plan, equal counters. Loss on H0's outgoing
/// link and corruption on H1's: every (sender, seq, attempt) tuple rolls
/// the same dice in every world, and stop-and-wait repairs each envelope
/// independently, so per-host retransmit and checksum counters must agree
/// exactly — not just statistically.
///
/// Crash/pause faults are deliberately absent: detection timing differs
/// between virtual and wall-clock time, and the thread driver refuses such
/// plans. The wall-clock backends get generous ack timeouts so a scheduler
/// stall or a slow loopback round trip cannot masquerade as a drop.
#[test]
fn seeded_fault_plan_yields_identical_counters_on_all_backends() {
    let hosts = 3;
    let per_host = 4;
    let plan = FaultPlan::seeded(7)
        .lossy_link(HostId(0), 0.3)
        .corrupt_link(HostId(1), 0.3);

    let sim_cfg = RingConfig::paper(hosts).with_ack_timeout(SimDuration::from_millis(5));
    let app = FixedCostApp::new(
        hosts,
        SimDuration::from_millis(1),
        SimDuration::from_millis(1),
    );
    let sim = SimRing::new(sim_cfg, payloads(hosts, per_host, 1 << 20), app)
        .with_fault_plan(plan.clone())
        .run();

    let thread_cfg = RingConfig::paper(hosts).with_ack_timeout(SimDuration::from_millis(150));
    let (threaded, _) = RingDriver::new(&thread_cfg)
        .with_fault_plan(&plan)
        .run(payloads(hosts, per_host, 64), |_, _: &Vec<u8>| {})
        .expect("reliable thread run should recover from loss and corruption");

    let tcp_cfg = RingConfig::paper(hosts).with_ack_timeout(SimDuration::from_millis(150));
    let (tcp, _) = TcpRingDriver::new(&tcp_cfg)
        .with_fault_plan(&plan)
        .run(payloads(hosts, per_host, 64), |_, _: &Vec<u8>| {})
        .expect("reliable tcp run should recover from loss and corruption");

    let (reactor, _) = ReactorRingDriver::new(&tcp_cfg)
        .with_fault_plan(&plan)
        .run(payloads(hosts, per_host, 64), |_, _: &Vec<u8>| {})
        .expect("reliable reactor run should recover from loss and corruption");

    assert_eq!(sim.metrics.fragments_completed, hosts * per_host);
    assert_eq!(threaded.fragments_completed, hosts * per_host);
    assert_eq!(tcp.fragments_completed, hosts * per_host);
    assert_eq!(reactor.fragments_completed, hosts * per_host);

    assert_eq!(
        fault_counters(&sim.metrics.hosts),
        fault_counters(&threaded.hosts),
        "sim and thread drivers rolled different fault dice for the same plan:\n\
         sim: {:?}\nthread: {:?}",
        sim.metrics.hosts,
        threaded.hosts
    );
    assert_eq!(
        fault_counters(&sim.metrics.hosts),
        fault_counters(&tcp.hosts),
        "sim and tcp drivers rolled different fault dice for the same plan:\n\
         sim: {:?}\ntcp: {:?}",
        sim.metrics.hosts,
        tcp.hosts
    );
    assert_eq!(
        fault_counters(&sim.metrics.hosts),
        fault_counters(&reactor.hosts),
        "sim and reactor drivers rolled different fault dice for the same plan:\n\
         sim: {:?}\nreactor: {:?}",
        sim.metrics.hosts,
        reactor.hosts
    );
    // The plan actually bit: a trivially quiet run would prove nothing.
    assert!(
        sim.metrics.total_retransmits() > 0,
        "seed 7 must provoke at least one retransmission"
    );
    assert!(
        sim.metrics.total_checksum_mismatches() > 0,
        "seed 7 must provoke at least one checksum mismatch"
    );
}

/// The same four-way parity holds with loss on every link at once — each
/// host is simultaneously a retransmitter and a dedup point.
#[test]
fn all_links_lossy_parity() {
    let hosts = 4;
    let per_host = 2;
    let mut plan = FaultPlan::seeded(11);
    for h in 0..hosts {
        plan = plan.lossy_link(HostId(h), 0.25);
    }

    let sim_cfg = RingConfig::paper(hosts).with_ack_timeout(SimDuration::from_millis(5));
    let app = FixedCostApp::new(hosts, SimDuration::ZERO, SimDuration::from_micros(100));
    let sim = SimRing::new(sim_cfg, payloads(hosts, per_host, 1 << 18), app)
        .with_fault_plan(plan.clone())
        .run();

    let thread_cfg = RingConfig::paper(hosts).with_ack_timeout(SimDuration::from_millis(150));
    let (threaded, _) = RingDriver::new(&thread_cfg)
        .with_fault_plan(&plan)
        .run(payloads(hosts, per_host, 64), |_, _: &Vec<u8>| {})
        .expect("reliable thread run should recover from loss on every link");

    let tcp_cfg = RingConfig::paper(hosts).with_ack_timeout(SimDuration::from_millis(150));
    let (tcp, _) = TcpRingDriver::new(&tcp_cfg)
        .with_fault_plan(&plan)
        .run(payloads(hosts, per_host, 64), |_, _: &Vec<u8>| {})
        .expect("reliable tcp run should recover from loss on every link");

    let (reactor, _) = ReactorRingDriver::new(&tcp_cfg)
        .with_fault_plan(&plan)
        .run(payloads(hosts, per_host, 64), |_, _: &Vec<u8>| {})
        .expect("reliable reactor run should recover from loss on every link");

    let sim_counts: Vec<u64> = sim.metrics.hosts.iter().map(|h| h.retransmits).collect();
    let thread_counts: Vec<u64> = threaded.hosts.iter().map(|h| h.retransmits).collect();
    let tcp_counts: Vec<u64> = tcp.hosts.iter().map(|h| h.retransmits).collect();
    let reactor_counts: Vec<u64> = reactor.hosts.iter().map(|h| h.retransmits).collect();
    assert_eq!(
        sim_counts, thread_counts,
        "sim/thread per-host retransmits diverged"
    );
    assert_eq!(
        sim_counts, tcp_counts,
        "sim/tcp per-host retransmits diverged"
    );
    assert_eq!(
        sim_counts, reactor_counts,
        "sim/reactor per-host retransmits diverged"
    );
    assert_eq!(sim.metrics.fragments_completed, hosts * per_host);
    assert_eq!(threaded.fragments_completed, hosts * per_host);
    assert_eq!(tcp.fragments_completed, hosts * per_host);
    assert_eq!(reactor.fragments_completed, hosts * per_host);
}

/// Multi-tenant parity: two queries multiplexed over one ring, one
/// seeded fault plan, four worlds — identical **per-query** retransmit,
/// checksum and completion counters everywhere. Each query's wire
/// sequence space is private (`(sender, query, seq, attempt)` keys the
/// dice), so the counters agree per query no matter how differently the
/// backends interleave the two queries' envelopes on the shared ring.
#[test]
fn multi_tenant_fault_plan_four_way_parity() {
    let hosts = 3;
    let per_host = 2;
    let max_active = 2;
    let plan = FaultPlan::seeded(13)
        .lossy_link(HostId(0), 0.3)
        .corrupt_link(HostId(1), 0.3);
    let queries = |bytes: usize| {
        vec![
            (0u32, payloads(hosts, per_host, bytes)),
            (1u32, payloads(hosts, per_host, bytes)),
        ]
    };
    let total = 2 * hosts * per_host;

    let sim_cfg = RingConfig::paper(hosts).with_ack_timeout(SimDuration::from_millis(5));
    let app = FixedCostApp::new(
        hosts,
        SimDuration::from_millis(1),
        SimDuration::from_millis(1),
    );
    let sim = SimRing::new_queries(sim_cfg, queries(1 << 18), max_active, app)
        .with_fault_plan(plan.clone())
        .run();

    let wall_cfg = RingConfig::paper(hosts).with_ack_timeout(SimDuration::from_millis(150));
    let (threaded, _) = RingDriver::new(&wall_cfg)
        .with_fault_plan(&plan)
        .run_queries(queries(64), max_active, |_, _, _: &Vec<u8>| {})
        .expect("reliable thread run should recover from loss and corruption");

    let (tcp, _) = TcpRingDriver::new(&wall_cfg)
        .with_fault_plan(&plan)
        .run_queries(
            queries(64),
            max_active,
            |_, _, _: &[usize], _: &Vec<u8>| {},
            |_, _| {},
        )
        .expect("reliable tcp run should recover from loss and corruption");

    let (reactor, _) = ReactorRingDriver::new(&wall_cfg)
        .with_fault_plan(&plan)
        .run_queries(
            queries(64),
            max_active,
            |_, _, _: &[usize], _: &Vec<u8>| {},
            |_, _| {},
        )
        .expect("reliable reactor run should recover from loss and corruption");

    for (world, m) in [
        ("sim", &sim.metrics),
        ("thread", &threaded),
        ("tcp", &tcp),
        ("reactor", &reactor),
    ] {
        assert_eq!(m.fragments_completed, total, "{world}: every fragment");
        assert_eq!(m.queries.len(), 2, "{world}: two per-query ledgers");
        assert!(
            m.queries.iter().all(|q| q.completed),
            "{world}: both queries complete"
        );
    }
    assert_eq!(
        sim.metrics.queries, threaded.queries,
        "sim and thread drivers rolled different per-query dice"
    );
    assert_eq!(
        sim.metrics.queries, tcp.queries,
        "sim and tcp drivers rolled different per-query dice"
    );
    assert_eq!(
        sim.metrics.queries, reactor.queries,
        "sim and reactor drivers rolled different per-query dice"
    );
    // The plan actually bit — on *both* queries' private dice streams.
    for q in &sim.metrics.queries {
        assert!(
            q.retransmits > 0,
            "seed 13 must provoke a retransmission on every query: {q:?}"
        );
    }
    assert!(
        sim.metrics
            .queries
            .iter()
            .any(|q| q.checksum_mismatches > 0),
        "seed 13 must provoke at least one checksum mismatch"
    );
}

/// Membership parity: one seeded rescale schedule — a standby joining at
/// 1 ms and a founding member draining out at 8 ms — lands on identical
/// membership epochs and `rescale_*` counters in all four worlds, and
/// none of them needs the crash-healing path to get there. The instants
/// are virtual time in the sim and wall-clock time on the thread, TCP
/// and reactor drivers; the protocol transitions they trigger are the
/// same.
///
/// Escalation counters are deliberately *not* pinned to a fixed schedule
/// position: a drain deadline races real scheduling on the wall-clock
/// backends. The generous ack timeout plus `heal_events == 0` below
/// asserts the planned path won in every world — which also forces
/// `rescale_escalations == 0`.
#[test]
fn seeded_rescale_schedule_four_way_parity() {
    let hosts = 3;
    let per_host = 3;
    let plan = RescalePlan::seeded(77)
        .join_host(HostId(2), SimTime::from_nanos(1_000_000))
        .drain_host(HostId(0), SimTime::from_nanos(8_000_000));
    // Host 2 is the provisioned standby: it brings partitions, not
    // fragments.
    let total = (hosts - 1) * per_host;

    let sim_cfg = RingConfig::paper(hosts).with_ack_timeout(SimDuration::from_millis(5));
    let app = FixedCostApp::new(
        hosts,
        SimDuration::from_millis(1),
        SimDuration::from_millis(2),
    );
    let mut sim_frags = payloads(hosts, per_host, 1 << 20);
    sim_frags[2].clear();
    let sim = SimRing::new(sim_cfg, sim_frags, app)
        .with_rescale_plan(plan.clone())
        .run();

    let thread_cfg = RingConfig::paper(hosts)
        .with_ack_timeout(SimDuration::from_millis(20))
        .with_max_retransmits(6);
    let mut thread_frags = payloads(hosts, per_host, 64);
    thread_frags[2].clear();
    let (threaded, _) = RingDriver::new(&thread_cfg)
        .with_rescale_plan(&plan)
        .run(thread_frags, |_, _: &Vec<u8>| {
            std::thread::sleep(std::time::Duration::from_millis(2));
        })
        .expect("thread rescale run should complete");

    let tcp_cfg = RingConfig::paper(hosts)
        .with_ack_timeout(SimDuration::from_millis(20))
        .with_max_retransmits(6);
    let mut tcp_frags = payloads(hosts, per_host, 64);
    tcp_frags[2].clear();
    let (tcp, _) = TcpRingDriver::new(&tcp_cfg)
        .with_rescale_plan(&plan)
        .run(tcp_frags, |_, _: &Vec<u8>| {
            std::thread::sleep(std::time::Duration::from_millis(2));
        })
        .expect("tcp rescale run should complete");

    let mut reactor_frags = payloads(hosts, per_host, 64);
    reactor_frags[2].clear();
    let (reactor, _) = ReactorRingDriver::new(&tcp_cfg)
        .with_rescale_plan(&plan)
        .run(reactor_frags, |_, _: &Vec<u8>| {
            std::thread::sleep(std::time::Duration::from_millis(2));
        })
        .expect("reactor rescale run should complete");

    for (world, m) in [
        ("sim", &sim.metrics),
        ("thread", &threaded),
        ("tcp", &tcp),
        ("reactor", &reactor),
    ] {
        assert_eq!(m.fragments_completed, total, "{world}: every fragment");
        assert_eq!(
            (
                m.membership_epoch,
                m.rescale_joins,
                m.rescale_drains,
                m.rescale_handoffs,
            ),
            (2, 1, 1, 1),
            "{world}: one join + one planned drain, partitions handed off once"
        );
        assert_eq!(
            m.heal_events, 0,
            "{world}: the planned path must not fall back to crash healing"
        );
    }
}
