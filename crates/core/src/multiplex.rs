//! Multi-tenant query multiplexing on a shared ring.
//!
//! Where [`crate::concurrent`] batches queries onto *one* rotation of a
//! shared hot set, this module multiplexes **independent** cyclo-joins —
//! each tenant brings its own rotating relation, stationary relation and
//! predicate — over one ring at the protocol level: every in-flight
//! fragment carries a query id, per-query credits partition the ring
//! buffers, and an admission queue bounds how many queries circulate
//! concurrently (deficit round-robin keeps the grant gap between tenants
//! bounded). Healing, membership epochs and fault dice stay ring-global,
//! so a mid-revolution crash is healed once for all tenants.
//!
//! ```
//! use cyclo_join::multiplex::MultiTenantJoin;
//! use cyclo_join::JoinPredicate;
//! use relation::GenSpec;
//!
//! # fn main() -> Result<(), cyclo_join::PlanError> {
//! let report = MultiTenantJoin::new()
//!     .tenant(
//!         GenSpec::uniform(8_000, 1).generate(),
//!         GenSpec::uniform(6_000, 2).generate(),
//!         JoinPredicate::Equi,
//!     )
//!     .tenant(
//!         GenSpec::uniform(5_000, 3).generate(),
//!         GenSpec::uniform(4_000, 4).generate(),
//!         JoinPredicate::band(1),
//!     )
//!     .hosts(4)
//!     .max_active(2)
//!     .run()?;
//! assert_eq!(report.tenants.len(), 2);
//! assert!(report.tenants.iter().all(|t| t.metrics.completed));
//! # Ok(())
//! # }
//! ```

use data_roundabout::{
    FaultPlan, HostId, PayloadBytes, QueryMetrics, ReactorRingDriver, RescalePlan, RingApp,
    RingConfig, RingDriver, RingMetrics, SimRing, TcpRingDriver,
};
use mem_joins::{
    Algorithm, JoinCollector, JoinPredicate, OutputMode, PreparedFragment, StationaryState,
};
use relation::{Checksum, Relation};
use simnet::span::SpanTracer;
use simnet::time::{SimDuration, SimTime};

use data_roundabout::sync::Mutex;

use crate::compute::ComputeMode;
use crate::exec::registration_cost;
use crate::plan::PlanError;

/// One tenant's join: `rotating ⋈ stationary` under `predicate`.
#[derive(Debug, Clone)]
struct TenantSpec {
    rotating: Relation,
    stationary: Relation,
    predicate: JoinPredicate,
    algorithm: Algorithm,
}

/// Builder for a multi-tenant multiplexed run.
///
/// Each tenant's rotating relation is fragmented over the ring and
/// revolves independently; the admission bound (`max_active`) caps how
/// many tenants circulate at once, the rest queue. All four backends
/// run the same protocol core, so per-query counters agree across them.
#[derive(Debug, Clone)]
pub struct MultiTenantJoin {
    tenants: Vec<TenantSpec>,
    config: RingConfig,
    fragments_per_host: usize,
    max_active: usize,
    compute: ComputeMode,
    output: OutputMode,
    fault_plan: Option<FaultPlan>,
    rescale_plan: Option<RescalePlan>,
    trace: bool,
}

impl Default for MultiTenantJoin {
    fn default() -> Self {
        Self::new()
    }
}

impl MultiTenantJoin {
    /// Starts an empty multi-tenant batch on the paper's six-host ring.
    pub fn new() -> Self {
        MultiTenantJoin {
            tenants: Vec::new(),
            config: RingConfig::paper(6),
            fragments_per_host: 4,
            max_active: 2,
            compute: ComputeMode::modeled(),
            output: OutputMode::Aggregate,
            fault_plan: None,
            rescale_plan: None,
            trace: false,
        }
    }

    /// Adds a tenant joining `rotating ⋈ stationary` with the fastest
    /// algorithm supporting `predicate`.
    pub fn tenant(
        self,
        rotating: Relation,
        stationary: Relation,
        predicate: JoinPredicate,
    ) -> Self {
        let algorithm = Algorithm::for_predicate(&predicate);
        self.tenant_with(rotating, stationary, predicate, algorithm)
    }

    /// Adds a tenant with an explicit algorithm.
    pub fn tenant_with(
        mut self,
        rotating: Relation,
        stationary: Relation,
        predicate: JoinPredicate,
        algorithm: Algorithm,
    ) -> Self {
        self.tenants.push(TenantSpec {
            rotating,
            stationary,
            predicate,
            algorithm,
        });
        self
    }

    /// Replaces the ring configuration.
    pub fn ring(mut self, config: RingConfig) -> Self {
        self.config = config;
        self
    }

    /// Shortcut: the paper ring with `n` hosts.
    pub fn hosts(mut self, n: usize) -> Self {
        self.config.hosts = n;
        self
    }

    /// Admission bound: at most this many tenants circulate concurrently
    /// (default 2); the rest wait in the ring's admission queue.
    pub fn max_active(mut self, n: usize) -> Self {
        self.max_active = n;
        self
    }

    /// Rotation units per host per tenant (default 4).
    pub fn fragments_per_host(mut self, fragments: usize) -> Self {
        self.fragments_per_host = fragments;
        self
    }

    /// Compute pricing mode for the simulated backend (default: model).
    pub fn compute(mut self, compute: ComputeMode) -> Self {
        self.compute = compute;
        self
    }

    /// Output mode for every tenant's collectors.
    pub fn output(mut self, output: OutputMode) -> Self {
        self.output = output;
        self
    }

    /// Injects transport faults (loss, corruption, crashes — backend
    /// permitting) into the shared ring. All tenants share the dice.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Schedules planned membership changes (joins/drains) on the shared
    /// ring. Membership stays ring-global: one drain repartitions every
    /// tenant's stationary state and bumps one epoch for all queries.
    pub fn rescale_plan(mut self, plan: RescalePlan) -> Self {
        self.rescale_plan = Some(plan);
        self
    }

    /// Enables span tracing.
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    fn validate(&self) -> Result<(), PlanError> {
        self.config.validate().map_err(PlanError::InvalidConfig)?;
        if self.config.hosts < 2 {
            return Err(PlanError::BadQuery(
                "multiplexing needs a ring of at least two hosts".to_string(),
            ));
        }
        if self.fragments_per_host == 0 {
            return Err(PlanError::NoFragments);
        }
        if self.tenants.is_empty() {
            return Err(PlanError::BadQuery(
                "a multi-tenant run needs at least one tenant".to_string(),
            ));
        }
        if self.max_active == 0 {
            return Err(PlanError::BadQuery(
                "the admission bound must admit at least one query".to_string(),
            ));
        }
        for t in &self.tenants {
            if !t.algorithm.supports(&t.predicate) {
                return Err(PlanError::UnsupportedPredicate {
                    algorithm: t.algorithm.name(),
                    predicate: t.predicate.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Builds each tenant's per-host runtime state: prepared rotating
    /// fragments, stationary partitions and radix bits.
    fn build(&self, compute: &ComputeMode) -> (Vec<TenantRun>, Vec<SimDuration>) {
        let hosts = self.config.hosts;
        let mut runs = Vec::with_capacity(self.tenants.len());
        let mut prep_per_host = vec![SimDuration::ZERO; hosts];
        for t in &self.tenants {
            let stationary: Vec<Relation> = t.stationary.split_even(hosts);
            let bits = t
                .algorithm
                .ring_radix_bits(stationary.iter().map(Relation::len).max().unwrap_or(1));
            let mut fragments = Vec::with_capacity(hosts);
            for (h, share) in t.rotating.split_even(hosts).into_iter().enumerate() {
                let mut prepared = Vec::with_capacity(self.fragments_per_host);
                for frag in share.split_even(self.fragments_per_host) {
                    let (pf, d) = compute.prepare_fragment(
                        &t.algorithm,
                        &frag,
                        bits,
                        self.config.join_threads,
                    );
                    if let Some(slot) = prep_per_host.get_mut(h) {
                        *slot += d;
                    }
                    prepared.push(pf);
                }
                fragments.push(prepared);
            }
            runs.push(TenantRun {
                algorithm: t.algorithm,
                predicate: t.predicate.clone(),
                bits,
                fragments,
                stationary,
            });
        }
        (runs, prep_per_host)
    }

    /// Runs the batch on the simulated (virtual-time) backend.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] for an invalid configuration, an empty
    /// tenant list, a zero admission bound, or a predicate the chosen
    /// algorithm cannot evaluate.
    pub fn run(&self) -> Result<MultiTenantReport, PlanError> {
        self.validate()?;
        let hosts = self.config.hosts;
        let compute = self.compute;
        let (runs, mut setup_extra) = self.build(&compute);
        let element_bytes = runs
            .iter()
            .flat_map(|r| r.fragments.iter().flatten())
            .map(PayloadBytes::payload_bytes)
            .max()
            .unwrap_or(0);
        let reg = registration_cost(&self.config, element_bytes);
        for extra in &mut setup_extra {
            *extra += reg;
        }
        let keep_raw = self.fault_plan.is_some() || self.rescale_plan.is_some();
        let app_tenants: Vec<AppTenant> = runs
            .iter()
            .map(|r| AppTenant {
                algorithm: r.algorithm,
                predicate: r.predicate.clone(),
                bits: r.bits,
                stationary_inputs: r.stationary.iter().cloned().map(Some).collect(),
                stationary_raw: if keep_raw {
                    r.stationary.clone()
                } else {
                    Vec::new()
                },
                states: (0..hosts).map(|_| None).collect(),
                collectors: (0..hosts)
                    .map(|_| JoinCollector::new(self.output))
                    .collect(),
            })
            .collect();
        let app = MultiTenantApp {
            tenants: app_tenants,
            threads: self.config.join_threads,
            compute,
            setup_extra,
        };
        let queries: Vec<(u32, Vec<Vec<PreparedFragment>>)> = runs
            .into_iter()
            .enumerate()
            .map(|(q, r)| (q as u32, r.fragments))
            .collect();
        let mut ring =
            SimRing::new_queries(self.config, queries, self.max_active, app).with_trace(self.trace);
        if let Some(plan) = self.fault_plan.clone() {
            ring = ring.with_fault_plan(plan);
        }
        if let Some(plan) = self.rescale_plan.clone() {
            ring = ring.with_rescale_plan(plan);
        }
        let outcome = ring.run();
        Ok(assemble_report(
            outcome.metrics,
            outcome.spans,
            outcome
                .app
                .tenants
                .into_iter()
                .map(|t| (t.algorithm.name(), t.collectors))
                .collect(),
        ))
    }

    /// Runs the batch on the real-thread backend (measured compute).
    ///
    /// # Errors
    ///
    /// As [`MultiTenantJoin::run`]; additionally the threaded backend
    /// rejects fault plans with crashes or pauses (no ring healing).
    pub fn run_threaded(&self) -> Result<MultiTenantReport, PlanError> {
        self.validate()?;
        let hosts = self.config.hosts;
        let compute = ComputeMode::Measured;
        let (runs, _) = self.build(&compute);
        let mut states: Vec<Vec<StationaryState>> = Vec::with_capacity(runs.len());
        for r in &runs {
            let mut per_host = Vec::with_capacity(hosts);
            for s in &r.stationary {
                let (state, _) =
                    compute.setup_stationary(&r.algorithm, s, r.bits, self.config.join_threads);
                per_host.push(state);
            }
            states.push(per_host);
        }
        let collectors = collector_grid(runs.len(), hosts, self.output);
        let visit = |host: HostId, query: u32, frag: &PreparedFragment| {
            let (Some(r), Some(qs)) = (runs.get(query as usize), states.get(query as usize)) else {
                debug_assert!(false, "join for unknown query {query}");
                return;
            };
            join_once(
                r,
                qs.get(host.0),
                frag,
                &collectors,
                query,
                host,
                self.config.join_threads,
            );
        };
        let mut driver = RingDriver::new(&self.config).with_tracer(self.trace);
        if let Some(plan) = self.fault_plan.as_ref() {
            driver = driver.with_fault_plan(plan);
        }
        if let Some(plan) = self.rescale_plan.as_ref() {
            driver = driver.with_rescale_plan(plan);
        }
        let queries = query_fragments(&runs);
        let (metrics, spans) = driver
            .run_queries(queries, self.max_active, visit)
            .map_err(PlanError::Backend)?;
        Ok(assemble_report(
            metrics,
            spans,
            drain_grid(runs, collectors),
        ))
    }

    /// Runs the batch over real loopback TCP sockets (blocking driver).
    ///
    /// # Errors
    ///
    /// As [`MultiTenantJoin::run`], plus socket-level errors.
    pub fn run_tcp(&self) -> Result<MultiTenantReport, PlanError> {
        self.run_sockets(SocketFlavor::Blocking)
    }

    /// Runs the batch over real loopback TCP sockets on the epoll-style
    /// reactor driver.
    ///
    /// # Errors
    ///
    /// As [`MultiTenantJoin::run_tcp`].
    pub fn run_reactor(&self) -> Result<MultiTenantReport, PlanError> {
        self.run_sockets(SocketFlavor::Reactor)
    }

    fn run_sockets(&self, flavor: SocketFlavor) -> Result<MultiTenantReport, PlanError> {
        self.validate()?;
        let hosts = self.config.hosts;
        let threads = self.config.join_threads;
        let compute = ComputeMode::Measured;
        let (runs, _) = self.build(&compute);
        // One slot per (query, logical role); healing rebuilds a dead
        // role's state for every tenant, so the slots need locks.
        let states: Vec<Vec<Mutex<Option<StationaryState>>>> = runs
            .iter()
            .map(|r| {
                r.stationary
                    .iter()
                    .map(|s| {
                        let (state, _) = compute.setup_stationary(&r.algorithm, s, r.bits, threads);
                        Mutex::new(Some(state))
                    })
                    .collect()
            })
            .collect();
        let collectors = collector_grid(runs.len(), hosts, self.output);
        let visit = |host: HostId, query: u32, roles: &[usize], frag: &PreparedFragment| {
            let (Some(r), Some(qs)) = (runs.get(query as usize), states.get(query as usize)) else {
                debug_assert!(false, "join for unknown query {query}");
                return;
            };
            for &role in roles {
                let Some(slot) = qs.get(role) else {
                    debug_assert!(false, "join against unknown role {role}");
                    continue;
                };
                let guard = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                join_once(r, guard.as_ref(), frag, &collectors, query, host, threads);
            }
        };
        let absorb = |_survivor: HostId, role: usize| {
            for (r, qs) in runs.iter().zip(&states) {
                let Ok(share) = crate::recovery::takeover(&r.stationary, role) else {
                    debug_assert!(false, "takeover of role {role} outside the ring");
                    continue;
                };
                let (state, _) = compute.setup_stationary(&r.algorithm, &share, r.bits, threads);
                if let Some(slot) = qs.get(role) {
                    *slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(state);
                }
            }
        };
        let queries = query_fragments(&runs);
        let run = |queries| match flavor {
            SocketFlavor::Blocking => {
                let mut driver = TcpRingDriver::new(&self.config).with_tracer(self.trace);
                if let Some(plan) = self.fault_plan.as_ref() {
                    driver = driver.with_fault_plan(plan);
                }
                if let Some(plan) = self.rescale_plan.as_ref() {
                    driver = driver.with_rescale_plan(plan);
                }
                driver.run_queries(queries, self.max_active, visit, absorb)
            }
            SocketFlavor::Reactor => {
                let mut driver = ReactorRingDriver::new(&self.config).with_tracer(self.trace);
                if let Some(plan) = self.fault_plan.as_ref() {
                    driver = driver.with_fault_plan(plan);
                }
                if let Some(plan) = self.rescale_plan.as_ref() {
                    driver = driver.with_rescale_plan(plan);
                }
                driver.run_queries(queries, self.max_active, visit, absorb)
            }
        };
        let (metrics, spans) = run(queries).map_err(PlanError::Backend)?;
        Ok(assemble_report(
            metrics,
            spans,
            drain_grid(runs, collectors),
        ))
    }
}

/// Which socket driver realizes a wall-clock multiplexed run.
#[derive(Debug, Clone, Copy)]
enum SocketFlavor {
    Blocking,
    Reactor,
}

/// A tenant's prepared runtime material, shared by all backends.
struct TenantRun {
    algorithm: Algorithm,
    predicate: JoinPredicate,
    bits: u32,
    fragments: Vec<Vec<PreparedFragment>>,
    stationary: Vec<Relation>,
}

/// Joins `frag` against one logical role's stationary state, locking the
/// tenant's per-host collector for the duration.
fn join_once(
    run: &TenantRun,
    state: Option<&StationaryState>,
    frag: &PreparedFragment,
    collectors: &[Vec<Mutex<JoinCollector>>],
    query: u32,
    host: HostId,
    threads: usize,
) {
    let Some(state) = state else {
        debug_assert!(false, "join against a role whose state is absent");
        return;
    };
    let Some(shared) = collectors
        .get(query as usize)
        .and_then(|row| row.get(host.0))
    else {
        debug_assert!(false, "no collector for query {query} host {}", host.0);
        return;
    };
    let mut collector = shared
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    run.algorithm
        .join(state, frag, &run.predicate, threads, &mut collector);
}

/// One collector per (query, host).
fn collector_grid(
    queries: usize,
    hosts: usize,
    output: OutputMode,
) -> Vec<Vec<Mutex<JoinCollector>>> {
    (0..queries)
        .map(|_| {
            (0..hosts)
                .map(|_| Mutex::new(JoinCollector::new(output)))
                .collect()
        })
        .collect()
}

/// Extracts `(tenant, fragments)` batches from the prepared runs.
fn query_fragments(runs: &[TenantRun]) -> Vec<(u32, Vec<Vec<PreparedFragment>>)> {
    runs.iter()
        .enumerate()
        .map(|(q, r)| (q as u32, r.fragments.clone()))
        .collect()
}

/// Unwraps the collector grid back into per-tenant collector lists.
fn drain_grid(
    runs: Vec<TenantRun>,
    collectors: Vec<Vec<Mutex<JoinCollector>>>,
) -> Vec<(&'static str, Vec<JoinCollector>)> {
    runs.into_iter()
        .zip(collectors)
        .map(|(r, row)| {
            (
                r.algorithm.name(),
                row.into_iter()
                    .map(|m| {
                        m.into_inner()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Folds collectors and per-query ring counters into the report.
fn assemble_report(
    ring: RingMetrics,
    spans: SpanTracer,
    tenants: Vec<(&'static str, Vec<JoinCollector>)>,
) -> MultiTenantReport {
    let reports = tenants
        .into_iter()
        .enumerate()
        .map(|(q, (algorithm, collectors))| {
            let count = collectors.iter().map(JoinCollector::count).sum();
            let checksum = collectors
                .iter()
                .map(JoinCollector::checksum)
                .fold(Checksum::new(), |acc, c| acc.combine(&c));
            let metrics = ring.queries.get(q).copied().unwrap_or_default();
            TenantReport {
                tenant: metrics.tenant,
                algorithm,
                count,
                checksum,
                metrics,
                collectors,
            }
        })
        .collect();
    MultiTenantReport {
        ring,
        spans,
        tenants: reports,
    }
}

/// The [`RingApp`] for the simulated multiplexed run: per-tenant
/// stationary state and collectors keyed by the protocol's query id.
struct AppTenant {
    algorithm: Algorithm,
    predicate: JoinPredicate,
    bits: u32,
    stationary_inputs: Vec<Option<Relation>>,
    stationary_raw: Vec<Relation>,
    states: Vec<Option<StationaryState>>,
    collectors: Vec<JoinCollector>,
}

struct MultiTenantApp {
    tenants: Vec<AppTenant>,
    threads: usize,
    compute: ComputeMode,
    setup_extra: Vec<SimDuration>,
}

impl RingApp<PreparedFragment> for MultiTenantApp {
    fn setup(&mut self, host: HostId) -> SimDuration {
        let mut total = self
            .setup_extra
            .get(host.0)
            .copied()
            .unwrap_or(SimDuration::ZERO);
        for t in &mut self.tenants {
            let Some(s) = t.stationary_inputs.get_mut(host.0).and_then(Option::take) else {
                debug_assert!(false, "setup called twice for host {}", host.0);
                continue;
            };
            let (state, d) = self
                .compute
                .setup_stationary(&t.algorithm, &s, t.bits, self.threads);
            if let Some(slot) = t.states.get_mut(host.0) {
                *slot = Some(state);
            }
            total += d;
        }
        total
    }

    fn process(&mut self, host: HostId, now: SimTime, payload: &PreparedFragment) -> SimDuration {
        // The multiplexed sim driver always dispatches through
        // `process_query`; a plain `process` means query 0, own role.
        let own = [host.0];
        self.process_query(host, 0, &own, now, payload)
    }

    fn process_query(
        &mut self,
        host: HostId,
        query: u32,
        roles: &[usize],
        _now: SimTime,
        fragment: &PreparedFragment,
    ) -> SimDuration {
        let Some(t) = self.tenants.get_mut(query as usize) else {
            debug_assert!(false, "fragment of unknown query {query}");
            return SimDuration::ZERO;
        };
        let Some(collector) = t.collectors.get_mut(host.0) else {
            debug_assert!(false, "no collector for host {}", host.0);
            return SimDuration::ZERO;
        };
        let mut total = SimDuration::ZERO;
        for &role in roles {
            let Some(state) = t.states.get(role).and_then(Option::as_ref) else {
                debug_assert!(
                    false,
                    "join against role {role} whose stationary state is absent"
                );
                continue;
            };
            total += self.compute.join(
                &t.algorithm,
                state,
                fragment,
                &t.predicate,
                self.threads,
                collector,
            );
        }
        total
    }

    fn absorb(&mut self, _survivor: HostId, failed: HostId) -> SimDuration {
        // Ring healing is ring-global: the survivor rebuilds the dead
        // role's stationary state for every tenant in one takeover.
        let mut total = SimDuration::ZERO;
        for t in &mut self.tenants {
            let Ok(share) = crate::recovery::takeover(&t.stationary_raw, failed.0) else {
                debug_assert!(
                    false,
                    "ring healing needs the raw stationary partitions of a multi-host ring"
                );
                continue;
            };
            let (state, d) =
                self.compute
                    .setup_stationary(&t.algorithm, &share, t.bits, self.threads);
            if let Some(slot) = t.states.get_mut(failed.0) {
                *slot = Some(state);
            }
            total += d;
        }
        total
    }
}

/// One tenant's outcome in a multiplexed run.
#[derive(Debug)]
pub struct TenantReport {
    /// The tenant id the query carried on the wire.
    pub tenant: u32,
    /// Name of the local join algorithm that ran.
    pub algorithm: &'static str,
    /// Total matches across hosts.
    pub count: u64,
    /// Order-independent checksum over all matches.
    pub checksum: Checksum,
    /// The ring's per-query counters (retransmits, checksum mismatches,
    /// fragments completed, completion flag).
    pub metrics: QueryMetrics,
    /// Per-host collectors (materialized matches if requested).
    pub collectors: Vec<JoinCollector>,
}

/// The outcome of a multi-tenant multiplexed run.
#[derive(Debug)]
pub struct MultiTenantReport {
    /// Ring-level metrics of the shared multiplexed rotation.
    pub ring: RingMetrics,
    /// Span tracer (enabled when tracing was requested).
    pub spans: SpanTracer,
    /// Per-tenant results, in the order tenants were added.
    pub tenants: Vec<TenantReport>,
}

impl MultiTenantReport {
    /// End-to-end seconds for the whole batch.
    pub fn total_seconds(&self) -> f64 {
        self.ring.wall_clock.as_secs_f64()
    }

    /// Completed queries per second of ring time.
    pub fn queries_per_second(&self) -> f64 {
        let done = self.tenants.iter().filter(|t| t.metrics.completed).count() as f64;
        let secs = self.total_seconds();
        if secs > 0.0 {
            done / secs
        } else {
            0.0
        }
    }

    /// True when every tenant's query ran to completion.
    pub fn all_completed(&self) -> bool {
        !self.tenants.is_empty() && self.tenants.iter().all(|t| t.metrics.completed)
    }
}

impl std::fmt::Display for MultiTenantReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "multi-tenant run: {} tenants in {:.3}s ({:.2} queries/s)",
            self.tenants.len(),
            self.total_seconds(),
            self.queries_per_second(),
        )?;
        for t in &self.tenants {
            writeln!(
                f,
                "  tenant {}: {} matches ({}), {} fragments, {} retransmits{}",
                t.tenant,
                t.count,
                t.algorithm,
                t.metrics.fragments_completed,
                t.metrics.retransmits,
                if t.metrics.completed {
                    ""
                } else {
                    " [INCOMPLETE]"
                },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::reference_join;
    use relation::GenSpec;

    fn batch(tenants: usize) -> (MultiTenantJoin, Vec<(Relation, Relation, JoinPredicate)>) {
        let mut b = MultiTenantJoin::new().hosts(4).fragments_per_host(2);
        let mut specs = Vec::new();
        for q in 0..tenants {
            let r = GenSpec::uniform(2_000 + 500 * q, 700 + 2 * q as u64).generate();
            let s = GenSpec::uniform(1_500, 701 + 2 * q as u64).generate();
            let pred = if q % 2 == 0 {
                JoinPredicate::Equi
            } else {
                JoinPredicate::band(1)
            };
            b = b.tenant(r.clone(), s.clone(), pred.clone());
            specs.push((r, s, pred));
        }
        (b, specs)
    }

    fn assert_verified(report: &MultiTenantReport, specs: &[(Relation, Relation, JoinPredicate)]) {
        assert_eq!(report.tenants.len(), specs.len());
        for (t, (r, s, pred)) in report.tenants.iter().zip(specs) {
            let reference = reference_join(r, s, pred);
            assert_eq!(t.count, reference.count, "tenant {}", t.tenant);
            assert_eq!(t.checksum, reference.checksum, "tenant {}", t.tenant);
            assert!(t.metrics.completed, "tenant {}", t.tenant);
        }
    }

    #[test]
    fn simulated_tenants_match_their_references() {
        let (b, specs) = batch(3);
        let report = b.max_active(2).run().expect("sim multi run");
        assert_verified(&report, &specs);
        assert!(report.all_completed());
        assert!(report.queries_per_second() > 0.0);
    }

    #[test]
    fn simulated_tenants_survive_faults() {
        let (b, specs) = batch(4);
        let mut plan = FaultPlan::seeded(31);
        for h in 0..4 {
            plan = plan.lossy_link(HostId(h), 0.05);
        }
        let report = b.max_active(4).fault_plan(plan).run().expect("faulty run");
        assert_verified(&report, &specs);
        assert!(report.ring.total_retransmits() > 0);
    }

    #[test]
    fn simulated_crash_heals_for_every_tenant() {
        use simnet::time::SimTime;
        let (b, specs) = batch(2);
        // Pick a crash instant inside the run: probe a quiet run first.
        let quiet = b
            .clone()
            .max_active(2)
            .fault_plan(FaultPlan::seeded(5))
            .run()
            .expect("probe run");
        let mid = SimTime::from_nanos(quiet.ring.wall_clock.as_nanos() / 2);
        let plan = FaultPlan::seeded(5).crash_host(HostId(2), mid);
        let report = b.max_active(2).fault_plan(plan).run().expect("healing run");
        assert_eq!(report.ring.heal_events, 1);
        assert_verified(&report, &specs);
    }

    #[test]
    fn threaded_tenants_match_their_references() {
        let (b, specs) = batch(2);
        let report = b
            .ring(RingConfig::paper(4).with_join_threads(1))
            .fragments_per_host(2)
            .max_active(2)
            .run_threaded()
            .expect("threaded multi run");
        assert_verified(&report, &specs);
    }

    #[test]
    fn socket_tenants_match_their_references() {
        let (b, specs) = batch(2);
        let b = b
            .ring(RingConfig::paper(3).with_join_threads(1))
            .fragments_per_host(2)
            .max_active(2);
        for report in [
            b.run_tcp().expect("tcp multi run"),
            b.run_reactor().expect("reactor multi run"),
        ] {
            assert_verified(&report, &specs);
        }
    }

    #[test]
    fn empty_and_zero_bounds_are_rejected() {
        let empty = MultiTenantJoin::new().hosts(3);
        assert!(empty.run().is_err());
        let (b, _) = batch(1);
        assert!(b.clone().max_active(0).run().is_err());
        assert!(b.clone().hosts(1).run().is_err());
        assert!(b.fragments_per_host(0).run().is_err());
    }
}
