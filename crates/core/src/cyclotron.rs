//! The Data Cyclotron: a continuously spinning hot set with ad-hoc query
//! arrivals.
//!
//! Cyclo-join is one revolution; the surrounding project (§I, §VII, and
//! Goncalves & Kersten's Data Cyclotron \[13\]) keeps the hot set
//! "(continuously) circulating in the ring" while "queries remain local
//! to one or more nodes and pick necessary pieces of data as they flow
//! by". This module implements that operational mode on the continuous
//! variant of the simulated ring:
//!
//! * the hot relation's fragments never retire — after each full
//!   revolution they just keep going;
//! * queries *arrive over (virtual) time*, each at a home host, build
//!   their stationary state on arrival, and join every fragment that
//!   flows past their host until they have seen the whole hot set —
//!   one full revolution from wherever they boarded;
//! * the rotation stops once every query has completed.
//!
//! The headline metric is **query latency**: arrival → completion. An
//! unloaded ring answers in ≈ one revolution; contention from concurrent
//! queries stretches the revolution itself, which the benchmark harness
//! sweeps.

use data_roundabout::{HostId, PayloadBytes, RingApp, RingConfig, RingMetrics, SimRing};
use mem_joins::{Algorithm, JoinCollector, JoinPredicate, OutputMode, StationaryState};
use relation::{Checksum, Relation};
use simnet::time::{SimDuration, SimTime};

use crate::compute::ComputeMode;
use crate::plan::PlanError;

/// A fragment of the hot set, tagged so queries can track coverage.
#[derive(Debug, Clone)]
pub struct TaggedFragment {
    /// Stable identity within the rotation (`0 .. fragment count`).
    pub id: usize,
    /// The tuples.
    pub data: Relation,
}

impl PayloadBytes for TaggedFragment {
    fn payload_bytes(&self) -> u64 {
        self.data.byte_volume()
    }
}

/// A query submitted to the cyclotron.
#[derive(Debug, Clone)]
pub struct QueryArrival {
    /// Virtual time (after rotation start) the query arrives.
    pub at: SimDuration,
    /// The host the query lives on ("queries remain local to one node").
    pub home: HostId,
    /// The query's local (stationary) relation.
    pub stationary: Relation,
    /// Join predicate against the hot set.
    pub predicate: JoinPredicate,
    /// Local join algorithm.
    pub algorithm: Algorithm,
}

impl QueryArrival {
    /// An equi-join query with the default hash algorithm.
    pub fn equi(at: SimDuration, home: HostId, stationary: Relation) -> Self {
        QueryArrival {
            at,
            home,
            stationary,
            predicate: JoinPredicate::Equi,
            algorithm: Algorithm::partitioned_hash(),
        }
    }
}

/// A continuously rotating hot set accepting query arrivals.
#[derive(Debug, Clone)]
pub struct DataCyclotron {
    hot: Relation,
    config: RingConfig,
    fragments_per_host: usize,
    compute: ComputeMode,
    arrivals: Vec<QueryArrival>,
}

impl DataCyclotron {
    /// Starts a cyclotron over the hot relation.
    pub fn new(hot: Relation) -> Self {
        DataCyclotron {
            hot,
            config: RingConfig::paper(6),
            fragments_per_host: 4,
            compute: ComputeMode::modeled(),
            arrivals: Vec::new(),
        }
    }

    /// Replaces the ring configuration.
    pub fn ring(mut self, config: RingConfig) -> Self {
        self.config = config;
        self
    }

    /// Shortcut: the paper ring with `n` hosts.
    pub fn hosts(mut self, n: usize) -> Self {
        self.config.hosts = n;
        self
    }

    /// Rotation units per host (default 4).
    pub fn fragments_per_host(mut self, fragments: usize) -> Self {
        self.fragments_per_host = fragments;
        self
    }

    /// Compute pricing mode (default: deterministic model).
    pub fn compute(mut self, compute: ComputeMode) -> Self {
        self.compute = compute;
        self
    }

    /// Submits a query arrival.
    pub fn submit(mut self, arrival: QueryArrival) -> Self {
        self.arrivals.push(arrival);
        self
    }

    /// Spins the rotation until every submitted query has completed.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the configuration is invalid, a query's
    /// algorithm cannot evaluate its predicate, a home host is out of
    /// range, or the hot set is empty while queries are pending.
    pub fn run(&self) -> Result<CyclotronReport, PlanError> {
        self.config.validate().map_err(PlanError::InvalidConfig)?;
        if self.fragments_per_host == 0 {
            return Err(PlanError::NoFragments);
        }
        for q in &self.arrivals {
            if !q.algorithm.supports(&q.predicate) {
                return Err(PlanError::UnsupportedPredicate {
                    algorithm: q.algorithm.name(),
                    predicate: q.predicate.to_string(),
                });
            }
            if q.home.0 >= self.config.hosts {
                return Err(PlanError::BadQuery(format!(
                    "home host {} out of range for a {}-host ring",
                    q.home, self.config.hosts
                )));
            }
        }
        if self.hot.is_empty() && !self.arrivals.is_empty() {
            return Err(PlanError::BadQuery(
                "cannot serve queries from an empty hot set".to_string(),
            ));
        }

        let hosts = self.config.hosts;
        let mut next_id = 0usize;
        let fragments: Vec<Vec<TaggedFragment>> = self
            .hot
            .split_even(hosts)
            .into_iter()
            .map(|share| {
                share
                    .split_even(self.fragments_per_host)
                    .into_iter()
                    .map(|data| {
                        let f = TaggedFragment { id: next_id, data };
                        next_id += 1;
                        f
                    })
                    .collect()
            })
            .collect();
        let fragment_count = next_id;

        let queries = self
            .arrivals
            .iter()
            .map(|a| ActiveQuery {
                arrival: a.clone(),
                state: None,
                activated_at: None,
                completed_at: None,
                seen: vec![false; fragment_count],
                seen_count: 0,
                collector: JoinCollector::new(OutputMode::Aggregate),
            })
            .collect();
        let app = CyclotronApp {
            queries,
            threads: self.config.join_threads,
            compute: self.compute,
            fragment_count,
        };
        let outcome = SimRing::new(self.config, fragments, app).continuous().run();
        let queries = outcome
            .app
            .queries
            .into_iter()
            .map(|q| {
                let completed = q
                    .completed_at
                    .expect("continuous run only stops when all queries completed");
                QueryReport {
                    arrived: SimTime::ZERO + q.arrival.at,
                    completed,
                    latency: completed.saturating_duration_since(SimTime::ZERO + q.arrival.at),
                    count: q.collector.count(),
                    checksum: q.collector.checksum(),
                }
            })
            .collect();
        Ok(CyclotronReport {
            ring: outcome.metrics,
            queries,
            fragment_count,
        })
    }
}

struct ActiveQuery {
    arrival: QueryArrival,
    state: Option<StationaryState>,
    activated_at: Option<SimTime>,
    completed_at: Option<SimTime>,
    seen: Vec<bool>,
    seen_count: usize,
    collector: JoinCollector,
}

struct CyclotronApp {
    queries: Vec<ActiveQuery>,
    threads: usize,
    compute: ComputeMode,
    fragment_count: usize,
}

impl RingApp<TaggedFragment> for CyclotronApp {
    fn setup(&mut self, _host: HostId) -> SimDuration {
        // The hot set rotates raw; queries pay their own setup on arrival.
        SimDuration::ZERO
    }

    fn process(&mut self, host: HostId, now: SimTime, fragment: &TaggedFragment) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for q in &mut self.queries {
            if q.arrival.home != host || q.completed_at.is_some() {
                continue;
            }
            if SimTime::ZERO + q.arrival.at > now {
                continue; // not arrived yet
            }
            // Activation: build the stationary state on first contact.
            if q.state.is_none() {
                let bits = q
                    .arrival
                    .algorithm
                    .ring_radix_bits(q.arrival.stationary.len());
                let (state, d) = self.compute.setup_stationary(
                    &q.arrival.algorithm,
                    &q.arrival.stationary,
                    bits,
                    self.threads,
                );
                q.state = Some(state);
                q.activated_at = Some(now);
                total += d;
            }
            if q.seen[fragment.id] {
                continue; // coverage complete for this fragment already
            }
            let bits = q
                .arrival
                .algorithm
                .ring_radix_bits(q.arrival.stationary.len());
            let (prepared, d_prep) = self.compute.prepare_fragment(
                &q.arrival.algorithm,
                &fragment.data,
                bits,
                self.threads,
            );
            total += d_prep;
            total += self.compute.join(
                &q.arrival.algorithm,
                q.state.as_ref().expect("state built above"),
                &prepared,
                &q.arrival.predicate,
                self.threads,
                &mut q.collector,
            );
            q.seen[fragment.id] = true;
            q.seen_count += 1;
            if q.seen_count == self.fragment_count {
                q.completed_at = Some(now + total);
            }
        }
        total
    }

    fn finished(&self) -> bool {
        self.queries.iter().all(|q| q.completed_at.is_some())
    }
}

/// Outcome of one query in the cyclotron.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryReport {
    /// Virtual arrival time.
    pub arrived: SimTime,
    /// Virtual completion time (full hot-set coverage reached).
    pub completed: SimTime,
    /// Completion − arrival.
    pub latency: SimDuration,
    /// Matches produced.
    pub count: u64,
    /// Checksum over the matches.
    pub checksum: Checksum,
}

/// Outcome of a cyclotron run.
#[derive(Debug)]
pub struct CyclotronReport {
    /// Ring metrics over the whole rotation.
    pub ring: RingMetrics,
    /// Per-query reports, in submission order.
    pub queries: Vec<QueryReport>,
    /// Number of fragments the hot set was cut into.
    pub fragment_count: usize,
}

impl CyclotronReport {
    /// Mean query latency in seconds.
    pub fn mean_latency(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries
            .iter()
            .map(|q| q.latency.as_secs_f64())
            .sum::<f64>()
            / self.queries.len() as f64
    }

    /// The slowest query's latency in seconds.
    pub fn max_latency(&self) -> f64 {
        self.queries
            .iter()
            .map(|q| q.latency.as_secs_f64())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::reference_join;
    use relation::GenSpec;

    fn hot() -> Relation {
        GenSpec::uniform(3_000, 1000).generate()
    }

    #[test]
    fn single_query_sees_the_whole_hot_set() {
        let hot = hot();
        let s = GenSpec::uniform(1_000, 1001).generate();
        let reference = reference_join(&hot, &s, &JoinPredicate::Equi);
        let report = DataCyclotron::new(hot)
            .hosts(4)
            .submit(QueryArrival::equi(SimDuration::ZERO, HostId(2), s))
            .run()
            .expect("cyclotron should run");
        assert_eq!(report.queries.len(), 1);
        assert_eq!(report.queries[0].count, reference.count);
        assert_eq!(report.queries[0].checksum, reference.checksum);
        assert!(report.queries[0].latency > SimDuration::ZERO);
    }

    #[test]
    fn staggered_arrivals_all_verify() {
        let hot = hot();
        let mut cyclotron = DataCyclotron::new(hot.clone()).hosts(3);
        let mut references = Vec::new();
        for i in 0..4u64 {
            let s = GenSpec::uniform(600, 1010 + i).generate();
            references.push(reference_join(&hot, &s, &JoinPredicate::Equi));
            cyclotron = cyclotron.submit(QueryArrival::equi(
                SimDuration::from_millis(i * 5),
                HostId((i as usize) % 3),
                s,
            ));
        }
        let report = cyclotron.run().expect("cyclotron should run");
        for (q, reference) in report.queries.iter().zip(&references) {
            assert_eq!(q.count, reference.count);
            assert_eq!(q.checksum, reference.checksum);
            assert!(q.completed > q.arrived);
        }
    }

    #[test]
    fn late_arrivals_keep_the_ring_spinning() {
        let hot = hot();
        let s = GenSpec::uniform(500, 1020).generate();
        // The query arrives long after an unloaded rotation would finish.
        let late = SimDuration::from_millis(200);
        let report = DataCyclotron::new(hot)
            .hosts(3)
            .submit(QueryArrival::equi(late, HostId(0), s))
            .run()
            .expect("cyclotron should run");
        assert!(report.queries[0].arrived >= SimTime::ZERO + late);
        assert!(report.queries[0].count > 0);
    }

    #[test]
    fn unloaded_latency_is_about_one_revolution() {
        let hot = GenSpec::uniform(6_000, 1030).generate();
        let s = GenSpec::uniform(500, 1031).generate();
        let report = DataCyclotron::new(hot.clone())
            .hosts(6)
            .submit(QueryArrival::equi(SimDuration::ZERO, HostId(0), s.clone()))
            .run()
            .expect("cyclotron should run");
        // Compare against a dedicated cyclo-join of the same shape.
        let dedicated = crate::plan::CycloJoin::new(hot, s)
            .hosts(6)
            .rotate(crate::distribute::RotateSide::R)
            .ship_prepared(false)
            .run()
            .expect("plan should run");
        let ratio = report.queries[0].latency.as_secs_f64()
            / (dedicated.setup_seconds() + dedicated.join_window_seconds()).max(1e-9);
        assert!(
            (0.3..4.0).contains(&ratio),
            "unloaded cyclotron latency should be within a small factor of a \
             dedicated revolution, got {ratio:.2}"
        );
    }

    #[test]
    fn empty_hot_set_with_queries_is_an_error() {
        let s = GenSpec::uniform(10, 1040).generate();
        let err = DataCyclotron::new(Relation::new())
            .hosts(2)
            .submit(QueryArrival::equi(SimDuration::ZERO, HostId(0), s))
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("empty hot set"));
    }

    #[test]
    fn no_queries_stops_immediately() {
        let report = DataCyclotron::new(hot())
            .hosts(3)
            .run()
            .expect("should run");
        assert!(report.queries.is_empty());
        assert_eq!(report.mean_latency(), 0.0);
    }

    #[test]
    fn out_of_range_home_is_an_error() {
        let s = GenSpec::uniform(10, 1050).generate();
        assert!(DataCyclotron::new(hot())
            .hosts(2)
            .submit(QueryArrival::equi(SimDuration::ZERO, HostId(7), s))
            .run()
            .is_err());
    }
}
