//! # cyclo-join — distributed join processing on the Data Roundabout
//!
//! A faithful reproduction of *"A Spinning Join That Does Not Get Dizzy"*
//! (Frey, Goncalves, Kersten, Teubner — ICDCS 2010): relation `S` stays
//! partitioned across a ring of hosts while relation `R` rotates through
//! it over an RDMA-style transport; after one full revolution every host
//! holds `R ⋈ S_i`, and their union is the complete join — computed
//! entirely in distributed main memory.
//!
//! The six-blade RDMA cluster of the paper is replaced by a deterministic
//! discrete-event simulation (see the `simnet` and `data-roundabout`
//! crates); the local join algorithms, the ring protocol, and the results
//! themselves are all real and verified against single-host reference
//! joins.
//!
//! ## Quick start
//!
//! ```
//! use cyclo_join::CycloJoin;
//! use relation::GenSpec;
//!
//! # fn main() -> Result<(), cyclo_join::PlanError> {
//! // Two relations of 50k 12-byte tuples with uniform join keys.
//! let r = GenSpec::uniform(50_000, 1).generate();
//! let s = GenSpec::uniform(50_000, 2).generate();
//!
//! // Join them on a six-host RDMA ring.
//! let report = CycloJoin::new(r, s).hosts(6).run()?;
//! println!("{report}");
//! assert!(report.match_count() > 0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Module map
//!
//! * [`plan::CycloJoin`] — the builder/entry point;
//! * [`compute`] — measured vs modeled compute pricing;
//! * [`distribute`] — spreading inputs over the ring, rotation choice;
//! * [`result`] — the distributed join result;
//! * [`report`] — phase breakdowns (setup / join / sync, CPU load);
//! * [`model`] — the analytic cost model and §V-E crossover analysis;
//! * [`ternary`] / [`pipeline`] — multi-way joins via repeated revolutions;
//! * [`concurrent`] — multiple queries sharing one rotation;
//! * [`multiplex`] — independent tenants multiplexed on one ring with
//!   per-query credits and admission control;
//! * [`cyclotron`] — continuous rotation with ad-hoc query arrivals (the
//!   full Data Cyclotron operational mode);
//! * [`recovery`] — ring elasticity and failure absorption;
//! * [`sql`] — a minimal SQL front-end (§VII's "SQL-enabled system");
//! * [`verify`] — trusted single-host reference joins.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compute;
pub mod concurrent;
pub mod cyclotron;
pub mod distribute;
mod exec;
pub mod model;
pub mod multiplex;
pub mod pipeline;
pub mod plan;
pub mod recovery;
pub mod report;
pub mod result;
pub mod sql;
pub mod ternary;
pub mod verify;

pub use compute::{ComputeMode, CostModel};
pub use concurrent::{ConcurrentJoins, ConcurrentReport, QueryOutcome};
pub use cyclotron::{CyclotronReport, DataCyclotron, QueryArrival};
pub use distribute::{Placement, RotateSide};
pub use model::{
    advise, advise_from_data, crossover_ring_size, predict, predict_degraded, predict_rescale,
    Advice, PhasePrediction, Workload,
};
pub use multiplex::{MultiTenantJoin, MultiTenantReport, TenantReport};
pub use pipeline::{JoinPipeline, PipelineReport};
pub use plan::{CycloJoin, PlanError};
pub use recovery::{absorb_host, rebalance, takeover, RecoveryError};
pub use report::CycloJoinReport;
pub use result::DistributedResult;
pub use sql::{Catalog, Query, SqlError};
pub use ternary::{TernaryJoin, TernaryReport};
pub use verify::{reference_join, Reference};

// Re-exports so downstream users can drive everything from one crate.
pub use data_roundabout::{FaultPlan, HostId, RescalePlan, RingConfig, RingError, RingMetrics};
pub use mem_joins::{Algorithm, JoinPredicate, OutputMode};
pub use simnet::span::{SpanKind, SpanTracer};
