//! Compute pricing: how long a host's setup and join work takes in
//! virtual time.
//!
//! The local joins always *execute for real* (the result is genuinely
//! computed and verified); what differs is where their virtual duration
//! comes from:
//!
//! * [`ComputeMode::Measured`] — wall-clock-time the real execution and use
//!   that as the virtual duration. Realistic, used by the benchmark
//!   harness; not deterministic across machines.
//! * [`ComputeMode::Modeled`] — price the work with an analytic
//!   [`CostModel`] calibrated to the paper's testbed (per-tuple constants
//!   back-solved from the reported phase times). Fully deterministic;
//!   used by tests and by sweeps at paper-scale volumes that would be too
//!   slow to execute at `scale = 1.0`.

use mem_joins::{
    timed, Algorithm, JoinCollector, JoinPredicate, PreparedFragment, StationaryState,
};
use relation::Relation;
use serde::{Deserialize, Serialize};
use simnet::time::SimDuration;

/// Analytic per-tuple cost constants, calibrated to the paper's quad-core
/// 2.33 GHz Xeon testbed so that the modeled phase times land near the
/// reported figures at `scale = 1.0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Hash-table build cost per stationary tuple (radix partition + insert),
    /// nanoseconds, single-threaded.
    pub hash_build_ns: f64,
    /// Radix-partitioning cost per rotating tuple, nanoseconds, single-threaded.
    pub hash_partition_ns: f64,
    /// Hash-probe cost per probe tuple, nanoseconds, single-threaded.
    pub hash_probe_ns: f64,
    /// Cost per emitted match (chain walk + output), nanoseconds.
    pub match_ns: f64,
    /// Sort cost per tuple per log₂(n) level, nanoseconds, single-threaded.
    pub sort_ns: f64,
    /// Merge cost per probe-side tuple, nanoseconds, single-threaded. The
    /// stationary side's cursor advance is a strictly sequential scan with
    /// perfect prefetching (§V-E), so its cost is folded into this constant.
    pub merge_ns: f64,
    /// Nested-loops cost per key pair evaluated, nanoseconds.
    pub nl_pair_ns: f64,
    /// Cache-degradation coefficient for duplicate-heavy probes: the
    /// effective per-match cost is `match_ns × (1 + α·ln(avg duplicates
    /// per probe tuple))`. Long hash chains spill out of L2, so probing a
    /// skew-concentrated table costs more per match — this is the Figure 9
    /// effect, and distributing the table over `n` hosts shortens the
    /// chains each host sees.
    pub dup_cache_alpha: f64,
}

impl CostModel {
    /// Constants calibrated to the paper's testbed.
    pub fn paper_xeon() -> Self {
        CostModel {
            hash_build_ns: 300.0,
            hash_partition_ns: 160.0,
            hash_probe_ns: 70.0,
            match_ns: 10.0,
            sort_ns: 42.0,
            merge_ns: 30.0,
            nl_pair_ns: 1.2,
            dup_cache_alpha: 1.4,
        }
    }

    fn ns(&self, nanos: f64) -> SimDuration {
        SimDuration::from_secs_f64(nanos.max(0.0) / 1e9)
    }

    /// Modeled duration of `setup_stationary` for `alg` over `s_tuples`.
    pub fn setup_duration(&self, alg: &Algorithm, s_tuples: usize, threads: usize) -> SimDuration {
        let t = threads.max(1) as f64;
        let n = s_tuples as f64;
        match alg {
            Algorithm::PartitionedHash(_) => self.ns(n * self.hash_build_ns / t),
            Algorithm::SortMerge => self.ns(n * n.max(2.0).log2() * self.sort_ns / t),
            Algorithm::NestedLoops => SimDuration::ZERO,
        }
    }

    /// Modeled duration of `prepare_fragment` for `alg` over `r_tuples`.
    pub fn prepare_duration(
        &self,
        alg: &Algorithm,
        r_tuples: usize,
        threads: usize,
    ) -> SimDuration {
        let t = threads.max(1) as f64;
        let n = r_tuples as f64;
        match alg {
            Algorithm::PartitionedHash(_) => self.ns(n * self.hash_partition_ns / t),
            Algorithm::SortMerge => self.ns(n * n.max(2.0).log2() * self.sort_ns / t),
            Algorithm::NestedLoops => SimDuration::ZERO,
        }
    }

    /// Modeled duration of one join-phase encounter: `r_tuples` probed
    /// against `s_tuples`, yielding `matches`.
    pub fn join_duration(
        &self,
        alg: &Algorithm,
        r_tuples: usize,
        s_tuples: usize,
        matches: u64,
        threads: usize,
    ) -> SimDuration {
        let t = threads.max(1) as f64;
        let r = r_tuples as f64;
        let s = s_tuples as f64;
        let m = matches as f64;
        match alg {
            Algorithm::PartitionedHash(_) => {
                // Skew surrogate: average duplicates found per probe tuple;
                // chains longer than ~1 walk out of cache.
                let avg_dup = if r > 0.0 { (m / r).max(1.0) } else { 1.0 };
                let match_eff = self.match_ns * (1.0 + self.dup_cache_alpha * avg_dup.ln());
                self.ns((r * self.hash_probe_ns + m * match_eff) / t)
            }
            Algorithm::SortMerge => self.ns((r * self.merge_ns + m * self.match_ns) / t),
            Algorithm::NestedLoops => self.ns((r * s * self.nl_pair_ns + m * self.match_ns) / t),
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_xeon()
    }
}

/// Where virtual compute durations come from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ComputeMode {
    /// Wall-clock-measure the real execution.
    Measured,
    /// Price the (still real) execution with an analytic cost model.
    Modeled(CostModel),
}

impl ComputeMode {
    /// The default deterministic mode with the paper-calibrated model.
    pub fn modeled() -> Self {
        ComputeMode::Modeled(CostModel::paper_xeon())
    }

    /// Runs the setup phase over `s`, returning the state and its virtual
    /// duration.
    pub fn setup_stationary(
        &self,
        alg: &Algorithm,
        s: &Relation,
        radix_bits: u32,
        threads: usize,
    ) -> (StationaryState, SimDuration) {
        match self {
            ComputeMode::Measured => {
                let (state, d) = timed(|| alg.setup_stationary(s, radix_bits, threads));
                (state, d.into())
            }
            ComputeMode::Modeled(model) => {
                let state = alg.setup_stationary(s, radix_bits, threads);
                (state, model.setup_duration(alg, s.len(), threads))
            }
        }
    }

    /// Reorganizes a rotating fragment, returning it and its virtual duration.
    pub fn prepare_fragment(
        &self,
        alg: &Algorithm,
        r: &Relation,
        radix_bits: u32,
        threads: usize,
    ) -> (PreparedFragment, SimDuration) {
        match self {
            ComputeMode::Measured => {
                let (frag, d) = timed(|| alg.prepare_fragment(r, radix_bits, threads));
                (frag, d.into())
            }
            ComputeMode::Modeled(model) => {
                let frag = alg.prepare_fragment(r, radix_bits, threads);
                (frag, model.prepare_duration(alg, r.len(), threads))
            }
        }
    }

    /// Runs one join-phase encounter into `collector`, returning its
    /// virtual duration.
    pub fn join(
        &self,
        alg: &Algorithm,
        state: &StationaryState,
        fragment: &PreparedFragment,
        predicate: &JoinPredicate,
        threads: usize,
        collector: &mut JoinCollector,
    ) -> SimDuration {
        match self {
            ComputeMode::Measured => {
                let ((), d) = timed(|| alg.join(state, fragment, predicate, threads, collector));
                d.into()
            }
            ComputeMode::Modeled(model) => {
                let before = collector.count();
                alg.join(state, fragment, predicate, threads, collector);
                let matches = collector.count() - before;
                model.join_duration(alg, fragment.len(), state.len(), matches, threads)
            }
        }
    }
}

impl Default for ComputeMode {
    fn default() -> Self {
        ComputeMode::modeled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::GenSpec;

    fn model() -> CostModel {
        CostModel::paper_xeon()
    }

    #[test]
    fn setup_scales_linearly_for_hash() {
        let alg = Algorithm::partitioned_hash();
        let d1 = model().setup_duration(&alg, 1_000_000, 4);
        let d2 = model().setup_duration(&alg, 2_000_000, 4);
        let ratio = d2.as_secs_f64() / d1.as_secs_f64();
        assert!((ratio - 2.0).abs() < 1e-6);
    }

    #[test]
    fn sort_setup_costs_more_than_hash_setup() {
        // §V-E: sorting incurs a significantly higher cost than hashing.
        let n = 10_000_000;
        let hash = model().setup_duration(&Algorithm::partitioned_hash(), n, 4);
        let sort = model().setup_duration(&Algorithm::SortMerge, n, 4);
        assert!(sort.as_secs_f64() > 2.0 * hash.as_secs_f64());
    }

    #[test]
    fn merge_phase_beats_probe_phase() {
        // §V-E: the sort-merge join phase is about twice as fast.
        let r = 10_000_000;
        let s = 10_000_000;
        let matches = r as u64;
        let probe = model().join_duration(&Algorithm::partitioned_hash(), r, s, matches, 4);
        let merge = model().join_duration(&Algorithm::SortMerge, r, s, matches, 4);
        assert!(
            merge.as_secs_f64() < probe.as_secs_f64(),
            "merge {merge} should beat probe {probe}"
        );
    }

    #[test]
    fn duplicate_heavy_probes_cost_more_per_match() {
        let alg = Algorithm::partitioned_hash();
        let r = 1_000_000;
        // Same number of matches spread thin vs concentrated:
        let thin = model().join_duration(&alg, r, r, r as u64, 4);
        let heavy = model().join_duration(&alg, r, r, 20 * r as u64, 4);
        // Heavy has 20× the matches; with the cache surrogate it must cost
        // more than 20× the marginal match cost would alone.
        let thin_per_match = thin.as_secs_f64();
        assert!(heavy.as_secs_f64() > 10.0 * thin_per_match);
    }

    #[test]
    fn threads_divide_modeled_durations() {
        let alg = Algorithm::SortMerge;
        let d1 = model().join_duration(&alg, 1_000_000, 1_000_000, 0, 1);
        let d4 = model().join_duration(&alg, 1_000_000, 1_000_000, 0, 4);
        let ratio = d1.as_secs_f64() / d4.as_secs_f64();
        assert!((ratio - 4.0).abs() < 1e-6);
    }

    #[test]
    fn paper_scale_sanity_hash_setup() {
        // At full scale the paper reports ~16.2 s single-host setup for
        // 2 × 140 M tuples (build over S + partition R). The model should
        // land within a factor of two.
        let m = model();
        let build = m.setup_duration(&Algorithm::partitioned_hash(), 140_000_000, 4);
        let prep = m.prepare_duration(&Algorithm::partitioned_hash(), 140_000_000, 4);
        let total = build.as_secs_f64() + prep.as_secs_f64();
        assert!(
            (8.0..32.0).contains(&total),
            "modeled single-host setup {total} s should be near 16.2 s"
        );
    }

    #[test]
    fn measured_and_modeled_agree_on_results() {
        let alg = Algorithm::partitioned_hash();
        let s = GenSpec::uniform(2_000, 1).generate();
        let r = GenSpec::uniform(2_000, 2).generate();
        let bits = alg.ring_radix_bits(s.len());
        let run = |mode: ComputeMode| {
            let (state, _) = mode.setup_stationary(&alg, &s, bits, 2);
            let (frag, _) = mode.prepare_fragment(&alg, &r, bits, 2);
            let mut c = JoinCollector::aggregating();
            let d = mode.join(&alg, &state, &frag, &JoinPredicate::Equi, 2, &mut c);
            assert!(d > SimDuration::ZERO || c.count() == 0);
            (c.count(), c.checksum())
        };
        assert_eq!(run(ComputeMode::Measured), run(ComputeMode::modeled()));
    }

    #[test]
    fn modeled_durations_are_deterministic() {
        let mode = ComputeMode::modeled();
        let alg = Algorithm::SortMerge;
        let s = GenSpec::uniform(1_000, 3).generate();
        let d1 = mode.setup_stationary(&alg, &s, 0, 2).1;
        let d2 = mode.setup_stationary(&alg, &s, 0, 2).1;
        assert_eq!(d1, d2);
    }
}
