//! An analytic cost model for whole cyclo-join runs.
//!
//! The paper closes by calling for "a complete cost model for cyclo-join"
//! (§VII); this module is that model: closed-form predictions of the
//! setup, join and sync phases from the input volumes, ring configuration
//! and per-tuple compute constants. It powers
//!
//! * the §V-E claim check — at which ring size does sort-merge's one-time
//!   sorting investment overtake the hash join ([`crossover_ring_size`])?
//! * plan advice — which side to rotate and which algorithm to pick
//!   ([`advise`]).
//!
//! Predictions deliberately mirror the paper's own reasoning:
//! setup ∝ per-host volume; hash join-phase cost ∝ `|R|` and independent
//! of the ring size (Equation ⋆); the ring becomes network-bound when the
//! per-link transfer time of the entire rotating relation exceeds the
//! per-host busy time (§V-F).

use data_roundabout::{FaultPlan, HostId, RescalePlan, RingConfig};
use mem_joins::Algorithm;
use serde::{Deserialize, Serialize};
use simnet::time::SimDuration;

use crate::compute::CostModel;

/// Closed-form phase predictions for one cyclo-join run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhasePrediction {
    /// Predicted setup time (max over hosts; hosts run in parallel).
    pub setup: SimDuration,
    /// Predicted busy join time per host.
    pub join: SimDuration,
    /// Predicted synchronization (waiting-for-data) time per host.
    pub sync: SimDuration,
}

impl PhasePrediction {
    /// Predicted end-to-end time.
    pub fn total(&self) -> SimDuration {
        self.setup + self.join + self.sync
    }
}

/// Workload description for the analytic model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Rotating-relation tuples (total, across all hosts).
    pub rotating_tuples: usize,
    /// Stationary-relation tuples (total, across all hosts).
    pub stationary_tuples: usize,
    /// Expected total match count.
    pub expected_matches: u64,
    /// Rotation units per host.
    pub fragments_per_host: usize,
}

impl Workload {
    /// A uniform equi-join workload: matches ≈ |R|·|S| / key-domain.
    pub fn uniform(rotating: usize, stationary: usize, key_domain: usize) -> Self {
        let matches =
            (rotating as f64 * stationary as f64 / key_domain.max(1) as f64).round() as u64;
        Workload {
            rotating_tuples: rotating,
            stationary_tuples: stationary,
            expected_matches: matches,
            fragments_per_host: 4,
        }
    }

    /// Builds a workload description from the actual input relations,
    /// using the *exact* equi-join output cardinality (O(|R| + |S|) via
    /// [`relation::estimate_equi_matches`]) rather than a domain guess.
    pub fn from_data(
        rotating: &relation::Relation,
        stationary: &relation::Relation,
        fragments_per_host: usize,
    ) -> Self {
        Workload {
            rotating_tuples: rotating.len(),
            stationary_tuples: stationary.len(),
            expected_matches: relation::estimate_equi_matches(rotating, stationary),
            fragments_per_host: fragments_per_host.max(1),
        }
    }
}

/// Predicts the phase breakdown of running `workload` with `alg` on `config`.
///
/// ```
/// use cyclo_join::{predict, Algorithm, CostModel, RingConfig, Workload};
///
/// let p = predict(
///     &CostModel::paper_xeon(),
///     &RingConfig::paper(6),
///     &Algorithm::partitioned_hash(),
///     &Workload::uniform(140_000_000, 140_000_000, 140_000_000),
/// );
/// // Six hosts cut the paper's 16 s single-host setup to a few seconds.
/// assert!(p.setup.as_secs_f64() < 5.0);
/// ```
pub fn predict(
    model: &CostModel,
    config: &RingConfig,
    alg: &Algorithm,
    workload: &Workload,
) -> PhasePrediction {
    let n = config.hosts.max(1);
    let threads = config.join_threads;
    let r = workload.rotating_tuples;
    let s_i = workload.stationary_tuples / n;
    let r_i = r / n;
    let fragments = (n * workload.fragments_per_host).max(1);
    let r_frag = r / fragments;
    let matches_per_encounter = workload.expected_matches / (n as u64 * fragments as u64).max(1);

    let setup = model.setup_duration(alg, s_i, threads) + model.prepare_duration(alg, r_i, threads);

    // Per host: every fragment of R is joined against S_i exactly once.
    let mut join = SimDuration::ZERO;
    for _ in 0..fragments {
        join += model.join_duration(alg, r_frag, s_i, matches_per_encounter, threads);
    }

    // Per full revolution, the entire rotating relation crosses each link
    // once (§V-F); the join entity waits whenever the wire is slower than
    // the local joins.
    let sync = if n == 1 {
        SimDuration::ZERO
    } else {
        let frag_bytes = (r_frag as u64 * relation::TUPLE_BYTES).max(1);
        let per_frag_wire = config.effective_wire_seconds(frag_bytes) + config.link_latency;
        let wire_total = per_frag_wire * fragments as u64;
        wire_total.saturating_sub(join)
    };

    PhasePrediction { setup, join, sync }
}

/// Like [`predict`], but degraded by a [`FaultPlan`]: the closed-form
/// counterpart of a chaos run, for sizing timeouts and retransmission
/// budgets before running one.
///
/// The degradations mirror how the transport actually behaves:
///
/// * **stragglers** stretch the busy join phase by the worst slowdown
///   factor (the ring rotates at the pace of its slowest member);
/// * **lossy / corrupting links** multiply the wire time by the expected
///   attempt count `1 / (1 − p)` — the loss rate is estimated by sampling
///   the plan's own deterministic dice, so the prediction uses exactly the
///   distribution the run will see;
/// * **pauses** stall the whole rotation for their window — credit flow
///   control backpressures the ring around a frozen-but-live host;
/// * **crashes** add the failure-detection latency (the full escalating
///   retransmission schedule, `ack_timeout × (2^(max_retransmits+1) − 1)`)
///   plus the takeover setup of the orphaned share, and shift the dead
///   hosts' join work onto the survivors.
pub fn predict_degraded(
    model: &CostModel,
    config: &RingConfig,
    alg: &Algorithm,
    workload: &Workload,
    plan: &FaultPlan,
) -> PhasePrediction {
    let base = predict(model, config, alg, workload);
    let n = config.hosts.max(1);

    // Stragglers: the worst per-host slowdown bounds the rotation pace.
    let worst_slowdown = (0..n)
        .map(|h| plan.slowdown(HostId(h)))
        .fold(1.0f64, f64::min);
    let mut join = base.join;
    if worst_slowdown != 1.0 {
        join = join * (1.0 / worst_slowdown);
    }

    // Dead hosts: their share of the rotation is served by survivors.
    let dead = plan.crashes().len().min(n.saturating_sub(1));
    if dead > 0 {
        join = join * (n as f64 / (n - dead) as f64);
    }

    // Unreliable links: expected attempts per transfer from the plan's own
    // dice (sampled, since decisions are per (seq, attempt) and exact).
    const SAMPLES: u64 = 512;
    let worst_failure_rate = (0..n)
        .map(|h| {
            let failures = (0..SAMPLES)
                .filter(|&s| {
                    plan.should_drop(HostId(h), s, 1) || plan.should_corrupt(HostId(h), s, 1)
                })
                .count();
            failures as f64 / SAMPLES as f64
        })
        .fold(0.0f64, f64::max)
        .min(0.99);
    let mut sync = base.sync;
    if worst_failure_rate > 0.0 {
        // Retransmissions inflate the wire time. The wire is busy for at
        // least `sync + join` (it is fully hidden only when joins are
        // slower); the extra attempts' worth of wire time surfaces as
        // waiting.
        let attempts = 1.0 / (1.0 - worst_failure_rate);
        sync += (base.sync + base.join) * (attempts - 1.0);
    }

    // Pauses: a paused host stalls the whole rotation for its pause
    // window — credit flow control backpressures the ring, it does not
    // route around a live host.
    for p in plan.pauses() {
        if p.host.0 < n {
            sync += p.duration;
        }
    }

    // Crashes: detection (the escalating timeout ladder) + rebuilding the
    // orphaned stationary share on the survivor.
    if dead > 0 {
        let ladder = (1u64 << (config.max_retransmits + 1)).saturating_sub(1);
        let s_share = workload.stationary_tuples / n;
        let takeover = model.setup_duration(alg, s_share, config.join_threads);
        sync += config.ack_timeout * ladder * dead as u64 + takeover * dead as u64;
    }

    PhasePrediction {
        setup: base.setup,
        join,
        sync,
    }
}

/// Like [`predict`], but adjusted for a planned membership schedule
/// ([`RescalePlan`]) — the closed-form counterpart of an elastic run,
/// for deciding whether a drain or a late join is worth its pause before
/// scheduling one.
///
/// The adjustments mirror how the elastic ring actually behaves:
///
/// * **standbys** (hosts named in a scheduled join) own no stationary
///   partition and ship no fragments until activated, so setup and
///   preparation spread over the *initial members* only — a ring that
///   will grow to `n` pays the setup of a smaller ring;
/// * **handoffs**: each completed transition (activate or depart) moves
///   roughly one rendezvous-hashed stationary partition, and rebuilding
///   that partition on its new owner stalls the recipient — the rescale
///   *pause term*, one takeover-setup per transition added to sync;
/// * **drains** shift the departing member's remaining join work onto
///   the survivors for the tail of the revolution (about half of it on
///   average) — the planned counterpart of the crash term *without* any
///   failure-detection ladder, which is exactly what makes a drain
///   cheaper than the crash it would otherwise become.
pub fn predict_rescale(
    model: &CostModel,
    config: &RingConfig,
    alg: &Algorithm,
    workload: &Workload,
    plan: &RescalePlan,
) -> PhasePrediction {
    let base = predict(model, config, alg, workload);
    let n = config.hosts.max(1);
    let threads = config.join_threads;
    let joins = plan.joins().len().min(n.saturating_sub(1));
    let drains = plan.drains().len().min(n.saturating_sub(1));

    // Standbys start outside the ring: both sides spread over the initial
    // members, so the parallel setup phase runs at the smaller ring size.
    let members = (n - joins).max(1);
    let s_share = workload.stationary_tuples / members;
    let r_share = workload.rotating_tuples / members;
    let setup = if joins > 0 {
        model.setup_duration(alg, s_share, threads) + model.prepare_duration(alg, r_share, threads)
    } else {
        base.setup
    };

    // The pause term: every completed transition hands off about one
    // stationary partition, and its new owner rebuilds it while the
    // pipeline holds its credit.
    let transitions = (joins + drains) as u64;
    let rebuild = model.setup_duration(alg, s_share, threads);
    let sync = base.sync + rebuild * transitions;

    // A drained member leaves mid-revolution; on average the survivors
    // carry its roles for half the remaining work. No detection ladder
    // anywhere: planned departures are announced, not detected.
    let mut join = base.join;
    if drains > 0 {
        let survivors = (n - drains).max(1);
        join = join * (1.0 + 0.5 * drains as f64 / survivors as f64);
    }

    PhasePrediction { setup, join, sync }
}

/// The smallest ring size at which sort-merge join's predicted total beats
/// the partitioned hash join's for a *scale-up* workload (`per_host`
/// tuples of each relation added per node, the Figure 8/11 regime).
/// Returns `None` if no crossover occurs up to `max_hosts`.
pub fn crossover_ring_size(
    model: &CostModel,
    base_config: &RingConfig,
    per_host_tuples: usize,
    max_hosts: usize,
) -> Option<usize> {
    for n in 1..=max_hosts {
        let config = RingConfig {
            hosts: n,
            ..*base_config
        };
        let workload = Workload::uniform(
            per_host_tuples * n,
            per_host_tuples * n,
            per_host_tuples * n,
        );
        let hash = predict(model, &config, &Algorithm::partitioned_hash(), &workload);
        let smj = predict(model, &config, &Algorithm::SortMerge, &workload);
        if smj.total() < hash.total() {
            return Some(n);
        }
    }
    None
}

/// Plan advice derived from the model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Advice {
    /// True if the logical `S` should rotate (it is smaller).
    pub rotate_s: bool,
    /// Predicted-faster algorithm for an equi-join of this shape.
    pub prefer_sort_merge: bool,
}

/// Advises on rotation side and algorithm for an equi-join of the two
/// concrete input relations: sizes and the exact match cardinality are
/// read from the data.
pub fn advise_from_data(
    model: &CostModel,
    config: &RingConfig,
    r: &relation::Relation,
    s: &relation::Relation,
) -> Advice {
    let rotate_s = s.len() < r.len();
    let (rot, stat) = if rotate_s { (s, r) } else { (r, s) };
    let workload = Workload::from_data(rot, stat, 4);
    let hash = predict(model, config, &Algorithm::partitioned_hash(), &workload);
    let smj = predict(model, config, &Algorithm::SortMerge, &workload);
    Advice {
        rotate_s,
        prefer_sort_merge: smj.total() < hash.total(),
    }
}

/// Advises on rotation side and algorithm for an equi-join of the given
/// shape on `config`.
pub fn advise(
    model: &CostModel,
    config: &RingConfig,
    r_tuples: usize,
    s_tuples: usize,
    key_domain: usize,
) -> Advice {
    let rotate_s = s_tuples < r_tuples;
    let (rot, stat) = if rotate_s {
        (s_tuples, r_tuples)
    } else {
        (r_tuples, s_tuples)
    };
    let workload = Workload::uniform(rot, stat, key_domain);
    let hash = predict(model, config, &Algorithm::partitioned_hash(), &workload);
    let smj = predict(model, config, &Algorithm::SortMerge, &workload);
    Advice {
        rotate_s,
        prefer_sort_merge: smj.total() < hash.total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::paper_xeon()
    }

    /// The paper's Figure 7/8 per-host volume: 1.6 GB per relation side.
    const PER_HOST: usize = 133_000_000;

    #[test]
    fn setup_scales_inversely_with_ring_size() {
        let m = model();
        let workload = Workload::uniform(140_000_000, 140_000_000, 140_000_000);
        let one = predict(
            &m,
            &RingConfig::paper(1),
            &Algorithm::partitioned_hash(),
            &workload,
        );
        let six = predict(
            &m,
            &RingConfig::paper(6),
            &Algorithm::partitioned_hash(),
            &workload,
        );
        let speedup = one.setup.as_secs_f64() / six.setup.as_secs_f64();
        assert!((5.0..7.0).contains(&speedup), "got {speedup}");
    }

    #[test]
    fn hash_join_phase_is_ring_size_independent() {
        // Equation ⋆: join cost ∝ |R|, constant in n.
        let m = model();
        let workload = Workload::uniform(140_000_000, 140_000_000, 140_000_000);
        let two = predict(
            &m,
            &RingConfig::paper(2),
            &Algorithm::partitioned_hash(),
            &workload,
        );
        let six = predict(
            &m,
            &RingConfig::paper(6),
            &Algorithm::partitioned_hash(),
            &workload,
        );
        let ratio = two.join.as_secs_f64() / six.join.as_secs_f64();
        assert!((0.8..1.2).contains(&ratio), "got {ratio}");
    }

    #[test]
    fn sort_merge_exposes_sync_at_scale() {
        // §V-F: with sort-merge the join phase is too fast to hide the
        // network; sync time appears.
        let m = model();
        let config = RingConfig::paper(6);
        let workload = Workload::uniform(6 * PER_HOST, 6 * PER_HOST, 6 * PER_HOST);
        let smj = predict(&m, &config, &Algorithm::SortMerge, &workload);
        let hash = predict(&m, &config, &Algorithm::partitioned_hash(), &workload);
        assert!(
            smj.sync > hash.sync,
            "smj sync {} vs hash {}",
            smj.sync,
            hash.sync
        );
        assert!(smj.join < hash.join, "merge must be faster than probe");
        assert!(
            smj.setup > hash.setup,
            "sorting must cost more than hashing"
        );
    }

    #[test]
    fn crossover_lands_near_thirty_nodes() {
        // §V-E: "we expect that [sort-merge] would overpass [hash] in Data
        // Roundabout configurations of ≈30 nodes upward (data volumes
        // ≳100 GB)".
        let crossover = crossover_ring_size(&model(), &RingConfig::paper(6), PER_HOST, 128)
            .expect("a crossover must exist");
        assert!(
            (15..=60).contains(&crossover),
            "crossover at {crossover} nodes, expected ≈30"
        );
        // Sanity: ~100 GB total volume at the crossover (R + S, 12 B/tuple).
        let volume_gb = 2.0 * (crossover * PER_HOST) as f64 * 12.0 / 1e9;
        assert!((40.0..200.0).contains(&volume_gb), "volume {volume_gb} GB");
    }

    #[test]
    fn advice_rotates_the_smaller_side() {
        let a = advise(
            &model(),
            &RingConfig::paper(6),
            1_000_000,
            100_000,
            1_000_000,
        );
        assert!(a.rotate_s);
        let b = advise(
            &model(),
            &RingConfig::paper(6),
            100_000,
            1_000_000,
            1_000_000,
        );
        assert!(!b.rotate_s);
    }

    #[test]
    fn advice_prefers_hash_on_small_rings() {
        let a = advise(
            &model(),
            &RingConfig::paper(6),
            6 * PER_HOST,
            6 * PER_HOST,
            6 * PER_HOST,
        );
        assert!(
            !a.prefer_sort_merge,
            "6 nodes should still favor hash (§V-E)"
        );
    }

    #[test]
    fn prediction_total_sums_phases() {
        let m = model();
        let p = predict(
            &m,
            &RingConfig::paper(4),
            &Algorithm::SortMerge,
            &Workload::uniform(1_000_000, 1_000_000, 1_000_000),
        );
        assert_eq!(p.total(), p.setup + p.join + p.sync);
    }

    #[test]
    fn workload_from_data_uses_exact_matches() {
        use relation::GenSpec;
        let r = GenSpec::uniform(2_000, 1).generate();
        let s = GenSpec::uniform(2_000, 2).generate();
        let w = Workload::from_data(&r, &s, 4);
        assert_eq!(w.rotating_tuples, 2_000);
        assert_eq!(w.expected_matches, relation::estimate_equi_matches(&r, &s));
    }

    #[test]
    fn advise_from_data_matches_advise_on_uniform_inputs() {
        use relation::GenSpec;
        let r = GenSpec::uniform(40_000, 3).generate();
        let s = GenSpec::uniform(10_000, 4).generate();
        let config = RingConfig::paper(6);
        let a = advise_from_data(&model(), &config, &r, &s);
        assert!(a.rotate_s, "the smaller concrete side must rotate");
    }

    #[test]
    fn single_host_has_no_sync() {
        let p = predict(
            &model(),
            &RingConfig::paper(1),
            &Algorithm::partitioned_hash(),
            &Workload::uniform(1_000_000, 1_000_000, 1_000_000),
        );
        assert_eq!(p.sync, SimDuration::ZERO);
    }

    #[test]
    fn quiet_plan_predicts_the_baseline() {
        let m = model();
        let config = RingConfig::paper(6);
        let w = Workload::uniform(6 * PER_HOST, 6 * PER_HOST, 6 * PER_HOST);
        let alg = Algorithm::partitioned_hash();
        let base = predict(&m, &config, &alg, &w);
        let quiet = predict_degraded(&m, &config, &alg, &w, &FaultPlan::seeded(9));
        assert_eq!(quiet, base, "no faults, no degradation");
    }

    #[test]
    fn stragglers_stretch_the_join_phase() {
        let m = model();
        let config = RingConfig::paper(6);
        let w = Workload::uniform(6 * PER_HOST, 6 * PER_HOST, 6 * PER_HOST);
        let alg = Algorithm::partitioned_hash();
        let base = predict(&m, &config, &alg, &w);
        let plan = FaultPlan::seeded(9).slow_host(HostId(1), 0.5);
        let slow = predict_degraded(&m, &config, &alg, &w, &plan);
        let ratio = slow.join.as_secs_f64() / base.join.as_secs_f64();
        assert!(
            (1.9..2.1).contains(&ratio),
            "half speed doubles the join, got {ratio}"
        );
        assert_eq!(slow.setup, base.setup, "stragglers do not touch setup");
    }

    #[test]
    fn lossy_links_inflate_sync() {
        let m = model();
        let config = RingConfig::paper(6);
        let w = Workload::uniform(6 * PER_HOST, 6 * PER_HOST, 6 * PER_HOST);
        let alg = Algorithm::SortMerge;
        let base = predict(&m, &config, &alg, &w);
        let plan = FaultPlan::seeded(11).lossy_link(HostId(2), 0.3);
        let lossy = predict_degraded(&m, &config, &alg, &w, &plan);
        assert!(
            lossy.sync > base.sync,
            "retransmissions must surface as waiting"
        );
        assert_eq!(lossy.join, base.join, "losses cost wire time, not compute");
    }

    #[test]
    fn a_pause_adds_its_window_to_sync() {
        use simnet::time::SimTime;
        let m = model();
        let config = RingConfig::paper(6);
        let w = Workload::uniform(6 * PER_HOST, 6 * PER_HOST, 6 * PER_HOST);
        let alg = Algorithm::partitioned_hash();
        let base = predict(&m, &config, &alg, &w);
        let plan = FaultPlan::seeded(5).pause_host(
            HostId(2),
            SimTime::ZERO + SimDuration::from_millis(10),
            SimDuration::from_millis(50),
        );
        let paused = predict_degraded(&m, &config, &alg, &w, &plan);
        assert_eq!(paused.sync, base.sync + SimDuration::from_millis(50));
        assert_eq!(paused.join, base.join, "a pause is a stall, not extra work");
    }

    #[test]
    fn quiet_rescale_predicts_the_baseline() {
        let m = model();
        let config = RingConfig::paper(6);
        let w = Workload::uniform(6 * PER_HOST, 6 * PER_HOST, 6 * PER_HOST);
        let alg = Algorithm::partitioned_hash();
        let base = predict(&m, &config, &alg, &w);
        let quiet = predict_rescale(&m, &config, &alg, &w, &RescalePlan::seeded(9));
        assert_eq!(quiet, base, "no transitions, no pause term");
    }

    #[test]
    fn a_drain_adds_a_pause_term_but_no_detection_ladder() {
        use simnet::time::SimTime;
        let m = model();
        let config = RingConfig::paper(6);
        let w = Workload::uniform(6 * PER_HOST, 6 * PER_HOST, 6 * PER_HOST);
        let alg = Algorithm::partitioned_hash();
        let base = predict(&m, &config, &alg, &w);
        let at = SimTime::ZERO + SimDuration::from_secs_f64(1.0);
        let drained = predict_rescale(
            &m,
            &config,
            &alg,
            &w,
            &RescalePlan::seeded(9).drain_host(HostId(4), at),
        );
        assert!(drained.sync > base.sync, "the handoff rebuild stalls");
        assert!(drained.join > base.join, "survivors carry the tail");
        assert_eq!(drained.setup, base.setup, "drains do not touch setup");
        // The planned departure must be predicted cheaper than the crash
        // of the same host: no escalating detection ladder.
        let crashed = predict_degraded(
            &m,
            &config,
            &alg,
            &w,
            &FaultPlan::seeded(9).crash_host(HostId(4), at),
        );
        assert!(
            drained.sync < crashed.sync,
            "drain sync {} must beat crash sync {}",
            drained.sync,
            crashed.sync
        );
        assert!(drained.total() < crashed.total());
    }

    #[test]
    fn a_late_join_prices_the_smaller_initial_ring() {
        use simnet::time::SimTime;
        let m = model();
        let config = RingConfig::paper(6);
        let w = Workload::uniform(6 * PER_HOST, 6 * PER_HOST, 6 * PER_HOST);
        let alg = Algorithm::partitioned_hash();
        let base = predict(&m, &config, &alg, &w);
        let at = SimTime::ZERO + SimDuration::from_secs_f64(1.0);
        let grown = predict_rescale(
            &m,
            &config,
            &alg,
            &w,
            &RescalePlan::seeded(9).join_host(HostId(5), at),
        );
        assert!(
            grown.setup > base.setup,
            "five initial members carry six hosts' setup"
        );
        assert!(grown.sync > base.sync, "activation hands off a role");
        // The five-member setup is what predict() gives a five-host ring
        // of the same total volume.
        let five = predict(&m, &RingConfig { hosts: 5, ..config }, &alg, &w);
        assert_eq!(grown.setup, five.setup);
    }

    #[test]
    fn a_crash_adds_detection_takeover_and_extra_join_work() {
        use simnet::time::SimTime;
        let m = model();
        let config = RingConfig::paper(6);
        let w = Workload::uniform(6 * PER_HOST, 6 * PER_HOST, 6 * PER_HOST);
        let alg = Algorithm::partitioned_hash();
        let base = predict(&m, &config, &alg, &w);
        let plan = FaultPlan::seeded(3)
            .crash_host(HostId(4), SimTime::ZERO + SimDuration::from_millis(10));
        let degraded = predict_degraded(&m, &config, &alg, &w, &plan);
        assert!(
            degraded.sync > base.sync,
            "detection ladder + takeover setup"
        );
        let ratio = degraded.join.as_secs_f64() / base.join.as_secs_f64();
        assert!(
            (1.15..1.25).contains(&ratio),
            "five survivors carry six roles (6/5 = 1.2), got {ratio}"
        );
        // The detection ladder alone is a hard lower bound on the extra sync.
        let ladder = config.ack_timeout * ((1u64 << (config.max_retransmits + 1)) - 1);
        assert!(degraded.sync >= base.sync + ladder);
    }
}
