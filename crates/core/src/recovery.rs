//! Elasticity and failure handling (§II-C, §VII).
//!
//! The Data Roundabout's simplicity is what makes it elastic: "a Data
//! Roundabout system can trivially be extended or shrunken … any failing
//! node can easily be replaced by another machine (or its role can be
//! taken over by some other node in the ring)". Because data placement
//! carries no workload knowledge, reacting to membership changes is pure
//! repartitioning:
//!
//! * [`absorb_host`] — a host leaves (or fails before the join starts);
//!   its stationary share is taken over by its ring successor;
//! * [`takeover`] — mid-revolution variant: the orphaned share itself,
//!   handed to the survivor that heals the ring around a crash;
//! * [`rebalance`] — re-spread all shares evenly over a new ring size
//!   (grow or shrink), the planned-elasticity path.
//!
//! All of these return typed [`RecoveryError`]s instead of panicking:
//! recovery code runs exactly when the system is already degraded, and a
//! recovery routine that aborts the process turns a survivable fault into
//! an outage.

use relation::Relation;

/// Why a recovery action could not be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryError {
    /// The failed host index does not exist in the partition list.
    HostOutOfRange {
        /// The host index that was claimed to have failed.
        failed: usize,
        /// Number of hosts actually in the ring.
        hosts: usize,
    },
    /// The requested action would leave the ring without any host.
    EmptyRing,
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::HostOutOfRange { failed, hosts } => {
                write!(f, "host {failed} out of range ({hosts} hosts)")
            }
            RecoveryError::EmptyRing => {
                write!(f, "cannot remove the only host in the ring")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Removes `failed` from a per-host partition list, merging its share into
/// its ring successor (the paper's "role taken over by some other node").
/// Returns the new partition list, one entry shorter.
///
/// # Errors
///
/// [`RecoveryError::HostOutOfRange`] if `failed` is not a valid host and
/// [`RecoveryError::EmptyRing`] if the ring would become empty.
pub fn absorb_host(
    partitions: Vec<Relation>,
    failed: usize,
) -> Result<Vec<Relation>, RecoveryError> {
    if failed >= partitions.len() {
        return Err(RecoveryError::HostOutOfRange {
            failed,
            hosts: partitions.len(),
        });
    }
    if partitions.len() == 1 {
        return Err(RecoveryError::EmptyRing);
    }
    let successor = (failed + 1) % partitions.len();
    let mut out = Vec::with_capacity(partitions.len() - 1);
    let mut orphan = Relation::new();
    for (i, part) in partitions.into_iter().enumerate() {
        if i == failed {
            orphan = part;
        } else {
            out.push((i, part));
        }
    }
    for (i, part) in &mut out {
        if *i == successor {
            part.extend_from(&orphan);
        }
    }
    Ok(out.into_iter().map(|(_, part)| part).collect())
}

/// The mid-revolution takeover: returns a copy of the stationary share
/// orphaned by `failed`, for the ring survivor that absorbs the dead
/// host's role while the rotation is still in progress. Unlike
/// [`absorb_host`] this does not reshape the partition list — during ring
/// healing the logical roles keep their identities (the exactly-once
/// ledger is per role), only their placement changes.
///
/// # Errors
///
/// [`RecoveryError::HostOutOfRange`] if `failed` is not a valid host and
/// [`RecoveryError::EmptyRing`] if there is no other host left to take
/// the share over.
pub fn takeover(partitions: &[Relation], failed: usize) -> Result<Relation, RecoveryError> {
    if partitions.len() == 1 && failed < partitions.len() {
        return Err(RecoveryError::EmptyRing);
    }
    partitions
        .get(failed)
        .cloned()
        .ok_or(RecoveryError::HostOutOfRange {
            failed,
            hosts: partitions.len(),
        })
}

/// Re-spreads the union of `partitions` evenly over `new_hosts` hosts —
/// growing or shrinking the ring "as application workloads demand" (§VII).
///
/// # Errors
///
/// [`RecoveryError::EmptyRing`] if `new_hosts` is zero.
pub fn rebalance(
    partitions: &[Relation],
    new_hosts: usize,
) -> Result<Vec<Relation>, RecoveryError> {
    if new_hosts == 0 {
        return Err(RecoveryError::EmptyRing);
    }
    let mut all = Relation::new();
    for p in partitions {
        all.extend_from(p);
    }
    Ok(all.split_even(new_hosts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{relation_checksum, GenSpec};

    fn parts() -> Vec<Relation> {
        GenSpec::uniform(6_000, 1).generate().split_even(4)
    }

    #[test]
    fn absorb_preserves_all_tuples() {
        let original = parts();
        let before: usize = original.iter().map(Relation::len).sum();
        let whole: Relation = {
            let mut r = Relation::new();
            for p in &original {
                r.extend_from(p);
            }
            r
        };
        let after = absorb_host(original, 2).unwrap();
        assert_eq!(after.len(), 3);
        assert_eq!(after.iter().map(Relation::len).sum::<usize>(), before);
        let mut merged = Relation::new();
        for p in &after {
            merged.extend_from(p);
        }
        assert_eq!(relation_checksum(&merged), relation_checksum(&whole));
    }

    #[test]
    fn successor_takes_over_the_share() {
        let original = parts();
        let failed_len = original[1].len();
        let successor_len = original[2].len();
        let after = absorb_host(original, 1).unwrap();
        // After removal, index 1 of the new list is the old host 2.
        assert_eq!(after[1].len(), successor_len + failed_len);
    }

    #[test]
    fn last_host_wraps_to_first() {
        let original = parts();
        let failed_len = original[3].len();
        let first_len = original[0].len();
        let after = absorb_host(original, 3).unwrap();
        assert_eq!(after[0].len(), first_len + failed_len);
    }

    #[test]
    fn cannot_empty_the_ring() {
        let single = vec![GenSpec::uniform(10, 0).generate()];
        assert_eq!(absorb_host(single, 0), Err(RecoveryError::EmptyRing));
    }

    #[test]
    fn out_of_range_host_is_a_typed_error() {
        let err = absorb_host(parts(), 9).unwrap_err();
        assert_eq!(
            err,
            RecoveryError::HostOutOfRange {
                failed: 9,
                hosts: 4
            }
        );
        assert!(err.to_string().contains("host 9 out of range"));
    }

    #[test]
    fn takeover_returns_the_orphaned_share() {
        let original = parts();
        let share = takeover(&original, 2).unwrap();
        assert_eq!(
            relation_checksum(&share),
            relation_checksum(&original[2]),
            "the survivor receives exactly the dead host's share"
        );
        assert_eq!(takeover(&original[..1], 0), Err(RecoveryError::EmptyRing));
        assert!(matches!(
            takeover(&original, 4),
            Err(RecoveryError::HostOutOfRange {
                failed: 4,
                hosts: 4
            })
        ));
    }

    #[test]
    fn rebalance_grows_and_shrinks_evenly() {
        let original = parts();
        let total: usize = original.iter().map(Relation::len).sum();
        for new_hosts in [1, 2, 6, 9] {
            let re = rebalance(&original, new_hosts).unwrap();
            assert_eq!(re.len(), new_hosts);
            assert_eq!(re.iter().map(Relation::len).sum::<usize>(), total);
            let max = re.iter().map(Relation::len).max().unwrap();
            let min = re.iter().map(Relation::len).min().unwrap();
            assert!(max - min <= 1, "rebalance must be even");
        }
    }

    #[test]
    fn rebalance_to_zero_hosts_is_rejected() {
        assert_eq!(rebalance(&parts(), 0), Err(RecoveryError::EmptyRing));
    }
}
