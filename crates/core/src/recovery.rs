//! Elasticity and failure handling (§II-C, §VII).
//!
//! The Data Roundabout's simplicity is what makes it elastic: "a Data
//! Roundabout system can trivially be extended or shrunken … any failing
//! node can easily be replaced by another machine (or its role can be
//! taken over by some other node in the ring)". Because data placement
//! carries no workload knowledge, reacting to membership changes is pure
//! repartitioning:
//!
//! * [`absorb_host`] — a host leaves (or fails before the join starts);
//!   its stationary share is taken over by its ring successor;
//! * [`rebalance`] — re-spread all shares evenly over a new ring size
//!   (grow or shrink), the planned-elasticity path.

use relation::Relation;

/// Removes `failed` from a per-host partition list, merging its share into
/// its ring successor (the paper's "role taken over by some other node").
/// Returns the new partition list, one entry shorter.
///
/// # Panics
///
/// Panics if `failed` is out of range or the ring would become empty.
pub fn absorb_host(partitions: Vec<Relation>, failed: usize) -> Vec<Relation> {
    assert!(
        failed < partitions.len(),
        "host {failed} out of range ({} hosts)",
        partitions.len()
    );
    assert!(
        partitions.len() > 1,
        "cannot remove the only host in the ring"
    );
    let successor = (failed + 1) % partitions.len();
    let mut out = Vec::with_capacity(partitions.len() - 1);
    let mut orphan = None;
    for (i, part) in partitions.into_iter().enumerate() {
        if i == failed {
            orphan = Some(part);
        } else {
            out.push((i, part));
        }
    }
    let orphan = orphan.expect("failed index checked in range");
    for (i, part) in &mut out {
        if *i == successor {
            part.extend_from(&orphan);
        }
    }
    out.into_iter().map(|(_, part)| part).collect()
}

/// Re-spreads the union of `partitions` evenly over `new_hosts` hosts —
/// growing or shrinking the ring "as application workloads demand" (§VII).
///
/// # Panics
///
/// Panics if `new_hosts` is zero.
pub fn rebalance(partitions: &[Relation], new_hosts: usize) -> Vec<Relation> {
    assert!(new_hosts > 0, "a ring needs at least one host");
    let mut all = Relation::new();
    for p in partitions {
        all.extend_from(p);
    }
    all.split_even(new_hosts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{relation_checksum, GenSpec};

    fn parts() -> Vec<Relation> {
        GenSpec::uniform(6_000, 1).generate().split_even(4)
    }

    #[test]
    fn absorb_preserves_all_tuples() {
        let original = parts();
        let before: usize = original.iter().map(Relation::len).sum();
        let whole: Relation = {
            let mut r = Relation::new();
            for p in &original {
                r.extend_from(p);
            }
            r
        };
        let after = absorb_host(original, 2);
        assert_eq!(after.len(), 3);
        assert_eq!(after.iter().map(Relation::len).sum::<usize>(), before);
        let mut merged = Relation::new();
        for p in &after {
            merged.extend_from(p);
        }
        assert_eq!(relation_checksum(&merged), relation_checksum(&whole));
    }

    #[test]
    fn successor_takes_over_the_share() {
        let original = parts();
        let failed_len = original[1].len();
        let successor_len = original[2].len();
        let after = absorb_host(original, 1);
        // After removal, index 1 of the new list is the old host 2.
        assert_eq!(after[1].len(), successor_len + failed_len);
    }

    #[test]
    fn last_host_wraps_to_first() {
        let original = parts();
        let failed_len = original[3].len();
        let first_len = original[0].len();
        let after = absorb_host(original, 3);
        assert_eq!(after[0].len(), first_len + failed_len);
    }

    #[test]
    #[should_panic(expected = "only host")]
    fn cannot_empty_the_ring() {
        let single = vec![GenSpec::uniform(10, 0).generate()];
        let _ = absorb_host(single, 0);
    }

    #[test]
    fn rebalance_grows_and_shrinks_evenly() {
        let original = parts();
        let total: usize = original.iter().map(Relation::len).sum();
        for new_hosts in [1, 2, 6, 9] {
            let re = rebalance(&original, new_hosts);
            assert_eq!(re.len(), new_hosts);
            assert_eq!(re.iter().map(Relation::len).sum::<usize>(), total);
            let max = re.iter().map(Relation::len).max().unwrap();
            let min = re.iter().map(Relation::len).min().unwrap();
            assert!(max - min <= 1, "rebalance must be even");
        }
    }
}
