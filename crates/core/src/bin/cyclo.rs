//! `cyclo` — run a cyclo-join from the command line.
//!
//! ```text
//! cargo run --release -p cyclo-join --bin cyclo -- --hosts 6 --tuples 500000 --zipf 0.8
//! ```
//!
//! Run with `--help` for the full flag list. Results are always verified
//! against a single-host reference join unless `--no-verify` is given.

use cyclo_join::{
    advise_from_data, reference_join, Algorithm, ComputeMode, CostModel, CycloJoin, HostId,
    JoinPredicate, MultiTenantJoin, RescalePlan, RingConfig, RotateSide,
};
use data_roundabout::render_timeline;
use relation::GenSpec;
use simnet::transport::TransportModel;
use simnet::{SimDuration, SimTime};

const HELP: &str = "\
cyclo — distributed joins on the Data Roundabout ring

USAGE:
    cyclo [OPTIONS]

OPTIONS:
    --hosts <N>          ring size (default 6)
    --tuples <N>         tuples per relation side (default 200000)
    --zipf <Z>           Zipf skew factor for the join keys (default: uniform)
    --algorithm <A>      hash | sort-merge | nested (default: auto)
    --band <DELTA>       band join |r.key - s.key| <= DELTA (default: equi)
    --transport <T>      rdma | tcp | toe — simulated cost model (default rdma)
    --backend <B>        sim | threads | tcp | reactor (default sim); `tcp`
                         runs over real loopback sockets, unlike the
                         simulated `--transport tcp` cost model; `reactor`
                         uses the same sockets from one event-loop thread
    --threads <N>        join threads per host, 1-4 (default 4)
    --buffers <N>        ring buffer elements per host (default 2)
    --fragments <N>      rotation units per host (default 4)
    --rotate <SIDE>      r | s | auto (default auto)
    --seed <N>           RNG seed (default 42)
    --tenants <N>        multiplex N independent queries over one shared
                         ring; every tenant gets its own R and S of
                         --tuples tuples and the CLI predicate, and the
                         run prints per-tenant results plus queries/s
    --max-active <N>     admission bound for multi-tenant runs: at most
                         N queries circulate at once, the rest queue in
                         deficit-round-robin order (default 2)
    --queries <FILE>     read tenant specs from FILE instead of
                         --tenants: one query per line as
                         \"ROTATING STATIONARY PREDICATE\" with
                         PREDICATE equi or band:DELTA; # starts a comment
    --rescale-plan <P>   planned membership schedule: comma-separated
                         join:HOST@TIME / drain:HOST@TIME entries, TIME
                         with an ns/us/ms/s suffix (bare numbers are ms),
                         e.g. \"join:5@2ms,drain:0@8ms\"; hosts named by
                         join: start as standbys outside the ring
                         (sim, tcp and reactor backends only)
    --handshake-timeout <D>  tcp/reactor mesh handshake deadline, D with an
                         ns/us/ms/s suffix, bare numbers ms (default 5s)
    --watchdog <D>       tcp/reactor stall watchdog — tear the ring down
                         after D without protocol progress (default 10s)
    --measured           wall-clock-measure real compute instead of modeling
    --threaded           alias for --backend threads
    --no-verify          skip the reference-join verification
    --trace <PATH>       write a Chrome trace-event JSON profile to PATH
                         (open in chrome://tracing or https://ui.perfetto.dev)
    --trace-text         print the transport event trace (simulated backend)
    --timeline           print an ASCII per-host timeline of the run
    --advise             print the cost model's plan advice before running
    -h, --help           show this help
";

/// Which ring backend executes the join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    /// Deterministic discrete-event simulation in virtual time.
    Sim,
    /// Real OS threads with bounded channels as buffer pools.
    Threads,
    /// Real loopback TCP sockets and kernel networking.
    Tcp,
    /// The same loopback sockets, driven by one readiness event loop
    /// instead of four blocking threads per host.
    Reactor,
}

/// One entry of a `--rescale-plan` schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RescaleEvent {
    /// A standby host enters the ring at the given virtual instant.
    Join { host: usize, at_nanos: u64 },
    /// A member hands its stationary roles off and leaves at the instant.
    Drain { host: usize, at_nanos: u64 },
}

/// Parsed command-line configuration.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    hosts: usize,
    tuples: usize,
    zipf: Option<f64>,
    algorithm: Option<Algorithm>,
    band: Option<u32>,
    transport: TransportModel,
    threads: usize,
    buffers: usize,
    fragments: usize,
    rotate: RotateSide,
    seed: u64,
    tenants: usize,
    max_active: usize,
    queries: Option<String>,
    rescale: Vec<RescaleEvent>,
    handshake_timeout: Option<u64>,
    watchdog: Option<u64>,
    measured: bool,
    backend: Backend,
    verify: bool,
    trace: Option<String>,
    trace_text: bool,
    timeline: bool,
    advise: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            hosts: 6,
            tuples: 200_000,
            zipf: None,
            algorithm: None,
            band: None,
            transport: TransportModel::rdma(),
            threads: 4,
            buffers: 2,
            fragments: 4,
            rotate: RotateSide::Auto,
            seed: 42,
            tenants: 0,
            max_active: 2,
            queries: None,
            rescale: Vec::new(),
            handshake_timeout: None,
            watchdog: None,
            measured: false,
            backend: Backend::Sim,
            verify: true,
            trace: None,
            trace_text: false,
            timeline: false,
            advise: false,
        }
    }
}

/// Parses arguments; returns `Err` with a message for bad input, or
/// `Ok(None)` when help was requested.
fn parse_args<I: Iterator<Item = String>>(mut args: I) -> Result<Option<Options>, String> {
    let mut opts = Options::default();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--hosts" => opts.hosts = parse(&value("--hosts")?, "--hosts")?,
            "--tuples" => opts.tuples = parse(&value("--tuples")?, "--tuples")?,
            "--zipf" => opts.zipf = Some(parse(&value("--zipf")?, "--zipf")?),
            "--band" => opts.band = Some(parse(&value("--band")?, "--band")?),
            "--threads" => opts.threads = parse(&value("--threads")?, "--threads")?,
            "--buffers" => opts.buffers = parse(&value("--buffers")?, "--buffers")?,
            "--fragments" => opts.fragments = parse(&value("--fragments")?, "--fragments")?,
            "--seed" => opts.seed = parse(&value("--seed")?, "--seed")?,
            "--tenants" => opts.tenants = parse(&value("--tenants")?, "--tenants")?,
            "--max-active" => opts.max_active = parse(&value("--max-active")?, "--max-active")?,
            "--queries" => opts.queries = Some(value("--queries")?),
            "--rescale-plan" => opts.rescale = parse_rescale_plan(&value("--rescale-plan")?)?,
            "--handshake-timeout" => {
                opts.handshake_timeout = Some(parse_duration_flag(
                    &value("--handshake-timeout")?,
                    "--handshake-timeout",
                )?)
            }
            "--watchdog" => {
                opts.watchdog = Some(parse_duration_flag(&value("--watchdog")?, "--watchdog")?)
            }
            "--algorithm" => {
                opts.algorithm = Some(match value("--algorithm")?.as_str() {
                    "hash" => Algorithm::partitioned_hash(),
                    "sort-merge" => Algorithm::SortMerge,
                    "nested" => Algorithm::NestedLoops,
                    other => return Err(format!("unknown algorithm {other:?}")),
                })
            }
            "--transport" => {
                opts.transport = match value("--transport")?.as_str() {
                    "rdma" => TransportModel::rdma(),
                    "tcp" => TransportModel::kernel_tcp(),
                    "toe" => TransportModel::toe(),
                    other => return Err(format!("unknown transport {other:?}")),
                }
            }
            "--rotate" => {
                opts.rotate = match value("--rotate")?.as_str() {
                    "r" => RotateSide::R,
                    "s" => RotateSide::S,
                    "auto" => RotateSide::Auto,
                    other => return Err(format!("unknown rotation side {other:?}")),
                }
            }
            "--backend" => {
                opts.backend = match value("--backend")?.as_str() {
                    "sim" => Backend::Sim,
                    "threads" => Backend::Threads,
                    "tcp" => Backend::Tcp,
                    "reactor" => Backend::Reactor,
                    other => return Err(format!("unknown backend {other:?}")),
                }
            }
            "--measured" => opts.measured = true,
            "--threaded" => opts.backend = Backend::Threads,
            "--no-verify" => opts.verify = false,
            "--trace" => opts.trace = Some(value("--trace")?),
            "--trace-text" => opts.trace_text = true,
            "--timeline" => opts.timeline = true,
            "--advise" => opts.advise = true,
            other => return Err(format!("unknown option {other:?} (try --help)")),
        }
    }
    Ok(Some(opts))
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("invalid value {value:?} for {flag}"))
}

/// Parses a `--rescale-plan` spec: comma-separated `join:HOST@TIME` /
/// `drain:HOST@TIME` entries.
fn parse_rescale_plan(spec: &str) -> Result<Vec<RescaleEvent>, String> {
    let shape =
        |entry: &str| format!("rescale entry {entry:?} is not join:HOST@TIME or drain:HOST@TIME");
    let mut events = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (kind, schedule) = entry.split_once(':').ok_or_else(|| shape(entry))?;
        let (host, at) = schedule.split_once('@').ok_or_else(|| shape(entry))?;
        let host: usize = host
            .parse()
            .map_err(|_| format!("invalid host {host:?} in rescale entry {entry:?}"))?;
        let at_nanos = parse_instant(at)
            .ok_or_else(|| format!("invalid instant {at:?} in rescale entry {entry:?}"))?;
        events.push(match kind {
            "join" => RescaleEvent::Join { host, at_nanos },
            "drain" => RescaleEvent::Drain { host, at_nanos },
            other => return Err(format!("unknown rescale event {other:?} (join or drain)")),
        });
    }
    if events.is_empty() {
        return Err("--rescale-plan needs at least one join: or drain: entry".to_string());
    }
    Ok(events)
}

/// Parses a duration-valued flag through [`parse_instant`], rejecting
/// zero: the ring config validates positive timeouts anyway, but a CLI
/// error here names the flag instead of the config field.
fn parse_duration_flag(text: &str, flag: &str) -> Result<u64, String> {
    match parse_instant(text) {
        Some(0) => Err(format!("{flag} needs a positive duration, got {text:?}")),
        Some(nanos) => Ok(nanos),
        None => Err(format!("invalid duration {text:?} for {flag}")),
    }
}

/// Parses an instant like `250us`, `8ms` or `1s` into nanoseconds; bare
/// numbers are milliseconds.
fn parse_instant(text: &str) -> Option<u64> {
    let (digits, scale) = if let Some(d) = text.strip_suffix("ns") {
        (d, 1)
    } else if let Some(d) = text.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = text.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = text.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        (text, 1_000_000)
    };
    digits.parse::<u64>().ok()?.checked_mul(scale)
}

/// One tenant of a multi-tenant run: relation sizes and a predicate.
#[derive(Debug, Clone)]
struct TenantQuery {
    rotating: usize,
    stationary: usize,
    predicate: JoinPredicate,
}

/// Parses a `--queries` file: one `ROTATING STATIONARY PREDICATE` line
/// per tenant, blank lines and `#` comments ignored.
fn parse_queries_spec(text: &str) -> Result<Vec<TenantQuery>, String> {
    let mut queries = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let bad = || {
            format!(
                "line {}: expected ROTATING STATIONARY PREDICATE",
                number + 1
            )
        };
        let rotating: usize = fields.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let stationary: usize = fields.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let predicate = match fields.next().ok_or_else(bad)? {
            "equi" => JoinPredicate::Equi,
            spec => match spec.strip_prefix("band:").and_then(|d| d.parse().ok()) {
                Some(delta) => JoinPredicate::band(delta),
                None => {
                    return Err(format!(
                        "line {}: unknown predicate {spec:?} (equi or band:DELTA)",
                        number + 1
                    ))
                }
            },
        };
        if fields.next().is_some() {
            return Err(bad());
        }
        queries.push(TenantQuery {
            rotating,
            stationary,
            predicate,
        });
    }
    if queries.is_empty() {
        return Err("the queries file names no tenants".to_string());
    }
    Ok(queries)
}

/// Builds the ring configuration shared by single- and multi-query runs.
fn ring_config(opts: &Options) -> RingConfig {
    let mut config = RingConfig {
        hosts: opts.hosts,
        buffers_per_host: opts.buffers,
        join_threads: opts.threads,
        transport: opts.transport,
        ..RingConfig::paper(opts.hosts)
    };
    if let Some(nanos) = opts.handshake_timeout {
        config = config.with_handshake_timeout(SimDuration::from_nanos(nanos));
    }
    if let Some(nanos) = opts.watchdog {
        config = config.with_watchdog(SimDuration::from_nanos(nanos));
    }
    config
}

/// Runs `--tenants` / `--queries` mode: all tenants multiplexed over one
/// ring, verified tenant-by-tenant against reference joins.
fn run_multi_tenant(opts: &Options, config: RingConfig) {
    let specs = match &opts.queries {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(err) => {
                    eprintln!("error: could not read queries file {path}: {err}");
                    std::process::exit(2);
                }
            };
            match parse_queries_spec(&text) {
                Ok(specs) => specs,
                Err(message) => {
                    eprintln!("error: {path}: {message}");
                    std::process::exit(2);
                }
            }
        }
        None => {
            let predicate = match opts.band {
                Some(delta) => JoinPredicate::band(delta),
                None => JoinPredicate::Equi,
            };
            vec![
                TenantQuery {
                    rotating: opts.tuples,
                    stationary: opts.tuples,
                    predicate,
                };
                opts.tenants
            ]
        }
    };

    let gen = |tuples: usize, seed: u64| match opts.zipf {
        Some(z) => GenSpec::zipf(tuples, z, seed).generate(),
        None => GenSpec::uniform(tuples, seed).generate(),
    };
    let mut batch = MultiTenantJoin::new()
        .ring(config)
        .fragments_per_host(opts.fragments)
        .max_active(opts.max_active);
    let mut inputs = Vec::with_capacity(specs.len());
    for (q, spec) in specs.iter().enumerate() {
        let seed = opts.seed.wrapping_add(2 * q as u64);
        let r = gen(spec.rotating, seed);
        let s = gen(spec.stationary, seed.wrapping_add(1));
        inputs.push((r.clone(), s.clone(), spec.predicate.clone()));
        batch = batch.tenant(r, s, spec.predicate.clone());
    }
    if opts.measured {
        batch = batch.compute(ComputeMode::Measured);
    }

    let report = match opts.backend {
        Backend::Sim => batch.run(),
        Backend::Threads => batch.run_threaded(),
        Backend::Tcp => batch.run_tcp(),
        Backend::Reactor => batch.run_reactor(),
    };
    let report = match report {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    };
    print!("{report}");
    if opts.timeline {
        print!("{}", render_timeline(&report.ring, 64));
    }
    if opts.verify {
        for (tenant, (r, s, predicate)) in report.tenants.iter().zip(&inputs) {
            let reference = reference_join(r, s, predicate);
            if tenant.count != reference.count || tenant.checksum != reference.checksum {
                eprintln!(
                    "VERIFICATION FAILED: tenant {} got {} matches, reference has {}",
                    tenant.tenant, tenant.count, reference.count
                );
                std::process::exit(1);
            }
        }
        println!(
            "verified: all {} tenants equal their single-host reference joins",
            report.tenants.len()
        );
    }
}

fn main() {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{HELP}");
            return;
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run with --help for usage");
            std::process::exit(2);
        }
    };

    if opts.tenants > 0 || opts.queries.is_some() {
        run_multi_tenant(&opts, ring_config(&opts));
        return;
    }

    let gen = |seed: u64| match opts.zipf {
        Some(z) => GenSpec::zipf(opts.tuples, z, seed).generate(),
        None => GenSpec::uniform(opts.tuples, seed).generate(),
    };
    let r = gen(opts.seed);
    let s = gen(opts.seed.wrapping_add(1));
    let predicate = match opts.band {
        Some(delta) => JoinPredicate::band(delta),
        None => JoinPredicate::Equi,
    };
    let reference = opts.verify.then(|| reference_join(&r, &s, &predicate));

    if opts.advise {
        let advice = advise_from_data(
            &CostModel::paper_xeon(),
            &RingConfig::paper(opts.hosts),
            &r,
            &s,
        );
        println!(
            "advice: rotate {}, prefer {}",
            if advice.rotate_s { "S (smaller)" } else { "R" },
            if advice.prefer_sort_merge {
                "sort-merge"
            } else {
                "partitioned-hash"
            }
        );
    }

    let config = ring_config(&opts);
    let mut plan = CycloJoin::new(r, s)
        .predicate(predicate)
        .ring(config)
        .fragments_per_host(opts.fragments)
        .rotate(opts.rotate)
        .trace(opts.trace.is_some() || opts.trace_text);
    if let Some(algorithm) = opts.algorithm {
        plan = plan.algorithm(algorithm);
    }
    if opts.measured {
        plan = plan.compute(ComputeMode::Measured);
    }
    if !opts.rescale.is_empty() {
        let mut schedule = RescalePlan::seeded(opts.seed);
        for event in &opts.rescale {
            schedule = match *event {
                RescaleEvent::Join { host, at_nanos } => {
                    schedule.join_host(HostId(host), SimTime::from_nanos(at_nanos))
                }
                RescaleEvent::Drain { host, at_nanos } => {
                    schedule.drain_host(HostId(host), SimTime::from_nanos(at_nanos))
                }
            };
        }
        plan = plan.rescale_plan(schedule);
    }

    let outcome = match opts.backend {
        Backend::Sim => plan.run_traced().map(|(r, t)| (r, Some(t))),
        Backend::Threads => plan.run_threaded().map(|r| (r, None)),
        Backend::Tcp => plan.run_tcp().map(|r| (r, None)),
        Backend::Reactor => plan.run_reactor().map(|r| (r, None)),
    };
    let (report, trace) = match outcome {
        Ok(pair) => pair,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    };

    print!("{}", report.render());
    if opts.timeline {
        print!("{}", render_timeline(&report.ring, 64));
    }
    if let Some(trace) = trace {
        if opts.trace_text {
            print!("{}", trace.render());
        }
    }
    if let Some(path) = &opts.trace {
        let summary = report.revolution_summary();
        if !summary.is_empty() {
            print!("{summary}");
        }
        if let Err(err) = std::fs::write(path, report.chrome_trace()) {
            eprintln!("error: could not write trace to {path}: {err}");
            std::process::exit(1);
        }
        println!("trace: wrote Chrome trace-event JSON to {path}");
    }
    if let Some(reference) = reference {
        if report.match_count() == reference.count && report.checksum() == reference.checksum {
            println!("verified: result equals the single-host reference join");
        } else {
            eprintln!(
                "VERIFICATION FAILED: got {} matches, reference has {}",
                report.match_count(),
                reference.count
            );
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(args: &[&str]) -> Options {
        parse_args(args.iter().map(|s| s.to_string()))
            .expect("parse should succeed")
            .expect("not a help invocation")
    }

    #[test]
    fn defaults_apply() {
        let opts = parse_ok(&[]);
        assert_eq!(opts, Options::default());
    }

    #[test]
    fn flags_are_parsed() {
        let opts = parse_ok(&[
            "--hosts",
            "3",
            "--tuples",
            "1000",
            "--zipf",
            "0.7",
            "--algorithm",
            "sort-merge",
            "--band",
            "2",
            "--transport",
            "tcp",
            "--backend",
            "tcp",
            "--threads",
            "2",
            "--handshake-timeout",
            "750ms",
            "--watchdog",
            "30s",
            "--rotate",
            "s",
            "--measured",
            "--no-verify",
            "--timeline",
            "--advise",
            "--trace",
            "out.json",
            "--trace-text",
        ]);
        assert_eq!(opts.hosts, 3);
        assert_eq!(opts.tuples, 1000);
        assert_eq!(opts.zipf, Some(0.7));
        assert_eq!(opts.band, Some(2));
        assert_eq!(opts.transport.name(), "TCP");
        assert_eq!(opts.backend, Backend::Tcp);
        assert_eq!(opts.threads, 2);
        assert_eq!(opts.handshake_timeout, Some(750_000_000));
        assert_eq!(opts.watchdog, Some(30_000_000_000));
        assert_eq!(opts.rotate, RotateSide::S);
        assert!(opts.measured);
        assert!(!opts.verify);
        assert!(opts.timeline);
        assert!(opts.advise);
        assert_eq!(opts.trace.as_deref(), Some("out.json"));
        assert!(opts.trace_text);
    }

    #[test]
    fn threaded_is_an_alias_for_backend_threads() {
        assert_eq!(parse_ok(&["--threaded"]).backend, Backend::Threads);
        assert_eq!(
            parse_ok(&["--backend", "threads"]).backend,
            Backend::Threads
        );
        assert_eq!(parse_ok(&[]).backend, Backend::Sim);
    }

    #[test]
    fn reactor_backend_is_parsed() {
        let opts = parse_ok(&["--backend", "reactor"]);
        assert_eq!(opts.backend, Backend::Reactor);
        // Timeout flags default to "leave the config's values alone".
        assert_eq!(opts.handshake_timeout, None);
        assert_eq!(opts.watchdog, None);
    }

    #[test]
    fn duration_flags_accept_every_instant_suffix() {
        assert_eq!(
            parse_ok(&["--watchdog", "4"]).watchdog,
            Some(4_000_000),
            "bare numbers are milliseconds"
        );
        assert_eq!(
            parse_ok(&["--handshake-timeout", "250us"]).handshake_timeout,
            Some(250_000)
        );
    }

    #[test]
    fn rescale_plans_are_parsed() {
        let opts = parse_ok(&["--rescale-plan", "join:5@2ms, drain:0@250us,"]);
        assert_eq!(
            opts.rescale,
            vec![
                RescaleEvent::Join {
                    host: 5,
                    at_nanos: 2_000_000
                },
                RescaleEvent::Drain {
                    host: 0,
                    at_nanos: 250_000
                },
            ]
        );
        // Bare numbers are milliseconds; s and ns suffixes work too.
        assert_eq!(
            parse_ok(&["--rescale-plan", "drain:1@4"]).rescale,
            vec![RescaleEvent::Drain {
                host: 1,
                at_nanos: 4_000_000
            }]
        );
        assert_eq!(parse_instant("1s"), Some(1_000_000_000));
        assert_eq!(parse_instant("10ns"), Some(10));
        assert_eq!(parse_instant("7us"), Some(7_000));
    }

    #[test]
    fn malformed_rescale_plans_are_rejected() {
        for spec in [
            "",
            "join:5",
            "join:@2ms",
            "join:x@2ms",
            "drain:1@",
            "drain:1@2min",
            "retire:1@2ms",
        ] {
            let args = ["--rescale-plan".to_string(), spec.to_string()];
            assert!(
                parse_args(args.into_iter()).is_err(),
                "{spec:?} should be rejected"
            );
        }
    }

    #[test]
    fn multi_tenant_flags_are_parsed() {
        let opts = parse_ok(&["--tenants", "4", "--max-active", "3"]);
        assert_eq!(opts.tenants, 4);
        assert_eq!(opts.max_active, 3);
        assert_eq!(opts.queries, None);
        let opts = parse_ok(&["--queries", "plan.txt"]);
        assert_eq!(opts.queries.as_deref(), Some("plan.txt"));
        // Single-query mode stays the default.
        let opts = parse_ok(&[]);
        assert_eq!(opts.tenants, 0);
        assert_eq!(opts.max_active, 2);
    }

    #[test]
    fn queries_files_are_parsed() {
        let specs =
            parse_queries_spec("# two tenants\n5000 4000 equi\n\n3000 3000 band:2  # banded\n")
                .expect("valid spec");
        assert_eq!(specs.len(), 2);
        assert_eq!((specs[0].rotating, specs[0].stationary), (5000, 4000));
        assert!(matches!(specs[0].predicate, JoinPredicate::Equi));
        assert_eq!((specs[1].rotating, specs[1].stationary), (3000, 3000));
        assert!(matches!(
            specs[1].predicate,
            JoinPredicate::Band { delta: 2 }
        ));
        for bad in [
            "",
            "# only comments\n",
            "5000 equi",
            "5000 4000 theta",
            "5000 4000 band:x",
            "5000 4000 equi extra",
        ] {
            assert!(
                parse_queries_spec(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn help_short_circuits() {
        let parsed = parse_args(["--help"].iter().map(|s| s.to_string())).unwrap();
        assert!(parsed.is_none());
    }

    #[test]
    fn bad_values_are_rejected() {
        for args in [
            vec!["--hosts", "many"],
            vec!["--algorithm", "bogosort"],
            vec!["--transport", "carrier-pigeon"],
            vec!["--backend", "bogus"],
            vec!["--rotate", "both"],
            vec!["--handshake-timeout", "soon"],
            vec!["--handshake-timeout", "0s"],
            vec!["--watchdog", "never"],
            vec!["--watchdog", "0"],
            vec!["--hosts"],
            vec!["--trace"],
            vec!["--frobnicate"],
        ] {
            assert!(
                parse_args(args.iter().map(|s| s.to_string())).is_err(),
                "{args:?} should be rejected"
            );
        }
    }
}
