//! Concurrent queries on a shared rotation — the Data Cyclotron direction.
//!
//! The broader project behind the paper (§I, §VII) is the **Data
//! Cyclotron**: keep the hot set of the database continuously circulating
//! and let *queries* — plural — remain local to nodes and "pick necessary
//! pieces of data as they flow by". This module implements that
//! generalization of cyclo-join: one relation rotates **once**, and any
//! number of independent join queries (each with its own stationary
//! relation, predicate and algorithm) consume the same stream of
//! fragments as it passes their hosts.
//!
//! Sharing the rotation changes the §IV-D trade-off: fragments travel in
//! *raw* form (different queries need different reorganizations), and
//! each visit prepares the fragment at most once per required format —
//! the preparation is amortized across the queries of the visit instead
//! of across the revolution. The payoff is network volume: `k` queries
//! cost one revolution instead of `k`.
//!
//! ```
//! use cyclo_join::concurrent::ConcurrentJoins;
//! use cyclo_join::JoinPredicate;
//! use relation::GenSpec;
//!
//! # fn main() -> Result<(), cyclo_join::PlanError> {
//! let hot = GenSpec::uniform(30_000, 1).generate();
//! let report = ConcurrentJoins::new(hot)
//!     .query(GenSpec::uniform(10_000, 2).generate(), JoinPredicate::Equi)
//!     .query(GenSpec::uniform(10_000, 3).generate(), JoinPredicate::band(1))
//!     .hosts(4)
//!     .run()?;
//! assert_eq!(report.queries.len(), 2);
//! # Ok(())
//! # }
//! ```

use data_roundabout::{HostId, RingApp, RingConfig, RingMetrics, SimRing};
use mem_joins::{
    Algorithm, JoinCollector, JoinPredicate, OutputMode, PreparedFragment, StationaryState,
};
use relation::{Checksum, Relation};
use simnet::time::SimDuration;

use crate::compute::ComputeMode;
use crate::plan::PlanError;

/// One query of a concurrent batch.
#[derive(Debug, Clone)]
struct QuerySpec {
    stationary: Relation,
    predicate: JoinPredicate,
    algorithm: Algorithm,
}

/// A batch of joins sharing one rotating relation.
#[derive(Debug, Clone)]
pub struct ConcurrentJoins {
    rotating: Relation,
    queries: Vec<QuerySpec>,
    config: RingConfig,
    fragments_per_host: usize,
    compute: ComputeMode,
    output: OutputMode,
}

impl ConcurrentJoins {
    /// Starts a batch over the rotating (hot-set) relation.
    pub fn new(rotating: Relation) -> Self {
        ConcurrentJoins {
            rotating,
            queries: Vec::new(),
            config: RingConfig::paper(6),
            fragments_per_host: 4,
            compute: ComputeMode::modeled(),
            output: OutputMode::Aggregate,
        }
    }

    /// Adds a query `rotating ⋈ stationary` with the fastest algorithm
    /// supporting `predicate`.
    pub fn query(self, stationary: Relation, predicate: JoinPredicate) -> Self {
        let algorithm = Algorithm::for_predicate(&predicate);
        self.query_with(stationary, predicate, algorithm)
    }

    /// Adds a query with an explicit algorithm.
    pub fn query_with(
        mut self,
        stationary: Relation,
        predicate: JoinPredicate,
        algorithm: Algorithm,
    ) -> Self {
        self.queries.push(QuerySpec {
            stationary,
            predicate,
            algorithm,
        });
        self
    }

    /// Replaces the ring configuration.
    pub fn ring(mut self, config: RingConfig) -> Self {
        self.config = config;
        self
    }

    /// Shortcut: the paper ring with `n` hosts.
    pub fn hosts(mut self, n: usize) -> Self {
        self.config.hosts = n;
        self
    }

    /// Rotation units per host (default 4).
    pub fn fragments_per_host(mut self, fragments: usize) -> Self {
        self.fragments_per_host = fragments;
        self
    }

    /// Compute pricing mode (default: deterministic model).
    pub fn compute(mut self, compute: ComputeMode) -> Self {
        self.compute = compute;
        self
    }

    /// Output mode for every query's collector.
    pub fn output(mut self, output: OutputMode) -> Self {
        self.output = output;
        self
    }

    /// Runs the whole batch in a single revolution on the simulated backend.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the ring configuration is invalid, no
    /// query was added, or a query's algorithm cannot evaluate its
    /// predicate.
    pub fn run(&self) -> Result<ConcurrentReport, PlanError> {
        self.config.validate().map_err(PlanError::InvalidConfig)?;
        if self.fragments_per_host == 0 {
            return Err(PlanError::NoFragments);
        }
        if self.queries.is_empty() {
            return Err(PlanError::UnsupportedPredicate {
                algorithm: "none",
                predicate: "batch contains no queries".to_string(),
            });
        }
        for q in &self.queries {
            if !q.algorithm.supports(&q.predicate) {
                return Err(PlanError::UnsupportedPredicate {
                    algorithm: q.algorithm.name(),
                    predicate: q.predicate.to_string(),
                });
            }
        }
        let hosts = self.config.hosts;
        let fragments: Vec<Vec<Relation>> = self
            .rotating
            .split_even(hosts)
            .into_iter()
            .map(|share| share.split_even(self.fragments_per_host))
            .collect();

        let queries: Vec<QueryState> = self
            .queries
            .iter()
            .map(|q| {
                let stationary_parts = q.stationary.split_even(hosts);
                let bits = q.algorithm.ring_radix_bits(
                    stationary_parts
                        .iter()
                        .map(Relation::len)
                        .max()
                        .unwrap_or(1),
                );
                QueryState {
                    algorithm: q.algorithm,
                    predicate: q.predicate.clone(),
                    bits,
                    stationary_inputs: stationary_parts.into_iter().map(Some).collect(),
                    states: (0..hosts).map(|_| None).collect(),
                    collectors: (0..hosts)
                        .map(|_| JoinCollector::new(self.output))
                        .collect(),
                }
            })
            .collect();

        let app = MultiQueryApp {
            queries,
            threads: self.config.join_threads,
            compute: self.compute,
        };
        let outcome = SimRing::new(self.config, fragments, app).run();
        let queries = outcome
            .app
            .queries
            .into_iter()
            .map(|q| {
                let count = q.collectors.iter().map(JoinCollector::count).sum();
                let checksum = q
                    .collectors
                    .iter()
                    .map(JoinCollector::checksum)
                    .fold(Checksum::new(), |acc, c| acc.combine(&c));
                QueryOutcome {
                    algorithm: q.algorithm.name(),
                    count,
                    checksum,
                    collectors: q.collectors,
                }
            })
            .collect();
        Ok(ConcurrentReport {
            ring: outcome.metrics,
            queries,
        })
    }
}

/// Per-query execution state inside the shared rotation.
struct QueryState {
    algorithm: Algorithm,
    predicate: JoinPredicate,
    bits: u32,
    stationary_inputs: Vec<Option<Relation>>,
    states: Vec<Option<StationaryState>>,
    collectors: Vec<JoinCollector>,
}

/// The [`RingApp`] running every query of the batch against each buffer.
struct MultiQueryApp {
    queries: Vec<QueryState>,
    threads: usize,
    compute: ComputeMode,
}

impl RingApp<Relation> for MultiQueryApp {
    fn setup(&mut self, host: HostId) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for q in &mut self.queries {
            // `RingApp::setup` has no error channel: a repeated or
            // out-of-range setup is a driver bug, surfaced by the
            // debug_assert and absorbed as a no-op in release.
            let Some(s) = q.stationary_inputs.get_mut(host.0).and_then(Option::take) else {
                debug_assert!(false, "setup called twice for host {}", host.0);
                continue;
            };
            let (state, d) = self
                .compute
                .setup_stationary(&q.algorithm, &s, q.bits, self.threads);
            if let Some(slot) = q.states.get_mut(host.0) {
                *slot = Some(state);
            }
            total += d;
        }
        total
    }

    fn process(
        &mut self,
        host: HostId,
        _now: simnet::time::SimTime,
        fragment: &Relation,
    ) -> SimDuration {
        let mut total = SimDuration::ZERO;
        // Prepare each required format at most once per visit, shared by
        // every query that needs it.
        let mut sorted: Option<PreparedFragment> = None;
        let mut partitioned: Vec<(u32, PreparedFragment)> = Vec::new();
        let plain = PreparedFragment::Plain(fragment.clone());

        for q in &mut self.queries {
            let prepared: &PreparedFragment = match q.algorithm {
                Algorithm::PartitionedHash(_) => {
                    let idx = match partitioned.iter().position(|(b, _)| *b == q.bits) {
                        Some(idx) => idx,
                        None => {
                            let (pf, d) = self.compute.prepare_fragment(
                                &q.algorithm,
                                fragment,
                                q.bits,
                                self.threads,
                            );
                            total += d;
                            partitioned.push((q.bits, pf));
                            partitioned.len() - 1
                        }
                    };
                    partitioned.get(idx).map_or(&plain, |(_, pf)| pf)
                }
                Algorithm::SortMerge => {
                    if sorted.is_none() {
                        let (pf, d) = self.compute.prepare_fragment(
                            &q.algorithm,
                            fragment,
                            q.bits,
                            self.threads,
                        );
                        total += d;
                        sorted = Some(pf);
                    }
                    sorted.as_ref().unwrap_or(&plain)
                }
                Algorithm::NestedLoops => &plain,
            };
            // Setup always precedes process on the ring; if a driver breaks
            // that contract, skip the query rather than poison the run.
            let Some(state) = q.states.get(host.0).and_then(Option::as_ref) else {
                debug_assert!(false, "process before setup for host {}", host.0);
                continue;
            };
            let Some(collector) = q.collectors.get_mut(host.0) else {
                debug_assert!(false, "no collector for host {}", host.0);
                continue;
            };
            total += self.compute.join(
                &q.algorithm,
                state,
                prepared,
                &q.predicate,
                self.threads,
                collector,
            );
        }
        total
    }
}

/// Result of one query in a concurrent batch.
#[derive(Debug)]
pub struct QueryOutcome {
    /// Name of the algorithm that ran.
    pub algorithm: &'static str,
    /// Total matches across hosts.
    pub count: u64,
    /// Order-independent checksum over all matches.
    pub checksum: Checksum,
    /// Per-host collectors (materialized matches if requested).
    pub collectors: Vec<JoinCollector>,
}

/// The outcome of a shared-rotation batch.
#[derive(Debug)]
pub struct ConcurrentReport {
    /// Ring-level metrics of the single shared revolution.
    pub ring: RingMetrics,
    /// Per-query results, in the order queries were added.
    pub queries: Vec<QueryOutcome>,
}

impl ConcurrentReport {
    /// End-to-end seconds for the whole batch.
    pub fn total_seconds(&self) -> f64 {
        self.ring.wall_clock.as_secs_f64()
    }

    /// Bytes that crossed ring links for the whole batch.
    pub fn bytes_forwarded(&self) -> u64 {
        self.ring.total_bytes_forwarded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::reference_join;
    use relation::GenSpec;

    #[test]
    fn every_query_matches_its_reference() {
        let hot = GenSpec::uniform(3_000, 600).generate();
        let s1 = GenSpec::uniform(1_500, 601).generate();
        let s2 = GenSpec::uniform(1_500, 602).generate();
        let s3 = GenSpec::uniform(800, 603).generate();
        let band = JoinPredicate::band(2);
        let report = ConcurrentJoins::new(hot.clone())
            .query(s1.clone(), JoinPredicate::Equi)
            .query(s2.clone(), band.clone())
            .query_with(s3.clone(), JoinPredicate::Equi, Algorithm::SortMerge)
            .hosts(4)
            .run()
            .expect("batch should run");
        assert_eq!(report.queries.len(), 3);
        for (outcome, (s, pred)) in report.queries.iter().zip([
            (&s1, JoinPredicate::Equi),
            (&s2, band),
            (&s3, JoinPredicate::Equi),
        ]) {
            let reference = reference_join(&hot, s, &pred);
            assert_eq!(outcome.count, reference.count, "{}", outcome.algorithm);
            assert_eq!(
                outcome.checksum, reference.checksum,
                "{}",
                outcome.algorithm
            );
        }
    }

    #[test]
    fn shared_rotation_moves_data_once() {
        let hot = GenSpec::uniform(6_000, 610).generate();
        let s = GenSpec::uniform(2_000, 611).generate();
        let batch_of_three = ConcurrentJoins::new(hot.clone())
            .query(s.clone(), JoinPredicate::Equi)
            .query(s.clone(), JoinPredicate::Equi)
            .query(s.clone(), JoinPredicate::Equi)
            .hosts(4)
            .run()
            .expect("batch should run");
        let single = ConcurrentJoins::new(hot)
            .query(s, JoinPredicate::Equi)
            .hosts(4)
            .run()
            .expect("batch should run");
        assert_eq!(
            batch_of_three.bytes_forwarded(),
            single.bytes_forwarded(),
            "three queries on one rotation must move exactly as many bytes as one"
        );
        assert!(batch_of_three.total_seconds() > single.total_seconds());
    }

    #[test]
    fn batch_beats_sequential_runs_on_network_volume() {
        // k sequential cyclo-joins rotate R k times; the batch rotates once.
        let hot = GenSpec::uniform(4_000, 620).generate();
        let stationaries: Vec<Relation> = (0..3)
            .map(|i| GenSpec::uniform(1_000, 630 + i).generate())
            .collect();
        let batch = {
            let mut b = ConcurrentJoins::new(hot.clone()).hosts(4);
            for s in &stationaries {
                b = b.query(s.clone(), JoinPredicate::Equi);
            }
            b.run().expect("batch should run")
        };
        // Apples to apples: the sequential runs rotate the same hot
        // relation the batch rotates (not the smaller stationary side).
        let sequential_bytes: u64 = stationaries
            .iter()
            .map(|s| {
                crate::plan::CycloJoin::new(hot.clone(), s.clone())
                    .hosts(4)
                    .rotate(crate::distribute::RotateSide::R)
                    .run()
                    .expect("plan should run")
                    .ring
                    .total_bytes_forwarded()
            })
            .sum();
        assert!(
            batch.bytes_forwarded() * 2 < sequential_bytes,
            "shared rotation must cut network volume ≈ k×: batch {} vs sequential {}",
            batch.bytes_forwarded(),
            sequential_bytes
        );
    }

    #[test]
    fn empty_batch_is_an_error() {
        let hot = GenSpec::uniform(100, 640).generate();
        assert!(ConcurrentJoins::new(hot).hosts(2).run().is_err());
    }

    #[test]
    fn unsupported_predicate_is_an_error() {
        let hot = GenSpec::uniform(100, 650).generate();
        let s = GenSpec::uniform(100, 651).generate();
        let err = ConcurrentJoins::new(hot)
            .query_with(s, JoinPredicate::band(1), Algorithm::partitioned_hash())
            .hosts(2)
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("partitioned-hash"));
    }

    #[test]
    fn hash_preparation_is_shared_between_same_bits_queries() {
        // Two hash queries with equal-sized stationaries share radix bits,
        // so the fragment is partitioned once per visit. We can't observe
        // the sharing directly, but the batch must still verify.
        let hot = GenSpec::uniform(2_000, 660).generate();
        let s1 = GenSpec::uniform(1_000, 661).generate();
        let s2 = GenSpec::uniform(1_000, 662).generate();
        let report = ConcurrentJoins::new(hot.clone())
            .query(s1.clone(), JoinPredicate::Equi)
            .query(s2.clone(), JoinPredicate::Equi)
            .hosts(3)
            .run()
            .expect("batch should run");
        assert_eq!(
            report.queries[0].count,
            reference_join(&hot, &s1, &JoinPredicate::Equi).count
        );
        assert_eq!(
            report.queries[1].count,
            reference_join(&hot, &s2, &JoinPredicate::Equi).count
        );
    }
}
