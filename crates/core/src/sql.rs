//! A minimal SQL front-end — the first step toward the paper's closing
//! goal, "the establishment of a complete SQL-enabled system" (§VII).
//!
//! The supported dialect is deliberately small but real: counting
//! equi-/band-join queries over named relations, executed as one
//! cyclo-join revolution per `JOIN` clause.
//!
//! ```text
//! SELECT COUNT(*) FROM r JOIN s ON r.key = s.key
//! SELECT COUNT(*) FROM r JOIN s ON r.key = s.key WITHIN 2
//! SELECT COUNT(*) FROM r JOIN s ON r.key = s.key JOIN t ON s.key = t.key
//! SELECT COUNT(*) FROM r JOIN s ON r.key = s.key WHERE r.key < 1000 AND s.key >= 10
//! ```
//!
//! Relations carry the paper's single 4-byte join key, so every `ON`
//! clause is of the form `<name>.key = <name>.key`; `WITHIN d` widens an
//! equality into the band `|a.key − b.key| ≤ d` (handled by the
//! sort-merge join, §IV-C2).
//!
//! ```
//! use cyclo_join::sql::{execute, parse, Catalog};
//! use relation::GenSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut catalog = Catalog::new();
//! catalog.register("orders", GenSpec::uniform(5_000, 1).generate());
//! catalog.register("customers", GenSpec::uniform(5_000, 2).generate());
//!
//! let plan = parse("SELECT COUNT(*) FROM orders JOIN customers ON orders.key = customers.key")?;
//! let count = execute(&plan, &catalog, 4)?;
//! assert!(count > 0);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use mem_joins::JoinPredicate;
use relation::{Relation, Tuple};

use crate::pipeline::JoinPipeline;
use crate::plan::{CycloJoin, PlanError};

/// A named collection of relations the SQL layer can query.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: HashMap<String, Relation>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers `rel` under `name` (case-insensitive), replacing any
    /// previous relation of that name.
    pub fn register(&mut self, name: &str, rel: Relation) {
        self.relations.insert(name.to_ascii_lowercase(), rel);
    }

    /// Looks up a relation by (case-insensitive) name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(&name.to_ascii_lowercase())
    }
}

/// One `JOIN <relation> ON <left>.key = <right>.key [WITHIN d]` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinClause {
    /// The joined relation's name.
    pub relation: String,
    /// Band half-width (`0` = plain equality).
    pub within: u32,
}

/// A comparison operator in a `WHERE` condition. A closed enum rather than
/// a string so evaluation is exhaustive — no "unknown operator" state can
/// exist after parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
}

impl CmpOp {
    /// The operator's source form.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
        }
    }
}

/// A `WHERE` condition: `<relation>.key <op> <literal>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    /// The filtered relation's name.
    pub relation: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// The literal the key is compared against.
    pub literal: u32,
}

impl Filter {
    /// Evaluates the condition on a key.
    fn accepts(&self, key: u32) -> bool {
        match self.op {
            CmpOp::Lt => key < self.literal,
            CmpOp::Le => key <= self.literal,
            CmpOp::Gt => key > self.literal,
            CmpOp::Ge => key >= self.literal,
            CmpOp::Eq => key == self.literal,
        }
    }
}

/// A parsed query: `SELECT COUNT(*) FROM <base> (JOIN ...)+ [WHERE ...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The base (rotating) relation's name.
    pub base: String,
    /// The join clauses, in order.
    pub joins: Vec<JoinClause>,
    /// `WHERE` conditions, AND-combined, applied per relation before the
    /// join (selection pushdown — the only sound place for them on a
    /// rotating-data system: filter before the data ever enters the ring).
    pub filters: Vec<Filter>,
}

/// Errors from parsing or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// The query text did not match the supported grammar.
    Parse(String),
    /// A referenced relation is not in the catalog.
    UnknownRelation(String),
    /// The underlying cyclo-join plan failed.
    Plan(PlanError),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Parse(msg) => write!(f, "parse error: {msg}"),
            SqlError::UnknownRelation(name) => write!(f, "unknown relation {name:?}"),
            SqlError::Plan(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<PlanError> for SqlError {
    fn from(e: PlanError) -> Self {
        SqlError::Plan(e)
    }
}

/// Splits the query into lowercase word / punctuation tokens.
fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        match c {
            c if c.is_alphanumeric() || c == '_' => current.push(c.to_ascii_lowercase()),
            c if c.is_whitespace() => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
            }
            '(' | ')' | '*' | '.' | '=' | ',' => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
                tokens.push(c.to_string());
            }
            other => {
                if !current.is_empty() {
                    tokens.push(std::mem::take(&mut current));
                }
                tokens.push(other.to_string());
            }
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// A tiny recursive-descent cursor over the token stream.
struct Cursor {
    tokens: Vec<String>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn next(&mut self) -> Option<&str> {
        let t = self.tokens.get(self.pos).map(String::as_str);
        self.pos += 1;
        t
    }

    fn expect_tok(&mut self, expected: &str) -> Result<(), SqlError> {
        match self.next() {
            Some(t) if t == expected => Ok(()),
            Some(t) => Err(SqlError::Parse(format!(
                "expected {expected:?}, found {t:?}"
            ))),
            None => Err(SqlError::Parse(format!(
                "expected {expected:?}, found end of query"
            ))),
        }
    }

    fn identifier(&mut self, what: &str) -> Result<String, SqlError> {
        match self.next() {
            Some(t)
                if t.chars().next().is_some_and(|c| c.is_alphabetic())
                    && t.chars().all(|c| c.is_alphanumeric() || c == '_') =>
            {
                Ok(t.to_string())
            }
            Some(t) => Err(SqlError::Parse(format!("expected {what}, found {t:?}"))),
            None => Err(SqlError::Parse(format!(
                "expected {what}, found end of query"
            ))),
        }
    }
}

/// Parses `<name>.key`.
fn key_ref(cursor: &mut Cursor) -> Result<String, SqlError> {
    let name = cursor.identifier("a relation name")?;
    cursor.expect_tok(".")?;
    cursor.expect_tok("key")?;
    Ok(name)
}

/// Parses the supported dialect into a [`Query`].
///
/// # Errors
///
/// Returns [`SqlError::Parse`] with a description of the first violation.
pub fn parse(text: &str) -> Result<Query, SqlError> {
    let mut cursor = Cursor {
        tokens: tokenize(text),
        pos: 0,
    };
    cursor.expect_tok("select")?;
    cursor.expect_tok("count")?;
    cursor.expect_tok("(")?;
    cursor.expect_tok("*")?;
    cursor.expect_tok(")")?;
    cursor.expect_tok("from")?;
    let base = cursor.identifier("the base relation")?;

    let mut joins = Vec::new();
    // Names joined so far; each ON clause must reference one known side
    // and the newly joined relation.
    let mut known = vec![base.clone()];
    while let Some("join") = cursor.peek() {
        cursor.next();
        let relation = cursor.identifier("the joined relation")?;
        cursor.expect_tok("on")?;
        let left = key_ref(&mut cursor)?;
        cursor.expect_tok("=")?;
        let right = key_ref(&mut cursor)?;
        let mentions_new = left == relation || right == relation;
        let mentions_known = known.contains(&left) || known.contains(&right);
        if !(mentions_new && mentions_known) {
            return Err(SqlError::Parse(format!(
                "ON clause must relate {relation:?} to an already-joined relation, \
                 got {left}.key = {right}.key"
            )));
        }
        let within = if let Some("within") = cursor.peek() {
            cursor.next();
            match cursor.next() {
                Some(n) => n.parse().map_err(|_| {
                    SqlError::Parse(format!("WITHIN needs a non-negative integer, found {n:?}"))
                })?,
                None => {
                    return Err(SqlError::Parse(
                        "WITHIN needs a non-negative integer, found end of query".into(),
                    ))
                }
            }
        } else {
            0
        };
        known.push(relation.clone());
        joins.push(JoinClause { relation, within });
    }
    if joins.is_empty() {
        return Err(SqlError::Parse("expected at least one JOIN clause".into()));
    }

    let mut filters = Vec::new();
    if let Some("where") = cursor.peek() {
        cursor.next();
        loop {
            let relation = key_ref(&mut cursor)?;
            if !known.contains(&relation) {
                return Err(SqlError::Parse(format!(
                    "WHERE references {relation:?}, which is not in the FROM/JOIN list"
                )));
            }
            let op = match cursor.next() {
                Some(op @ ("<" | ">" | "=")) => {
                    // Two-character operators arrive as two tokens.
                    let (eq, strict) = (op == "=", op == "<");
                    if eq {
                        CmpOp::Eq
                    } else if cursor.peek() == Some("=") {
                        cursor.next();
                        if strict {
                            CmpOp::Le
                        } else {
                            CmpOp::Ge
                        }
                    } else if strict {
                        CmpOp::Lt
                    } else {
                        CmpOp::Gt
                    }
                }
                Some(t) => {
                    return Err(SqlError::Parse(format!(
                        "expected a comparison operator, found {t:?}"
                    )))
                }
                None => {
                    return Err(SqlError::Parse(
                        "expected a comparison operator, found end of query".into(),
                    ))
                }
            };
            let literal = match cursor.next() {
                Some(n) => n.parse().map_err(|_| {
                    SqlError::Parse(format!("expected an unsigned integer literal, found {n:?}"))
                })?,
                None => {
                    return Err(SqlError::Parse(
                        "expected an integer literal, found end of query".into(),
                    ))
                }
            };
            filters.push(Filter {
                relation,
                op,
                literal,
            });
            if cursor.peek() == Some("and") {
                cursor.next();
            } else {
                break;
            }
        }
    }
    if let Some(extra) = cursor.peek() {
        return Err(SqlError::Parse(format!("unexpected trailing {extra:?}")));
    }
    Ok(Query {
        base,
        joins,
        filters,
    })
}

/// Executes a parsed query on a ring of `hosts`, returning the match count
/// of the final join.
///
/// # Errors
///
/// Returns [`SqlError::UnknownRelation`] for names missing from the
/// catalog, or the underlying [`PlanError`].
pub fn execute(query: &Query, catalog: &Catalog, hosts: usize) -> Result<u64, SqlError> {
    let lookup = |name: &str| -> Result<Relation, SqlError> {
        let rel = catalog
            .get(name)
            .ok_or_else(|| SqlError::UnknownRelation(name.to_string()))?;
        // Selection pushdown: apply this relation's WHERE conditions
        // before it is distributed or rotated.
        let filters: Vec<&Filter> = query
            .filters
            .iter()
            .filter(|f| f.relation.eq_ignore_ascii_case(name))
            .collect();
        if filters.is_empty() {
            return Ok(rel.clone());
        }
        Ok(rel
            .iter()
            .filter(|t| filters.iter().all(|f| f.accepts(t.key)))
            .collect())
    };
    let base = lookup(&query.base)?;
    let predicate_of = |clause: &JoinClause| {
        if clause.within == 0 {
            JoinPredicate::Equi
        } else {
            JoinPredicate::band(clause.within)
        }
    };
    if let [clause] = query.joins.as_slice() {
        let report = CycloJoin::new(base, lookup(&clause.relation)?)
            .predicate(predicate_of(clause))
            .hosts(hosts)
            .run()?;
        return Ok(report.match_count());
    }
    let mut pipeline = JoinPipeline::new(base).hosts(hosts);
    for clause in &query.joins {
        // The intermediate carries the newly joined side's key forward, so
        // the next ON clause joins against it.
        pipeline = pipeline.join(lookup(&clause.relation)?, predicate_of(clause), |m| {
            Tuple::new(m.s_key, m.s_payload)
        });
    }
    Ok(pipeline.run()?.match_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::reference_join;
    use relation::GenSpec;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register("r", GenSpec::uniform(1_500, 1400).generate());
        c.register("s", GenSpec::uniform(1_500, 1401).generate());
        c.register("t", GenSpec::uniform(1_500, 1402).generate());
        c
    }

    #[test]
    fn single_join_counts_match_the_reference() {
        let catalog = catalog();
        let plan = parse("SELECT COUNT(*) FROM r JOIN s ON r.key = s.key").unwrap();
        let count = execute(&plan, &catalog, 3).unwrap();
        let reference = reference_join(
            catalog.get("r").unwrap(),
            catalog.get("s").unwrap(),
            &JoinPredicate::Equi,
        );
        assert_eq!(count, reference.count);
    }

    #[test]
    fn band_join_via_within() {
        let catalog = catalog();
        let plan = parse("SELECT COUNT(*) FROM r JOIN s ON r.key = s.key WITHIN 2").unwrap();
        let count = execute(&plan, &catalog, 3).unwrap();
        let reference = reference_join(
            catalog.get("r").unwrap(),
            catalog.get("s").unwrap(),
            &JoinPredicate::band(2),
        );
        assert_eq!(count, reference.count);
        assert_eq!(plan.joins[0].within, 2);
    }

    #[test]
    fn multi_join_runs_a_pipeline() {
        let catalog = catalog();
        let plan = parse("SELECT COUNT(*) FROM r JOIN s ON r.key = s.key JOIN t ON s.key = t.key")
            .unwrap();
        assert_eq!(plan.joins.len(), 2);
        let count = execute(&plan, &catalog, 2).unwrap();
        assert!(count > 0);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let a = parse("select count(*) from r join s on r.key = s.key").unwrap();
        let b = parse("SELECT COUNT(*) FROM R JOIN S ON R.KEY = S.KEY").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_errors_are_descriptive() {
        for (query, needle) in [
            ("SELECT * FROM r JOIN s ON r.key = s.key", "count"),
            ("SELECT COUNT(*) FROM r", "JOIN"),
            (
                "SELECT COUNT(*) FROM r JOIN s ON r.key = t.key",
                "already-joined",
            ),
            (
                "SELECT COUNT(*) FROM r JOIN s ON r.key = s.key WITHIN x",
                "integer",
            ),
            (
                "SELECT COUNT(*) FROM r JOIN s ON r.key = s.key garbage",
                "trailing",
            ),
            ("", "end of query"),
            (
                "SELECT COUNT(*) FROM r JOIN s ON r.key = s.key WHERE r.key ! 5",
                "comparison operator",
            ),
            (
                "SELECT COUNT(*) FROM r JOIN s ON r.key = s.key WHERE r.key < ",
                "end of query",
            ),
        ] {
            let err = parse(query).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{query:?} → {err} (expected mention of {needle:?})"
            );
        }
    }

    #[test]
    fn where_clause_filters_before_the_join() {
        let catalog = catalog();
        let plan = parse(
            "SELECT COUNT(*) FROM r JOIN s ON r.key = s.key WHERE r.key < 500 AND s.key >= 10",
        )
        .unwrap();
        assert_eq!(plan.filters.len(), 2);
        let count = execute(&plan, &catalog, 3).unwrap();
        let r_filtered: relation::Relation = catalog
            .get("r")
            .unwrap()
            .iter()
            .filter(|t| t.key < 500)
            .collect();
        let s_filtered: relation::Relation = catalog
            .get("s")
            .unwrap()
            .iter()
            .filter(|t| t.key >= 10)
            .collect();
        let reference = reference_join(&r_filtered, &s_filtered, &JoinPredicate::Equi);
        assert_eq!(count, reference.count);
    }

    #[test]
    fn where_operators_parse() {
        for op in ["<", "<=", ">", ">=", "="] {
            let q = format!("SELECT COUNT(*) FROM r JOIN s ON r.key = s.key WHERE r.key {op} 7");
            let plan = parse(&q).unwrap();
            assert_eq!(plan.filters[0].op.as_str(), op, "{q}");
            assert_eq!(plan.filters[0].literal, 7);
        }
    }

    #[test]
    fn where_on_unjoined_relation_is_rejected() {
        let err =
            parse("SELECT COUNT(*) FROM r JOIN s ON r.key = s.key WHERE t.key < 5").unwrap_err();
        assert!(err.to_string().contains("not in the FROM"));
    }

    #[test]
    fn unknown_relations_are_reported() {
        let plan = parse("SELECT COUNT(*) FROM r JOIN nope ON r.key = nope.key").unwrap();
        let err = execute(&plan, &catalog(), 2).unwrap_err();
        assert_eq!(err, SqlError::UnknownRelation("nope".into()));
    }
}
