//! Single-host reference joins for verifying distributed results.
//!
//! Every cyclo-join run can be checked against a trusted local evaluation:
//! equal match counts and equal order-independent checksums mean the
//! distributed execution produced exactly the same multiset of matches.

use mem_joins::{merge_join, nested_loops_join, JoinCollector, JoinPredicate, SortedRun};
use relation::{Checksum, Relation};

/// The reference verdict: how many matches, and their multiset checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reference {
    /// Number of matches the join produces.
    pub count: u64,
    /// Order-independent checksum over the matches.
    pub checksum: Checksum,
}

/// Evaluates `r ⋈ s` locally with a trusted algorithm: a sorted merge for
/// equi- and band predicates (fast), blocked nested loops for theta.
pub fn reference_join(r: &Relation, s: &Relation, predicate: &JoinPredicate) -> Reference {
    let mut collector = JoinCollector::aggregating();
    match predicate.band_delta() {
        Some(delta) => {
            let sr = SortedRun::sort(r, 1);
            let ss = SortedRun::sort(s, 1);
            merge_join(&sr, &ss, delta, 1, &mut collector);
        }
        None => nested_loops_join(r, s, predicate, 1, &mut collector),
    }
    Reference {
        count: collector.count(),
        checksum: collector.checksum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::GenSpec;

    #[test]
    fn equi_reference_agrees_with_brute_force() {
        let r = GenSpec::uniform(500, 1).generate();
        let s = GenSpec::uniform(500, 2).generate();
        let fast = reference_join(&r, &s, &JoinPredicate::Equi);
        let mut brute = JoinCollector::aggregating();
        nested_loops_join(&r, &s, &JoinPredicate::Equi, 1, &mut brute);
        assert_eq!(fast.count, brute.count());
        assert_eq!(fast.checksum, brute.checksum());
    }

    #[test]
    fn band_reference_agrees_with_brute_force() {
        let r = GenSpec::uniform(400, 3).generate();
        let s = GenSpec::uniform(400, 4).generate();
        let pred = JoinPredicate::band(2);
        let fast = reference_join(&r, &s, &pred);
        let mut brute = JoinCollector::aggregating();
        nested_loops_join(&r, &s, &pred, 1, &mut brute);
        assert_eq!(fast.count, brute.count());
        assert_eq!(fast.checksum, brute.checksum());
    }

    #[test]
    fn theta_reference_uses_nested_loops() {
        let r = GenSpec::uniform(100, 5).generate();
        let s = GenSpec::uniform(100, 6).generate();
        let pred = JoinPredicate::theta(|a, b| a % 3 == 0 && b % 5 == 0);
        let reference = reference_join(&r, &s, &pred);
        assert!(reference.count > 0);
    }

    #[test]
    fn empty_inputs_give_empty_reference() {
        let e = Relation::new();
        let r = reference_join(&e, &e, &JoinPredicate::Equi);
        assert_eq!(r.count, 0);
        assert!(r.checksum.is_empty());
    }
}
