//! Spreading the input relations over the ring (§IV-A).
//!
//! Cyclo-join assumes both inputs are already distributed before the join
//! starts — "we do not care how the data is distributed, but we assume that
//! the distribution of at least S is reasonably even". The default
//! placement splits both sides into even contiguous chunks; the rotating
//! side is further cut into per-host fragments (the rotation units that
//! will each fill one ring-buffer element).

use relation::Relation;
use serde::{Deserialize, Serialize};

/// Which relation circulates in the ring while the other stays put.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RotateSide {
    /// Rotate `R`, keep `S` stationary (the paper's description).
    R,
    /// Rotate `S`, keep `R` stationary.
    S,
    /// Rotate whichever relation is smaller — "this may be easier to
    /// achieve if the smaller of the two input relations is chosen as the
    /// one that is kept rotating" (§IV-B).
    #[default]
    Auto,
}

impl RotateSide {
    /// Resolves `Auto` against the actual input sizes. Returns `true` when
    /// the logical `S` is the side that rotates.
    pub fn rotates_s(&self, r_tuples: usize, s_tuples: usize) -> bool {
        match self {
            RotateSide::R => false,
            RotateSide::S => true,
            RotateSide::Auto => s_tuples < r_tuples,
        }
    }
}

/// The physical placement of one cyclo-join run.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Stationary partition per host.
    pub stationary: Vec<Relation>,
    /// Rotating fragments per host (each inner vec holds that host's
    /// locally originating rotation units).
    pub rotating: Vec<Vec<Relation>>,
    /// True if the logical `S` is the rotating side (sides were swapped).
    pub swapped: bool,
}

impl Placement {
    /// Builds a placement: the rotating side is chunked evenly over hosts
    /// and then into `fragments_per_host` rotation units each; the
    /// stationary side is chunked evenly over hosts.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` or `fragments_per_host` is zero.
    pub fn new(
        r: &Relation,
        s: &Relation,
        hosts: usize,
        fragments_per_host: usize,
        rotate: RotateSide,
    ) -> Self {
        assert!(hosts > 0, "placement needs at least one host");
        assert!(
            fragments_per_host > 0,
            "placement needs at least one fragment per host"
        );
        let swapped = rotate.rotates_s(r.len(), s.len());
        let (rotating_rel, stationary_rel) = if swapped { (s, r) } else { (r, s) };
        let stationary = stationary_rel.split_even(hosts);
        let rotating = rotating_rel
            .split_even(hosts)
            .into_iter()
            .map(|host_share| host_share.split_even(fragments_per_host))
            .collect();
        Placement {
            stationary,
            rotating,
            swapped,
        }
    }

    /// Like [`Placement::new`], but the hosts whose bits are set in
    /// `standby` start *outside* the ring (a planned rescale will activate
    /// them later): they own no stationary partition and contribute no
    /// rotating fragments, so both sides spread over the initial members
    /// only. Their slots stay in the vectors (empty) to keep host indices
    /// stable.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` or `fragments_per_host` is zero, or if every host
    /// is a standby.
    pub fn with_standbys(
        r: &Relation,
        s: &Relation,
        hosts: usize,
        fragments_per_host: usize,
        rotate: RotateSide,
        standby: u64,
    ) -> Self {
        assert!(hosts > 0, "placement needs at least one host");
        assert!(
            fragments_per_host > 0,
            "placement needs at least one fragment per host"
        );
        let is_standby = |h: usize| h < 64 && standby & (1u64 << h) != 0;
        let members = (0..hosts).filter(|&h| !is_standby(h)).count();
        assert!(members > 0, "placement needs at least one initial member");
        let swapped = rotate.rotates_s(r.len(), s.len());
        let (rotating_rel, stationary_rel) = if swapped { (s, r) } else { (r, s) };
        let mut member_stationary = stationary_rel.split_even(members).into_iter();
        let mut member_rotating = rotating_rel.split_even(members).into_iter();
        let mut stationary = Vec::with_capacity(hosts);
        let mut rotating = Vec::with_capacity(hosts);
        for h in 0..hosts {
            if is_standby(h) {
                stationary.push(Relation::new());
                rotating.push(Vec::new());
            } else {
                stationary.push(member_stationary.next().unwrap_or_default());
                rotating.push(
                    member_rotating
                        .next()
                        .unwrap_or_default()
                        .split_even(fragments_per_host),
                );
            }
        }
        Placement {
            stationary,
            rotating,
            swapped,
        }
    }

    /// Number of hosts the placement covers.
    pub fn hosts(&self) -> usize {
        self.stationary.len()
    }

    /// Total rotating tuples across all fragments.
    pub fn rotating_tuples(&self) -> usize {
        self.rotating
            .iter()
            .flat_map(|frags| frags.iter())
            .map(Relation::len)
            .sum()
    }

    /// Total stationary tuples across all hosts.
    pub fn stationary_tuples(&self) -> usize {
        self.stationary.iter().map(Relation::len).sum()
    }

    /// The largest stationary partition — what the ring-wide radix fan-out
    /// must be sized for.
    pub fn max_stationary_tuples(&self) -> usize {
        self.stationary.iter().map(Relation::len).max().unwrap_or(0)
    }

    /// The largest single rotation unit in bytes — what each ring-buffer
    /// element must be sized for.
    pub fn max_fragment_bytes(&self) -> u64 {
        self.rotating
            .iter()
            .flat_map(|frags| frags.iter())
            .map(Relation::byte_volume)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::GenSpec;

    #[test]
    fn placement_conserves_tuples() {
        let r = GenSpec::uniform(10_000, 1).generate();
        let s = GenSpec::uniform(8_000, 2).generate();
        let p = Placement::new(&r, &s, 6, 2, RotateSide::R);
        assert_eq!(p.rotating_tuples(), 10_000);
        assert_eq!(p.stationary_tuples(), 8_000);
        assert_eq!(p.hosts(), 6);
        assert_eq!(p.rotating.len(), 6);
        assert_eq!(p.rotating[0].len(), 2);
        assert!(!p.swapped);
    }

    #[test]
    fn auto_rotates_the_smaller_side() {
        let big = GenSpec::uniform(10_000, 1).generate();
        let small = GenSpec::uniform(1_000, 2).generate();
        // R big, S small → S rotates.
        let p = Placement::new(&big, &small, 3, 2, RotateSide::Auto);
        assert!(p.swapped);
        assert_eq!(p.rotating_tuples(), 1_000);
        assert_eq!(p.stationary_tuples(), 10_000);
        // R small, S big → R rotates.
        let p = Placement::new(&small, &big, 3, 2, RotateSide::Auto);
        assert!(!p.swapped);
        assert_eq!(p.rotating_tuples(), 1_000);
    }

    #[test]
    fn forced_sides_are_honoured() {
        let r = GenSpec::uniform(100, 1).generate();
        let s = GenSpec::uniform(10_000, 2).generate();
        let p = Placement::new(&r, &s, 2, 1, RotateSide::S);
        assert!(p.swapped);
        assert_eq!(p.rotating_tuples(), 10_000);
    }

    #[test]
    fn stationary_is_reasonably_even() {
        let r = GenSpec::uniform(1_000, 1).generate();
        let s = GenSpec::uniform(9_999, 2).generate();
        let p = Placement::new(&r, &s, 4, 2, RotateSide::R);
        let sizes: Vec<usize> = p.stationary.iter().map(Relation::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 9_999);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        assert_eq!(p.max_stationary_tuples(), 2_500);
    }

    #[test]
    fn fragment_sizing_reported() {
        let r = GenSpec::uniform(1_200, 1).generate();
        let s = GenSpec::uniform(1_200, 2).generate();
        let p = Placement::new(&r, &s, 3, 2, RotateSide::R);
        // 1200 / 3 hosts / 2 fragments = 200 tuples = 2400 bytes.
        assert_eq!(p.max_fragment_bytes(), 2_400);
    }

    #[test]
    fn single_host_single_fragment() {
        let r = GenSpec::uniform(50, 1).generate();
        let s = GenSpec::uniform(50, 2).generate();
        let p = Placement::new(&r, &s, 1, 1, RotateSide::R);
        assert_eq!(p.rotating[0].len(), 1);
        assert_eq!(p.rotating[0][0].len(), 50);
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn zero_hosts_rejected() {
        let r = Relation::new();
        let _ = Placement::new(&r, &r, 0, 1, RotateSide::R);
    }

    #[test]
    fn standby_slots_stay_empty() {
        let r = GenSpec::uniform(1_200, 1).generate();
        let s = GenSpec::uniform(900, 2).generate();
        let p = Placement::with_standbys(&r, &s, 3, 2, RotateSide::R, 0b100);
        assert_eq!(p.hosts(), 3);
        assert_eq!(p.stationary[2].len(), 0, "a standby owns no partition");
        assert!(p.rotating[2].is_empty(), "a standby ships no fragments");
        // Nothing is lost: both sides spread over the two initial members.
        assert_eq!(p.rotating_tuples(), 1_200);
        assert_eq!(p.stationary_tuples(), 900);
        assert!(p.stationary[0].len().abs_diff(p.stationary[1].len()) <= 1);
        // No standbys degenerates to the plain placement.
        let plain = Placement::with_standbys(&r, &s, 3, 2, RotateSide::R, 0);
        assert_eq!(plain, Placement::new(&r, &s, 3, 2, RotateSide::R));
    }

    #[test]
    #[should_panic(expected = "at least one initial member")]
    fn all_standby_rejected() {
        let r = GenSpec::uniform(10, 1).generate();
        let _ = Placement::with_standbys(&r, &r, 2, 1, RotateSide::R, 0b11);
    }
}
