//! The cyclo-join planner/builder — the crate's main entry point.
//!
//! ```
//! use cyclo_join::CycloJoin;
//! use relation::GenSpec;
//!
//! # fn main() -> Result<(), cyclo_join::PlanError> {
//! let r = GenSpec::uniform(20_000, 1).generate();
//! let s = GenSpec::uniform(20_000, 2).generate();
//! let report = CycloJoin::new(r, s).hosts(4).run()?;
//! assert!(report.match_count() > 0);
//! # Ok(())
//! # }
//! ```

use data_roundabout::{FaultPlan, RescalePlan, RingConfig, RingError};
use mem_joins::{Algorithm, JoinPredicate, OutputMode};
use relation::Relation;
use simnet::trace::Tracer;

use crate::compute::ComputeMode;
use crate::distribute::{Placement, RotateSide};
use crate::exec::{execute_simulated, execute_tcp, execute_threaded, SocketBackend};
use crate::report::CycloJoinReport;

/// A configured cyclo-join, built with the builder pattern and executed on
/// either backend.
#[derive(Debug, Clone)]
pub struct CycloJoin {
    r: Relation,
    s: Relation,
    predicate: JoinPredicate,
    algorithm: Option<Algorithm>,
    config: RingConfig,
    fragments_per_host: usize,
    rotate: RotateSide,
    compute: ComputeMode,
    output: OutputMode,
    ship_prepared: bool,
    host_speeds: Option<Vec<f64>>,
    fault_plan: Option<FaultPlan>,
    rescale_plan: Option<RescalePlan>,
    trace: bool,
}

impl CycloJoin {
    /// Starts planning the join `r ⋈ s` with the paper's default
    /// configuration: equi-join, auto-selected algorithm, six RDMA hosts,
    /// deterministic modeled compute.
    pub fn new(r: Relation, s: Relation) -> Self {
        CycloJoin {
            r,
            s,
            predicate: JoinPredicate::Equi,
            algorithm: None,
            config: RingConfig::paper(6),
            fragments_per_host: 4,
            rotate: RotateSide::Auto,
            compute: ComputeMode::modeled(),
            output: OutputMode::Aggregate,
            ship_prepared: true,
            host_speeds: None,
            fault_plan: None,
            rescale_plan: None,
            trace: false,
        }
    }

    /// Sets the join predicate (default: equi).
    pub fn predicate(mut self, predicate: JoinPredicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Forces a local join algorithm (default: the fastest one supporting
    /// the predicate).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// Replaces the whole ring configuration.
    pub fn ring(mut self, config: RingConfig) -> Self {
        self.config = config;
        self
    }

    /// Shortcut: the paper ring with `n` hosts, keeping other settings.
    pub fn hosts(mut self, n: usize) -> Self {
        self.config.hosts = n;
        self
    }

    /// Number of rotation units each host's share of the rotating relation
    /// is cut into (default 4).
    pub fn fragments_per_host(mut self, fragments: usize) -> Self {
        self.fragments_per_host = fragments;
        self
    }

    /// Which side rotates (default: the smaller one).
    pub fn rotate(mut self, rotate: RotateSide) -> Self {
        self.rotate = rotate;
        self
    }

    /// How compute durations are priced (default: deterministic model).
    pub fn compute(mut self, compute: ComputeMode) -> Self {
        self.compute = compute;
        self
    }

    /// Output mode: aggregate (default) or materialize every match.
    pub fn output(mut self, output: OutputMode) -> Self {
        self.output = output;
        self
    }

    /// Controls fragment shipping (§IV-D). By default (`true`) fragments
    /// are reorganized once at their origin host and the reorganized form
    /// rotates, amortizing the setup investment over the whole revolution.
    /// `false` rotates raw fragments instead, forcing every host to
    /// re-partition/re-sort each fragment at encounter time — the
    /// counterfactual the setup-amortization ablation measures.
    pub fn ship_prepared(mut self, ship_prepared: bool) -> Self {
        self.ship_prepared = ship_prepared;
        self
    }

    /// Makes hosts heterogeneous: host `h` joins at `speeds[h]` × nominal
    /// speed (§V-D studies how the ring absorbs such differences).
    pub fn host_speeds(mut self, speeds: Vec<f64>) -> Self {
        self.host_speeds = Some(speeds);
        self
    }

    /// Attaches a deterministic fault schedule (crashes, lossy links,
    /// pauses, stragglers). Attaching a plan — even a quiet one — switches
    /// the transport into its acknowledged, retransmitting mode; scheduled
    /// crashes are healed mid-revolution by the ring survivors without
    /// losing or duplicating a single fragment visit.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Attaches a planned membership schedule (elastic rescale): hosts
    /// named in a scheduled join start as provisioned standbys outside
    /// the ring — they own no stationary partition and ship no fragments
    /// until activated — and scheduled drains hand a departing host's
    /// partitions to their rendezvous-hashed new owners before the host
    /// leaves. Like a fault plan, attaching one switches the transport
    /// into its acknowledged, retransmitting mode. Supported on the
    /// simulated and TCP backends; [`CycloJoin::run_threaded`] refuses it
    /// with a typed error because its join callback is keyed by host, not
    /// by stationary role.
    pub fn rescale_plan(mut self, plan: RescalePlan) -> Self {
        self.rescale_plan = Some(plan);
        self
    }

    /// Enables tracing: the free-text transport trace on the simulated
    /// backend, and — on both backends — the structured span/event tracer
    /// exported by [`CycloJoinReport::chrome_trace`].
    pub fn trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// The algorithm that will actually run.
    pub fn resolved_algorithm(&self) -> Algorithm {
        self.algorithm
            .unwrap_or_else(|| Algorithm::for_predicate(&self.predicate))
    }

    fn validate(&self) -> Result<Algorithm, PlanError> {
        self.config.validate().map_err(PlanError::InvalidConfig)?;
        if self.fragments_per_host == 0 {
            return Err(PlanError::NoFragments);
        }
        if let Some(speeds) = &self.host_speeds {
            if speeds.len() != self.config.hosts {
                return Err(PlanError::BadQuery(format!(
                    "host_speeds has {} entries for a {}-host ring",
                    speeds.len(),
                    self.config.hosts
                )));
            }
            if !speeds.iter().all(|s| s.is_finite() && *s > 0.0) {
                return Err(PlanError::BadQuery(
                    "host_speeds must all be finite and positive".into(),
                ));
            }
        }
        if let Some(plan) = &self.fault_plan {
            if self.config.hosts > 64 {
                return Err(PlanError::BadQuery(
                    "fault injection supports at most 64 hosts (exactly-once role bitmask)".into(),
                ));
            }
            let out_of_range = plan
                .crashes()
                .iter()
                .map(|c| c.host)
                .chain(plan.pauses().iter().map(|p| p.host))
                .find(|h| h.0 >= self.config.hosts);
            if let Some(h) = out_of_range {
                return Err(PlanError::BadQuery(format!(
                    "fault plan targets host {} of a {}-host ring",
                    h.0, self.config.hosts
                )));
            }
            if self.config.hosts == 1 && !plan.crashes().is_empty() {
                return Err(PlanError::BadQuery(
                    "cannot heal a single-host ring around a crash".into(),
                ));
            }
        }
        if let Some(plan) = &self.rescale_plan {
            if self.config.hosts > 64 {
                return Err(PlanError::BadQuery(
                    "planned rescale supports at most 64 hosts (exactly-once role bitmask)".into(),
                ));
            }
            if self.config.hosts == 1 && !plan.is_quiet() {
                return Err(PlanError::BadQuery(
                    "a single-host ring has no membership to rescale".into(),
                ));
            }
            let out_of_range = plan
                .joins()
                .iter()
                .map(|j| j.host)
                .chain(plan.drains().iter().map(|d| d.host))
                .find(|h| h.0 >= self.config.hosts);
            if let Some(h) = out_of_range {
                return Err(PlanError::BadQuery(format!(
                    "rescale plan targets host {} of a {}-host ring",
                    h.0, self.config.hosts
                )));
            }
            if plan.standby_mask().count_ones() as usize >= self.config.hosts {
                return Err(PlanError::BadQuery(
                    "a rescale plan cannot make every host a standby".into(),
                ));
            }
        }
        let algorithm = self.resolved_algorithm();
        if !algorithm.supports(&self.predicate) {
            return Err(PlanError::UnsupportedPredicate {
                algorithm: algorithm.name(),
                predicate: self.predicate.to_string(),
            });
        }
        Ok(algorithm)
    }

    fn placement(&self) -> Placement {
        // Hosts a rescale plan will activate later start as standbys: no
        // stationary partition, no locally originating fragments.
        let standby = self
            .rescale_plan
            .as_ref()
            .map_or(0, RescalePlan::standby_mask);
        Placement::with_standbys(
            &self.r,
            &self.s,
            self.config.hosts,
            self.fragments_per_host,
            self.rotate,
            standby,
        )
    }

    fn report(
        &self,
        algorithm: Algorithm,
        swapped: bool,
        outcome: crate::exec::ExecOutcome,
    ) -> (CycloJoinReport, Tracer) {
        let report = CycloJoinReport {
            algorithm: algorithm.name(),
            transport: self.config.transport.name(),
            hosts: self.config.hosts,
            join_threads: self.config.join_threads,
            swapped,
            data_volume: self.r.byte_volume() + self.s.byte_volume(),
            cpu: self.config.cpu,
            ring: outcome.metrics,
            result: outcome.result,
            spans: outcome.spans,
        };
        (report, outcome.trace)
    }

    /// Runs on the simulated (virtual-time) backend.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the configuration is inconsistent or the
    /// chosen algorithm cannot evaluate the predicate.
    pub fn run(&self) -> Result<CycloJoinReport, PlanError> {
        self.run_traced().map(|(report, _)| report)
    }

    /// Like [`CycloJoin::run`] but also returns the transport trace
    /// (enable it with [`CycloJoin::trace`] first).
    ///
    /// # Errors
    ///
    /// Same as [`CycloJoin::run`].
    pub fn run_traced(&self) -> Result<(CycloJoinReport, Tracer), PlanError> {
        let algorithm = self.validate()?;
        let placement = self.placement();
        let swapped = placement.swapped;
        let outcome = execute_simulated(
            &self.config,
            algorithm,
            &self.predicate,
            &self.compute,
            self.output,
            placement,
            self.ship_prepared,
            self.host_speeds.clone(),
            self.fault_plan.clone(),
            self.rescale_plan.clone(),
            self.trace,
        );
        Ok(self.report(algorithm, swapped, outcome))
    }

    /// Runs on the real-thread backend (wall-clock times, actual
    /// concurrency).
    ///
    /// # Errors
    ///
    /// Same as [`CycloJoin::run`].
    pub fn run_threaded(&self) -> Result<CycloJoinReport, PlanError> {
        let algorithm = self.validate()?;
        if self.rescale_plan.as_ref().is_some_and(|p| !p.is_quiet()) {
            return Err(PlanError::Backend(RingError::UnsupportedFault(
                "the threaded cyclo-join path keys joins by host, not by stationary role, so it \
                 cannot follow a rescale's role handoffs — run the rescale on the simulated or \
                 tcp backend (the raw thread driver does support rescale for role-agnostic \
                 workloads)",
            )));
        }
        let placement = self.placement();
        let swapped = placement.swapped;
        let outcome = execute_threaded(
            &self.config,
            algorithm,
            &self.predicate,
            self.output,
            placement,
            self.fault_plan.as_ref(),
            self.trace,
        )
        .map_err(|e| match e {
            RingError::Config(c) => PlanError::InvalidConfig(c),
            other => PlanError::Backend(other),
        })?;
        Ok(self.report(algorithm, swapped, outcome).0)
    }

    /// Runs over real loopback TCP sockets (wall-clock times, kernel
    /// network stack). Unlike [`CycloJoin::run_threaded`], this backend
    /// supports crash plans: a scheduled crash severs real connections and
    /// the ring heals mid-revolution. Note `config.ack_timeout` is
    /// interpreted in wall-clock time on this backend.
    ///
    /// # Errors
    ///
    /// Same as [`CycloJoin::run`].
    pub fn run_tcp(&self) -> Result<CycloJoinReport, PlanError> {
        self.run_sockets(SocketBackend::Blocking)
    }

    /// Runs over the same loopback TCP wire protocol as
    /// [`CycloJoin::run_tcp`], but driven by the single-threaded reactor
    /// event loop instead of four OS threads per host — the backend that
    /// scales to 64–256-host rings. Fault and rescale semantics are
    /// identical; `config.ack_timeout` is wall-clock time here too.
    ///
    /// # Errors
    ///
    /// Same as [`CycloJoin::run`].
    pub fn run_reactor(&self) -> Result<CycloJoinReport, PlanError> {
        self.run_sockets(SocketBackend::Reactor)
    }

    fn run_sockets(&self, flavor: SocketBackend) -> Result<CycloJoinReport, PlanError> {
        let algorithm = self.validate()?;
        let placement = self.placement();
        let swapped = placement.swapped;
        let outcome = execute_tcp(
            &self.config,
            algorithm,
            &self.predicate,
            self.output,
            placement,
            self.fault_plan.as_ref(),
            self.rescale_plan.as_ref(),
            self.trace,
            flavor,
        )
        .map_err(|e| match e {
            RingError::Config(c) => PlanError::InvalidConfig(c),
            other => PlanError::Backend(other),
        })?;
        Ok(self.report(algorithm, swapped, outcome).0)
    }
}

/// Why a cyclo-join plan could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The ring configuration is inconsistent.
    InvalidConfig(data_roundabout::ConfigError),
    /// The chosen algorithm cannot evaluate the predicate.
    UnsupportedPredicate {
        /// The algorithm that was (explicitly) chosen.
        algorithm: &'static str,
        /// Display form of the offending predicate.
        predicate: String,
    },
    /// `fragments_per_host` was zero.
    NoFragments,
    /// A submitted query is malformed (cyclotron / batch extensions).
    BadQuery(String),
    /// The ring backend refused to run (e.g. a fault class the thread
    /// backend does not support).
    Backend(RingError),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::InvalidConfig(e) => write!(f, "{e}"),
            PlanError::UnsupportedPredicate {
                algorithm,
                predicate,
            } => {
                write!(
                    f,
                    "algorithm {algorithm} cannot evaluate predicate {predicate}"
                )
            }
            PlanError::NoFragments => write!(f, "fragments_per_host must be at least 1"),
            PlanError::BadQuery(reason) => write!(f, "bad query: {reason}"),
            PlanError::Backend(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::reference_join;
    use relation::GenSpec;

    fn inputs() -> (Relation, Relation) {
        (
            GenSpec::uniform(4_000, 100).generate(),
            GenSpec::uniform(4_000, 101).generate(),
        )
    }

    #[test]
    fn default_plan_runs_and_verifies() {
        let (r, s) = inputs();
        let reference = reference_join(&r, &s, &JoinPredicate::Equi);
        let report = CycloJoin::new(r, s).run().expect("plan should run");
        assert_eq!(report.match_count(), reference.count);
        assert_eq!(report.checksum(), reference.checksum);
        assert_eq!(report.hosts, 6);
        assert_eq!(report.algorithm, "partitioned-hash");
    }

    #[test]
    fn band_predicate_picks_sort_merge() {
        let (r, s) = inputs();
        let reference = reference_join(&r, &s, &JoinPredicate::band(1));
        let report = CycloJoin::new(r, s)
            .predicate(JoinPredicate::band(1))
            .hosts(3)
            .run()
            .expect("band plan should run");
        assert_eq!(report.algorithm, "sort-merge");
        assert_eq!(report.match_count(), reference.count);
        assert_eq!(report.checksum(), reference.checksum);
    }

    #[test]
    fn explicit_unsupported_algorithm_is_an_error() {
        let (r, s) = inputs();
        let err = CycloJoin::new(r, s)
            .predicate(JoinPredicate::band(1))
            .algorithm(Algorithm::partitioned_hash())
            .run()
            .unwrap_err();
        assert!(matches!(err, PlanError::UnsupportedPredicate { .. }));
        assert!(err.to_string().contains("partitioned-hash"));
    }

    #[test]
    fn invalid_ring_is_an_error() {
        let (r, s) = inputs();
        let err = CycloJoin::new(r, s).hosts(0).run().unwrap_err();
        assert!(matches!(err, PlanError::InvalidConfig(_)));
    }

    #[test]
    fn bad_host_speeds_are_an_error() {
        let (r, s) = inputs();
        let err = CycloJoin::new(r.clone(), s.clone())
            .hosts(3)
            .host_speeds(vec![1.0, 1.0])
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("host_speeds"));
        let err = CycloJoin::new(r, s)
            .hosts(2)
            .host_speeds(vec![1.0, 0.0])
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("positive"));
    }

    #[test]
    fn zero_fragments_is_an_error() {
        let (r, s) = inputs();
        let err = CycloJoin::new(r, s)
            .fragments_per_host(0)
            .run()
            .unwrap_err();
        assert_eq!(err, PlanError::NoFragments);
    }

    #[test]
    fn ring_sizes_agree_on_the_result() {
        let (r, s) = inputs();
        let reference = reference_join(&r, &s, &JoinPredicate::Equi);
        for hosts in [1, 2, 3, 5, 6] {
            let report = CycloJoin::new(r.clone(), s.clone())
                .hosts(hosts)
                .run()
                .expect("plan should run");
            assert_eq!(report.match_count(), reference.count, "hosts={hosts}");
            assert_eq!(report.checksum(), reference.checksum, "hosts={hosts}");
        }
    }

    #[test]
    fn setup_time_shrinks_with_ring_size() {
        // Figure 7's headline: distributing the setup cuts its cost ∝ 1/n.
        let r = GenSpec::uniform(60_000, 7).generate();
        let s = GenSpec::uniform(60_000, 8).generate();
        let run = |hosts| {
            CycloJoin::new(r.clone(), s.clone())
                .hosts(hosts)
                .rotate(RotateSide::R)
                .run()
                .expect("plan should run")
                .setup_seconds()
        };
        let one = run(1);
        let six = run(6);
        let speedup = one / six;
        assert!(
            (4.0..8.0).contains(&speedup),
            "6-host setup speedup should be ≈6×, got {speedup:.2}"
        );
    }

    #[test]
    fn traced_run_exposes_the_protocol() {
        let (r, s) = inputs();
        let (_, trace) = CycloJoin::new(r, s)
            .hosts(2)
            .trace(true)
            .run_traced()
            .expect("plan should run");
        assert!(trace.matching("setup done").count() == 2);
    }

    #[test]
    fn a_mid_revolution_crash_heals_and_verifies() {
        use data_roundabout::HostId;
        use simnet::time::{SimDuration, SimTime};
        let (r, s) = inputs();
        let reference = reference_join(&r, &s, &JoinPredicate::Equi);
        // Baseline run: establishes the timeline so the crash can be
        // placed squarely inside the join phase.
        let baseline = CycloJoin::new(r.clone(), s.clone())
            .hosts(6)
            .run()
            .expect("baseline should run");
        assert!(baseline.fault_free(), "no plan, no fault counters");
        let mid =
            baseline.setup_seconds() + 0.5 * (baseline.total_seconds() - baseline.setup_seconds());
        let plan = FaultPlan::seeded(1234)
            .crash_host(HostId(2), SimTime::ZERO + SimDuration::from_secs_f64(mid));
        let config = RingConfig::paper(6).with_ack_timeout(SimDuration::from_millis(2));
        let report = CycloJoin::new(r, s)
            .ring(config)
            .fault_plan(plan)
            .run()
            .expect("the healed ring should finish the join");
        assert_eq!(report.match_count(), reference.count);
        assert_eq!(report.checksum(), reference.checksum);
        assert_eq!(report.heal_events(), 1);
        assert!(
            report.retransmits() > 0,
            "death detection retransmits first"
        );
        assert!(report.detection_latency_seconds() > 0.0);
        assert!(!report.fault_free());
    }

    #[test]
    fn fault_plans_must_target_the_ring() {
        use data_roundabout::HostId;
        use simnet::time::{SimDuration, SimTime};
        let (r, s) = inputs();
        let plan =
            FaultPlan::seeded(1).crash_host(HostId(7), SimTime::ZERO + SimDuration::from_millis(1));
        let err = CycloJoin::new(r, s)
            .hosts(3)
            .fault_plan(plan)
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("targets host 7"), "got: {err}");
    }

    #[test]
    fn single_host_rings_cannot_heal() {
        use data_roundabout::HostId;
        use simnet::time::{SimDuration, SimTime};
        let (r, s) = inputs();
        let plan =
            FaultPlan::seeded(1).crash_host(HostId(0), SimTime::ZERO + SimDuration::from_millis(1));
        let err = CycloJoin::new(r, s)
            .hosts(1)
            .fault_plan(plan)
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("single-host"), "got: {err}");
    }

    #[test]
    fn threaded_backend_repairs_a_lossy_link() {
        use data_roundabout::HostId;
        use simnet::time::SimDuration;
        let (r, s) = inputs();
        let reference = reference_join(&r, &s, &JoinPredicate::Equi);
        let plan = FaultPlan::seeded(77).lossy_link(HostId(0), 0.3);
        let config = RingConfig::paper(3).with_ack_timeout(SimDuration::from_millis(15));
        let report = CycloJoin::new(r, s)
            .ring(config)
            .fault_plan(plan)
            .run_threaded()
            .expect("retransmissions should repair the link");
        assert_eq!(report.match_count(), reference.count);
        assert_eq!(report.checksum(), reference.checksum);
        assert!(report.retransmits() > 0, "a 30% lossy link must retransmit");
    }

    #[test]
    fn tcp_backend_matches_the_reference_result() {
        let (r, s) = inputs();
        let reference = reference_join(&r, &s, &JoinPredicate::Equi);
        let report = CycloJoin::new(r, s)
            .hosts(3)
            .run_tcp()
            .expect("tcp plan should run");
        assert_eq!(report.match_count(), reference.count);
        assert_eq!(report.checksum(), reference.checksum);
    }

    #[test]
    fn tcp_backend_heals_a_crash_over_real_sockets() {
        use data_roundabout::HostId;
        use simnet::time::{SimDuration, SimTime};
        let (r, s) = inputs();
        let reference = reference_join(&r, &s, &JoinPredicate::Equi);
        let plan = FaultPlan::seeded(99)
            .crash_host(HostId(1), SimTime::ZERO + SimDuration::from_millis(5));
        let config = RingConfig::paper(3)
            .with_ack_timeout(SimDuration::from_millis(8))
            .with_max_retransmits(3);
        let report = CycloJoin::new(r, s)
            .ring(config)
            .fault_plan(plan)
            .run_tcp()
            .expect("the healed ring should finish the join");
        assert_eq!(report.match_count(), reference.count);
        assert_eq!(report.checksum(), reference.checksum);
        assert_eq!(report.heal_events(), 1);
        assert!(report.detection_latency_seconds() > 0.0);
    }

    #[test]
    fn threaded_backend_rejects_crash_plans() {
        use data_roundabout::HostId;
        use simnet::time::{SimDuration, SimTime};
        let (r, s) = inputs();
        let plan =
            FaultPlan::seeded(1).crash_host(HostId(1), SimTime::ZERO + SimDuration::from_millis(1));
        let err = CycloJoin::new(r, s)
            .hosts(3)
            .fault_plan(plan)
            .run_threaded()
            .unwrap_err();
        assert!(matches!(err, PlanError::Backend(_)), "got: {err:?}");
        assert!(err.to_string().contains("simulated backend"), "got: {err}");
    }

    /// A drain mid-revolution hands the departing host's partition to its
    /// rendezvous owner; the join must still produce the exact reference
    /// result, with the epoch advanced and zero heal events.
    #[test]
    fn a_planned_drain_preserves_the_join_result() {
        use data_roundabout::{HostId, RescalePlan};
        use simnet::time::{SimDuration, SimTime};
        let (r, s) = inputs();
        let reference = reference_join(&r, &s, &JoinPredicate::Equi);
        let baseline = CycloJoin::new(r.clone(), s.clone())
            .hosts(3)
            .run()
            .expect("baseline should run");
        let mid =
            baseline.setup_seconds() + 0.5 * (baseline.total_seconds() - baseline.setup_seconds());
        let plan = RescalePlan::seeded(21)
            .drain_host(HostId(1), SimTime::ZERO + SimDuration::from_secs_f64(mid));
        let config = RingConfig::paper(3).with_ack_timeout(SimDuration::from_millis(2));
        let report = CycloJoin::new(r, s)
            .ring(config)
            .rescale_plan(plan)
            .run()
            .expect("the rescaled ring should finish the join");
        assert_eq!(report.match_count(), reference.count);
        assert_eq!(report.checksum(), reference.checksum);
        assert_eq!(report.membership_epoch(), 1);
        assert_eq!(report.rescale_drains(), 1);
        assert_eq!(report.rescale_handoffs(), 1, "host 1 owned one role");
        assert_eq!(report.rescale_escalations(), 0);
        assert_eq!(report.heal_events(), 0, "a clean drain never heals");
        assert!(report.render().contains("rescale: epoch 1"));
    }

    /// A standby host joins mid-revolution and takes over its rendezvous
    /// share of the stationary roles; the result stays exact.
    #[test]
    fn a_planned_join_preserves_the_join_result() {
        use data_roundabout::{HostId, RescalePlan};
        use simnet::time::{SimDuration, SimTime};
        let (r, s) = inputs();
        let reference = reference_join(&r, &s, &JoinPredicate::Equi);
        let plan = RescalePlan::seeded(22)
            .join_host(HostId(2), SimTime::ZERO + SimDuration::from_millis(5));
        let report = CycloJoin::new(r, s)
            .hosts(3)
            .rescale_plan(plan)
            .run()
            .expect("the grown ring should finish the join");
        assert_eq!(report.match_count(), reference.count);
        assert_eq!(report.checksum(), reference.checksum);
        assert_eq!(report.membership_epoch(), 1);
        assert_eq!(report.rescale_joins(), 1);
    }

    /// The same drain schedule over real loopback TCP sockets.
    #[test]
    fn tcp_backend_drains_a_host_over_real_sockets() {
        use data_roundabout::{HostId, RescalePlan};
        use simnet::time::{SimDuration, SimTime};
        // Large enough that the rotation outlives the drain instant on a
        // wall clock (the tcp backend schedules rescale in real time).
        let r = GenSpec::uniform(60_000, 102).generate();
        let s = GenSpec::uniform(60_000, 103).generate();
        let reference = reference_join(&r, &s, &JoinPredicate::Equi);
        let plan = RescalePlan::seeded(23)
            .drain_host(HostId(1), SimTime::ZERO + SimDuration::from_millis(2));
        let config = RingConfig::paper(3)
            .with_ack_timeout(SimDuration::from_millis(20))
            .with_max_retransmits(6);
        let report = CycloJoin::new(r, s)
            .ring(config)
            .rescale_plan(plan)
            .run_tcp()
            .expect("the rescaled tcp ring should finish the join");
        assert_eq!(report.match_count(), reference.count);
        assert_eq!(report.checksum(), reference.checksum);
        assert_eq!(report.membership_epoch(), 1);
        assert_eq!(report.rescale_drains(), 1);
        assert_eq!(report.heal_events(), 0);
    }

    #[test]
    fn threaded_backend_refuses_rescale_plans() {
        use data_roundabout::{HostId, RescalePlan};
        use simnet::time::{SimDuration, SimTime};
        let (r, s) = inputs();
        let plan = RescalePlan::seeded(1)
            .drain_host(HostId(1), SimTime::ZERO + SimDuration::from_millis(1));
        let err = CycloJoin::new(r, s)
            .hosts(3)
            .rescale_plan(plan)
            .run_threaded()
            .unwrap_err();
        assert!(matches!(err, PlanError::Backend(_)), "got: {err:?}");
        assert!(err.to_string().contains("stationary role"), "got: {err}");
    }

    #[test]
    fn rescale_plans_must_target_the_ring() {
        use data_roundabout::{HostId, RescalePlan};
        use simnet::time::{SimDuration, SimTime};
        let (r, s) = inputs();
        let plan = RescalePlan::seeded(1)
            .drain_host(HostId(7), SimTime::ZERO + SimDuration::from_millis(1));
        let err = CycloJoin::new(r.clone(), s.clone())
            .hosts(3)
            .rescale_plan(plan)
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("targets host 7"), "got: {err}");
        let all_standby = RescalePlan::seeded(1)
            .join_host(HostId(0), SimTime::ZERO + SimDuration::from_millis(1))
            .join_host(HostId(1), SimTime::ZERO + SimDuration::from_millis(1));
        let err = CycloJoin::new(r, s)
            .hosts(2)
            .rescale_plan(all_standby)
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("every host"), "got: {err}");
    }

    #[test]
    fn materialized_output_round_trips() {
        let r = GenSpec::uniform(500, 9).generate();
        let s = GenSpec::uniform(500, 10).generate();
        let report = CycloJoin::new(r.clone(), s.clone())
            .hosts(2)
            .output(OutputMode::Materialize)
            .run()
            .expect("plan should run");
        assert_eq!(report.result.matches().count() as u64, report.match_count());
    }
}
