//! The distributed join result.
//!
//! After one full revolution, host `H_i` holds the partial result
//! `R ⋈ S_i`; the union over hosts is the complete `R ⋈ S`, "available as
//! a distributed table spread across all hosts, ready for further
//! processing" (§IV-B). [`DistributedResult`] is that table: per-host
//! collectors plus global count/checksum views.

use mem_joins::JoinCollector;
use relation::{Checksum, MatchPair, Relation, Tuple};

/// The distributed output of one cyclo-join run.
#[derive(Debug, Clone, Default)]
pub struct DistributedResult {
    partials: Vec<JoinCollector>,
}

impl DistributedResult {
    /// Wraps the per-host partial results.
    pub fn new(partials: Vec<JoinCollector>) -> Self {
        DistributedResult { partials }
    }

    /// Number of hosts holding a partial result.
    pub fn hosts(&self) -> usize {
        self.partials.len()
    }

    /// The partial result held at host `h`.
    pub fn partial(&self, h: usize) -> &JoinCollector {
        &self.partials[h]
    }

    /// Total number of matches across all hosts.
    pub fn count(&self) -> u64 {
        self.partials.iter().map(JoinCollector::count).sum()
    }

    /// Order-independent checksum over the full distributed result.
    pub fn checksum(&self) -> Checksum {
        self.partials
            .iter()
            .map(JoinCollector::checksum)
            .fold(Checksum::new(), |acc, c| acc.combine(&c))
    }

    /// Iterator over all materialized matches (empty if the run aggregated).
    pub fn matches(&self) -> impl Iterator<Item = &MatchPair> {
        self.partials.iter().flat_map(|c| c.matches().iter())
    }

    /// Projects the materialized matches into a new relation using `f` —
    /// the hand-off that feeds a subsequent join in a larger plan, e.g. the
    /// ternary `(R ⋈ S) ⋈ T` (§IV-A).
    pub fn project(&self, f: impl Fn(&MatchPair) -> Tuple) -> Relation {
        self.matches().map(f).collect()
    }

    /// Per-host match counts — how evenly the result is spread.
    pub fn counts_per_host(&self) -> Vec<u64> {
        self.partials.iter().map(JoinCollector::count).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::Tuple;

    fn collector_with(keys: &[u32]) -> JoinCollector {
        let mut c = JoinCollector::materializing();
        for &k in keys {
            c.push(MatchPair::new(Tuple::new(k, 1), Tuple::new(k, 2)));
        }
        c
    }

    #[test]
    fn global_views_aggregate_partials() {
        let result = DistributedResult::new(vec![
            collector_with(&[1, 2]),
            collector_with(&[3]),
            collector_with(&[]),
        ]);
        assert_eq!(result.hosts(), 3);
        assert_eq!(result.count(), 3);
        assert_eq!(result.counts_per_host(), vec![2, 1, 0]);
        assert_eq!(result.matches().count(), 3);
    }

    #[test]
    fn checksum_equals_single_collector_checksum() {
        let whole = collector_with(&[1, 2, 3, 4]);
        let split = DistributedResult::new(vec![collector_with(&[1, 2]), collector_with(&[3, 4])]);
        assert_eq!(split.checksum(), whole.checksum());
    }

    #[test]
    fn project_builds_a_relation() {
        let result = DistributedResult::new(vec![collector_with(&[5, 6])]);
        let rel = result.project(|m| Tuple::new(m.key, m.s_payload));
        assert_eq!(rel.len(), 2);
        assert!(rel.keys().contains(&5));
    }

    #[test]
    fn empty_result() {
        let result = DistributedResult::default();
        assert_eq!(result.count(), 0);
        assert!(result.checksum().is_empty());
    }
}
