//! Run reports: the phase breakdowns every paper exhibit is built from.

use data_roundabout::RingMetrics;
use relation::Checksum;
use simnet::cpu::CpuSpec;
use simnet::span::{SpanKind, SpanTracer};
use simnet::time::SimDuration;

use crate::result::DistributedResult;

/// The complete record of one cyclo-join run.
#[derive(Debug)]
pub struct CycloJoinReport {
    /// Name of the local join algorithm used on every host.
    pub algorithm: &'static str,
    /// Name of the transport (RDMA / TOE / TCP).
    pub transport: &'static str,
    /// Ring size.
    pub hosts: usize,
    /// Join-entity threads per host.
    pub join_threads: usize,
    /// Whether the logical `S` was the rotating side.
    pub swapped: bool,
    /// Total input volume in bytes (`|R| + |S|`, 12 bytes per tuple).
    pub data_volume: u64,
    /// The host CPU spec (for load calculations).
    pub cpu: CpuSpec,
    /// Per-host and ring-wide timing/CPU metrics.
    pub ring: RingMetrics,
    /// The distributed join result.
    pub result: DistributedResult,
    /// Structured spans/events/counters of the run (disabled unless the
    /// plan enabled tracing); export with [`CycloJoinReport::chrome_trace`].
    pub spans: SpanTracer,
}

impl CycloJoinReport {
    /// Setup-phase wall time in seconds (max over hosts, as the paper
    /// reports it — hosts set up in parallel).
    pub fn setup_seconds(&self) -> f64 {
        self.ring.setup_time().as_secs_f64()
    }

    /// Join-phase wall time in seconds (max over hosts; includes waiting).
    pub fn join_window_seconds(&self) -> f64 {
        self.ring.join_time().as_secs_f64()
    }

    /// Busy join time in seconds (max over hosts, excluding waiting) — the
    /// white "join" bars of the figures.
    pub fn join_seconds(&self) -> f64 {
        self.ring.join_busy_time().as_secs_f64()
    }

    /// Synchronization time in seconds (max over hosts) — the light-gray
    /// "sync" bars of Figures 11 and 12.
    pub fn sync_seconds(&self) -> f64 {
        self.ring.sync_time().as_secs_f64()
    }

    /// End-to-end wall-clock seconds.
    pub fn total_seconds(&self) -> f64 {
        self.ring.wall_clock.as_secs_f64()
    }

    /// Mean CPU load over hosts during the join phase (Table I).
    pub fn join_phase_cpu_load(&self) -> f64 {
        self.ring.mean_join_phase_load(self.cpu)
    }

    /// Number of matches in the distributed result.
    pub fn match_count(&self) -> u64 {
        self.result.count()
    }

    /// Checksum of the distributed result.
    pub fn checksum(&self) -> Checksum {
        self.result.checksum()
    }

    /// Achieved per-link throughput in bytes/second (§V-F's comparison
    /// against the physical 10 Gb/s ceiling).
    pub fn link_throughput(&self) -> f64 {
        self.ring.peak_link_throughput()
    }

    /// Ring-healing events: confirmed host deaths the surviving ring
    /// bypassed mid-revolution.
    pub fn heal_events(&self) -> usize {
        self.ring.heal_events
    }

    /// Worst-case failure-detection latency in seconds (crash → the
    /// predecessor exhausting its retransmission budget).
    pub fn detection_latency_seconds(&self) -> f64 {
        self.ring.detection_latency.as_secs_f64()
    }

    /// Total hop retransmissions across all hosts.
    pub fn retransmits(&self) -> u64 {
        self.ring.total_retransmits()
    }

    /// Total corrupted deliveries detected by receive-side checksums.
    pub fn checksum_mismatches(&self) -> u64 {
        self.ring.total_checksum_mismatches()
    }

    /// Fragments re-sent from their origin after dying in a crashed
    /// host's buffers.
    pub fn fragments_resent(&self) -> usize {
        self.ring.fragments_resent
    }

    /// True if the run saw no faults at all (the baseline invariant:
    /// runs without a fault plan must always report this).
    pub fn fault_free(&self) -> bool {
        self.ring.fault_free()
    }

    /// The final membership epoch: completed planned joins + drains.
    /// Zero on runs without a rescale plan.
    pub fn membership_epoch(&self) -> u64 {
        self.ring.membership_epoch
    }

    /// Completed planned host joins (standby activations).
    pub fn rescale_joins(&self) -> u64 {
        self.ring.rescale_joins
    }

    /// Completed graceful host drains.
    pub fn rescale_drains(&self) -> u64 {
        self.ring.rescale_drains
    }

    /// Stationary partitions moved by planned rescale handoffs.
    pub fn rescale_handoffs(&self) -> u64 {
        self.ring.rescale_handoffs
    }

    /// Drains that stalled past their deadline and degraded into crash
    /// healing.
    pub fn rescale_escalations(&self) -> u64 {
        self.ring.rescale_escalations
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{} over {} on {} host(s): setup {:.3}s, join {:.3}s, sync {:.3}s, {} matches",
            self.algorithm,
            self.transport,
            self.hosts,
            self.setup_seconds(),
            self.join_seconds(),
            self.sync_seconds(),
            self.match_count(),
        )
    }

    /// A multi-line human-readable report table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cyclo-join: {} ⋈ via {} | transport {} | {} hosts × {} threads\n",
            volume_label(self.data_volume),
            self.algorithm,
            self.transport,
            self.hosts,
            self.join_threads,
        ));
        out.push_str(&format!(
            "  phases: setup {:8.3}s  join {:8.3}s  sync {:8.3}s  total {:8.3}s\n",
            self.setup_seconds(),
            self.join_seconds(),
            self.sync_seconds(),
            self.total_seconds(),
        ));
        out.push_str(&format!(
            "  result: {} matches, checksum {:016x}, cpu load {:.0}%\n",
            self.match_count(),
            self.checksum().sum,
            self.join_phase_cpu_load() * 100.0,
        ));
        if !self.fault_free() {
            out.push_str(&format!(
                "  faults: {} heal(s), detection {:.3}s, {} retransmit(s), \
                 {} checksum mismatch(es), {} fragment(s) re-sent\n",
                self.heal_events(),
                self.detection_latency_seconds(),
                self.retransmits(),
                self.checksum_mismatches(),
                self.fragments_resent(),
            ));
        }
        if self.membership_epoch() > 0 || self.rescale_escalations() > 0 {
            out.push_str(&format!(
                "  rescale: epoch {}, {} join(s), {} drain(s), {} handoff(s), \
                 {} escalation(s)\n",
                self.membership_epoch(),
                self.rescale_joins(),
                self.rescale_drains(),
                self.rescale_handoffs(),
                self.rescale_escalations(),
            ));
        }
        out.push_str("  per host: setup / busy / sync (s), fragments\n");
        for (i, h) in self.ring.hosts.iter().enumerate() {
            out.push_str(&format!(
                "    H{i}: {:7.3} / {:7.3} / {:7.3}  {:4} fragments\n",
                h.setup.as_secs_f64(),
                h.join_busy.as_secs_f64(),
                h.sync.as_secs_f64(),
                h.fragments_processed,
            ));
        }
        out
    }

    /// Exports the structured trace as Chrome trace-event JSON, ready for
    /// `chrome://tracing` or <https://ui.perfetto.dev>. Empty-but-valid
    /// when the run was not traced.
    pub fn chrome_trace(&self) -> String {
        self.spans.to_chrome_trace()
    }

    /// Per-revolution, per-host timeline summary built from the traced
    /// join spans: revolution `k` covers the joins each fragment performs
    /// at its `k`-th stop (hop `k` of the rotation). Returns one line per
    /// (host, hop) pair that saw work, plus a header; empty when the run
    /// was not traced.
    pub fn revolution_summary(&self) -> String {
        let joins: Vec<_> = self
            .spans
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Join)
            .collect();
        if joins.is_empty() {
            return String::new();
        }
        let mut out = String::from("  per host, per hop of the revolution: joins (busy s)\n");
        for h in 0..self.hosts {
            let mut line = format!("    H{h}:");
            let mut any = false;
            for hop in 0..self.hosts.max(1) {
                let (count, busy) = joins
                    .iter()
                    .filter(|s| s.host == h && s.hop == Some(hop))
                    .fold((0usize, SimDuration::ZERO), |(c, d), s| {
                        (c + 1, d.saturating_add(s.duration))
                    });
                if count > 0 {
                    line.push_str(&format!(
                        "  hop {hop}: {count} ({:.3}s)",
                        busy.as_secs_f64()
                    ));
                    any = true;
                }
            }
            if any {
                line.push('\n');
                out.push_str(&line);
            }
        }
        out
    }
}

impl std::fmt::Display for CycloJoinReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Pretty data-volume label.
fn volume_label(bytes: u64) -> String {
    if bytes >= 1 << 30 {
        format!("{:.1} GB", bytes as f64 / (1u64 << 30) as f64)
    } else if bytes >= 1 << 20 {
        format!("{:.1} MB", bytes as f64 / (1u64 << 20) as f64)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use data_roundabout::HostMetrics;

    fn sample_report() -> CycloJoinReport {
        CycloJoinReport {
            algorithm: "partitioned-hash",
            transport: "RDMA",
            hosts: 2,
            join_threads: 4,
            swapped: false,
            data_volume: 3 << 20,
            cpu: CpuSpec::paper_xeon(),
            ring: RingMetrics {
                hosts: vec![
                    HostMetrics {
                        setup: SimDuration::from_millis(100),
                        join_busy: SimDuration::from_millis(400),
                        sync: SimDuration::from_millis(50),
                        join_window: SimDuration::from_millis(450),
                        ..HostMetrics::default()
                    },
                    HostMetrics {
                        setup: SimDuration::from_millis(120),
                        join_busy: SimDuration::from_millis(380),
                        sync: SimDuration::from_millis(20),
                        join_window: SimDuration::from_millis(400),
                        ..HostMetrics::default()
                    },
                ],
                wall_clock: SimDuration::from_millis(570),
                fragments_completed: 4,
                ..RingMetrics::default()
            },
            result: DistributedResult::default(),
            spans: SpanTracer::disabled(),
        }
    }

    #[test]
    fn phase_accessors_take_maxima() {
        let r = sample_report();
        assert!((r.setup_seconds() - 0.12).abs() < 1e-9);
        assert!((r.join_seconds() - 0.4).abs() < 1e-9);
        assert!((r.sync_seconds() - 0.05).abs() < 1e-9);
        assert!((r.total_seconds() - 0.57).abs() < 1e-9);
    }

    #[test]
    fn render_contains_the_essentials() {
        let rendered = sample_report().render();
        assert!(rendered.contains("partitioned-hash"));
        assert!(rendered.contains("RDMA"));
        assert!(rendered.contains("H0"));
        assert!(rendered.contains("H1"));
        assert!(rendered.contains("3.0 MB"));
    }

    #[test]
    fn summary_is_one_line() {
        let s = sample_report().summary();
        assert_eq!(s.lines().count(), 1);
        assert!(s.contains("2 host(s)"));
    }

    #[test]
    fn fault_line_appears_only_on_faulty_runs() {
        let clean = sample_report();
        assert!(clean.fault_free());
        assert!(!clean.render().contains("faults:"));
        let mut faulty = sample_report();
        faulty.ring.heal_events = 1;
        faulty.ring.detection_latency = SimDuration::from_millis(75);
        faulty.ring.hosts[0].retransmits = 4;
        faulty.ring.fragments_resent = 2;
        assert!(!faulty.fault_free());
        assert_eq!(faulty.heal_events(), 1);
        assert_eq!(faulty.retransmits(), 4);
        assert_eq!(faulty.fragments_resent(), 2);
        assert!((faulty.detection_latency_seconds() - 0.075).abs() < 1e-9);
        let rendered = faulty.render();
        assert!(rendered.contains("faults: 1 heal(s)"));
        assert!(rendered.contains("4 retransmit(s)"));
    }

    #[test]
    fn volume_labels() {
        assert_eq!(volume_label(512), "512 B");
        assert_eq!(volume_label(2 << 20), "2.0 MB");
        assert_eq!(volume_label(3 << 30), "3.0 GB");
    }

    #[test]
    fn untraced_report_has_no_revolution_summary() {
        let r = sample_report();
        assert!(r.revolution_summary().is_empty());
        // The Chrome export is still a valid (empty) document.
        assert!(r.chrome_trace().starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn revolution_summary_groups_joins_by_host_and_hop() {
        use simnet::time::SimTime;
        let mut r = sample_report();
        let mut spans = SpanTracer::enabled();
        spans.span_with_hop(
            0,
            SpanKind::Join,
            "join F0",
            SimTime::from_nanos(0),
            SimDuration::from_millis(10),
            Some(0),
        );
        spans.span_with_hop(
            0,
            SpanKind::Join,
            "join F1",
            SimTime::from_nanos(1),
            SimDuration::from_millis(20),
            Some(1),
        );
        spans.span_with_hop(
            1,
            SpanKind::Join,
            "join F0",
            SimTime::from_nanos(2),
            SimDuration::from_millis(5),
            Some(1),
        );
        r.spans = spans;
        let summary = r.revolution_summary();
        assert!(summary.contains("H0:"), "{summary}");
        assert!(summary.contains("hop 0: 1 (0.010s)"), "{summary}");
        assert!(summary.contains("hop 1: 1 (0.020s)"), "{summary}");
        assert!(summary.contains("H1:"), "{summary}");
        assert!(summary.contains("hop 1: 1 (0.005s)"), "{summary}");
    }
}
