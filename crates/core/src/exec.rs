//! Execution: wiring cyclo-join onto the Data Roundabout backends.
//!
//! The simulated path implements [`RingApp`] so the DES backend drives
//! setup and per-fragment joins in virtual time; the threaded path runs
//! the same joins on the real-thread backend for live validation.

use data_roundabout::{
    FaultPlan, HostId, RegisteredPool, RescalePlan, RingApp, RingConfig, RingError, RingMetrics,
    SimRing,
};
use mem_joins::{
    Algorithm, JoinCollector, JoinPredicate, OutputMode, PreparedFragment, StationaryState,
};
use relation::Relation;
use simnet::span::{SpanKind, SpanTracer};
use simnet::time::{SimDuration, SimTime};
use simnet::trace::Tracer;
use simnet::transport::TransportModel;

// The shim resolves to `std::sync::Mutex` in normal builds and to the
// model checker's instrumented mutex under `--cfg loom`, so the threaded
// execution path stays model-checkable end to end.
use data_roundabout::sync::Mutex;

use crate::compute::ComputeMode;
use crate::distribute::Placement;
use crate::result::DistributedResult;

/// Everything a backend run produces.
#[derive(Debug)]
pub(crate) struct ExecOutcome {
    pub metrics: RingMetrics,
    pub result: DistributedResult,
    pub trace: Tracer,
    pub spans: SpanTracer,
}

/// Mirrors a predicate for swapped-side execution: `p'(a, b) = p(b, a)`.
/// Equi and band predicates are symmetric; theta predicates flip their
/// arguments.
pub(crate) fn mirror_predicate(p: &JoinPredicate) -> JoinPredicate {
    match p {
        JoinPredicate::Equi => JoinPredicate::Equi,
        JoinPredicate::Band { delta } => JoinPredicate::Band { delta: *delta },
        JoinPredicate::Theta(f) => {
            let f = f.clone();
            JoinPredicate::theta(move |a, b| f(b, a))
        }
    }
}

/// The [`RingApp`] that turns Data Roundabout into cyclo-join.
struct CycloApp {
    algorithm: Algorithm,
    predicate: JoinPredicate,
    threads: usize,
    compute: ComputeMode,
    radix_bits: u32,
    /// False in the §IV-D ablation mode: fragments rotate in raw form and
    /// every host re-prepares (re-partitions / re-sorts) each one at
    /// encounter time instead of reusing the origin host's preparation.
    ship_prepared: bool,
    /// Stationary input per host, consumed by `setup`.
    stationary_inputs: Vec<Option<Relation>>,
    /// Raw stationary partitions, retained only under fault injection so a
    /// ring survivor can rebuild a dead host's state ([`RingApp::absorb`]).
    stationary_raw: Vec<Relation>,
    /// Extra setup-phase cost per host: local fragment preparation plus
    /// ring-buffer registration.
    setup_extra: Vec<SimDuration>,
    /// Stationary state per *logical role* (role `i` = the partition `S_i`
    /// originally placed on host `i`). Under ring healing a role's state
    /// may be rebuilt on a surviving host; the index keeps meaning the
    /// role, not the machine.
    states: Vec<Option<StationaryState>>,
    collectors: Vec<JoinCollector>,
}

impl RingApp<PreparedFragment> for CycloApp {
    fn setup(&mut self, host: HostId) -> SimDuration {
        // `RingApp` methods have no error channel: contract violations are
        // surfaced by debug_asserts and absorbed as no-ops in release.
        let Some(s) = self
            .stationary_inputs
            .get_mut(host.0)
            .and_then(Option::take)
        else {
            debug_assert!(false, "setup called twice for host {}", host.0);
            return SimDuration::ZERO;
        };
        let (state, build) =
            self.compute
                .setup_stationary(&self.algorithm, &s, self.radix_bits, self.threads);
        if let Some(slot) = self.states.get_mut(host.0) {
            *slot = Some(state);
        }
        build
            + self
                .setup_extra
                .get(host.0)
                .copied()
                .unwrap_or(SimDuration::ZERO)
    }

    fn process(
        &mut self,
        host: HostId,
        _now: simnet::time::SimTime,
        fragment: &PreparedFragment,
    ) -> SimDuration {
        let Some(state) = self.states.get(host.0).and_then(Option::as_ref) else {
            debug_assert!(false, "process before setup completed on host {}", host.0);
            return SimDuration::ZERO;
        };
        let Some(collector) = self.collectors.get_mut(host.0) else {
            debug_assert!(false, "no collector for host {}", host.0);
            return SimDuration::ZERO;
        };
        if !self.ship_prepared {
            // Raw shipping: the paper's §IV-D counterfactual. The fragment
            // arrives unorganized and must be partitioned/sorted here,
            // once per encounter, before the join phase proper.
            if let PreparedFragment::Plain(rel) = fragment {
                let (prepared, d_prep) = self.compute.prepare_fragment(
                    &self.algorithm,
                    rel,
                    self.radix_bits,
                    self.threads,
                );
                let d_join = self.compute.join(
                    &self.algorithm,
                    state,
                    &prepared,
                    &self.predicate,
                    self.threads,
                    collector,
                );
                return d_prep + d_join;
            }
        }
        self.compute.join(
            &self.algorithm,
            state,
            fragment,
            &self.predicate,
            self.threads,
            collector,
        )
    }

    fn process_roles(
        &mut self,
        host: HostId,
        roles: &[usize],
        _now: simnet::time::SimTime,
        fragment: &PreparedFragment,
    ) -> SimDuration {
        let mut total = SimDuration::ZERO;
        // Raw shipping (§IV-D ablation): reorganize once per encounter,
        // shared by however many roles this host serves.
        let mut reprepared = None;
        if !self.ship_prepared {
            if let PreparedFragment::Plain(rel) = fragment {
                let (prepared, d_prep) = self.compute.prepare_fragment(
                    &self.algorithm,
                    rel,
                    self.radix_bits,
                    self.threads,
                );
                total += d_prep;
                reprepared = Some(prepared);
            }
        }
        let frag = reprepared.as_ref().unwrap_or(fragment);
        let Some(collector) = self.collectors.get_mut(host.0) else {
            debug_assert!(false, "no collector for host {}", host.0);
            return total;
        };
        for &role in roles {
            let Some(state) = self.states.get(role).and_then(Option::as_ref) else {
                debug_assert!(
                    false,
                    "join against role {role} whose stationary state is absent"
                );
                continue;
            };
            total += self.compute.join(
                &self.algorithm,
                state,
                frag,
                &self.predicate,
                self.threads,
                collector,
            );
        }
        total
    }

    fn absorb(&mut self, _survivor: HostId, failed: HostId) -> SimDuration {
        // Ring healing: rebuild the orphaned role's stationary state on the
        // survivor, priced like the original setup of that share. A missing
        // share means the raw partitions were not retained (a driver bug —
        // they are kept whenever a fault plan exists); the role's state then
        // stays absent and the result checksum verification downstream
        // reports the loss.
        let Ok(share) = crate::recovery::takeover(&self.stationary_raw, failed.0) else {
            debug_assert!(
                false,
                "ring healing needs the raw stationary partitions of a multi-host ring"
            );
            return SimDuration::ZERO;
        };
        let (state, d) =
            self.compute
                .setup_stationary(&self.algorithm, &share, self.radix_bits, self.threads);
        if let Some(slot) = self.states.get_mut(failed.0) {
            *slot = Some(state);
        }
        d
    }
}

/// Prepares all rotating fragments, returning them with per-host prep
/// time. With `ship_prepared == false` (the §IV-D ablation) fragments are
/// left raw — preparation then happens per encounter during the join
/// phase instead of once at the origin.
fn prepare_all(
    algorithm: &Algorithm,
    compute: &ComputeMode,
    placement: &Placement,
    radix_bits: u32,
    threads: usize,
    ship_prepared: bool,
) -> (Vec<Vec<PreparedFragment>>, Vec<SimDuration>) {
    let mut fragments = Vec::with_capacity(placement.rotating.len());
    let mut prep = Vec::with_capacity(placement.rotating.len());
    for host_frags in &placement.rotating {
        let mut prepared = Vec::with_capacity(host_frags.len());
        let mut host_prep = SimDuration::ZERO;
        for frag in host_frags {
            if ship_prepared {
                let (pf, d) = compute.prepare_fragment(algorithm, frag, radix_bits, threads);
                host_prep += d;
                prepared.push(pf);
            } else {
                prepared.push(PreparedFragment::Plain(frag.clone()));
            }
        }
        fragments.push(prepared);
        prep.push(host_prep);
    }
    (fragments, prep)
}

/// One-time registration cost of each host's ring-buffer pool (RDMA only:
/// kernel TCP needs no pinned memory, §III-C).
pub(crate) fn registration_cost(config: &RingConfig, element_bytes: u64) -> SimDuration {
    match config.transport {
        TransportModel::Rdma(rnic) => {
            RegisteredPool::new(config.buffers_per_host, element_bytes.max(1))
                .registration_cost(&rnic)
        }
        _ => SimDuration::ZERO,
    }
}

/// Runs cyclo-join on the simulated (virtual-time) backend.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_simulated(
    config: &RingConfig,
    algorithm: Algorithm,
    predicate: &JoinPredicate,
    compute: &ComputeMode,
    output: OutputMode,
    placement: Placement,
    ship_prepared: bool,
    host_speeds: Option<Vec<f64>>,
    fault_plan: Option<FaultPlan>,
    rescale_plan: Option<RescalePlan>,
    trace: bool,
) -> ExecOutcome {
    let hosts = config.hosts;
    let predicate = if placement.swapped {
        mirror_predicate(predicate)
    } else {
        predicate.clone()
    };
    let radix_bits = algorithm.ring_radix_bits(placement.max_stationary_tuples().max(1));
    let (fragments, mut setup_extra) = prepare_all(
        &algorithm,
        compute,
        &placement,
        radix_bits,
        config.join_threads,
        ship_prepared,
    );
    let reg = registration_cost(config, placement.max_fragment_bytes());
    for extra in &mut setup_extra {
        *extra += reg;
    }
    let collector_template = {
        let c = JoinCollector::new(output);
        if placement.swapped {
            c.with_swapped_sides()
        } else {
            c
        }
    };
    // Keep raw partitions when faults can kill hosts or a rescale can
    // hand roles off: they are the source a takeover rebuilds an orphaned
    // or handed-off role's state from.
    let stationary_raw = if fault_plan.is_some() || rescale_plan.is_some() {
        placement.stationary.clone()
    } else {
        Vec::new()
    };
    let app = CycloApp {
        algorithm,
        predicate,
        threads: config.join_threads,
        compute: *compute,
        radix_bits,
        ship_prepared,
        stationary_inputs: placement.stationary.into_iter().map(Some).collect(),
        stationary_raw,
        setup_extra,
        states: (0..hosts).map(|_| None).collect(),
        collectors: (0..hosts).map(|_| collector_template.child()).collect(),
    };
    let mut ring = SimRing::new(*config, fragments, app).with_trace(trace);
    if let Some(speeds) = host_speeds {
        ring = ring.with_host_speeds(speeds);
    }
    if let Some(plan) = fault_plan {
        ring = ring.with_fault_plan(plan);
    }
    if let Some(plan) = rescale_plan {
        ring = ring.with_rescale_plan(plan);
    }
    let outcome = ring.run();
    ExecOutcome {
        metrics: outcome.metrics,
        result: DistributedResult::new(outcome.app.collectors),
        trace: outcome.trace,
        spans: outcome.spans,
    }
}

/// Runs cyclo-join on the real-thread backend. Setup runs (and is timed)
/// before the rotation; the reported per-host setup time is stitched into
/// the returned metrics, and — when `trace` is set — per-host `Setup`
/// spans are stitched ahead of the ring's spans on one common timeline.
pub(crate) fn execute_threaded(
    config: &RingConfig,
    algorithm: Algorithm,
    predicate: &JoinPredicate,
    output: OutputMode,
    placement: Placement,
    fault_plan: Option<&FaultPlan>,
    trace: bool,
) -> Result<ExecOutcome, RingError> {
    let predicate = if placement.swapped {
        mirror_predicate(predicate)
    } else {
        predicate.clone()
    };
    let radix_bits = algorithm.ring_radix_bits(placement.max_stationary_tuples().max(1));
    let threads = config.join_threads;
    let compute = ComputeMode::Measured;
    let (fragments, prep) =
        prepare_all(&algorithm, &compute, &placement, radix_bits, threads, true);

    let mut states = Vec::with_capacity(config.hosts);
    let mut setup_times = Vec::with_capacity(config.hosts);
    for (s, p) in placement.stationary.iter().zip(&prep) {
        let (state, d) = compute.setup_stationary(&algorithm, s, radix_bits, threads);
        states.push(state);
        setup_times.push(d + *p);
    }

    let collectors: Vec<Mutex<JoinCollector>> = (0..config.hosts)
        .map(|_| {
            let c = JoinCollector::new(output);
            Mutex::new(if placement.swapped {
                c.with_swapped_sides()
            } else {
                c
            })
        })
        .collect();

    let join_visit = |host: HostId, frag: &PreparedFragment| {
        let (Some(shared_collector), Some(state)) = (collectors.get(host.0), states.get(host.0))
        else {
            debug_assert!(false, "join visit for unknown host {}", host.0);
            return;
        };
        // A join that panicked on this host poisons the collector; recover
        // the inner value so concurrent joins keep collecting while the
        // ring tears down with a typed error instead of a panic storm.
        let mut collector = shared_collector
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        algorithm.join(state, frag, &predicate, threads, &mut collector);
    };
    let mut driver = data_roundabout::RingDriver::new(config).with_tracer(trace);
    if let Some(plan) = fault_plan {
        driver = driver.with_fault_plan(plan);
    }
    let (mut metrics, mut ring_spans) = driver.run(fragments, join_visit)?;
    let mut spans = if trace {
        SpanTracer::enabled()
    } else {
        SpanTracer::disabled()
    };
    // The ring measured its spans from the rotation start; the setup phase
    // ran before it. Stitch one timeline: setup spans at the origin, ring
    // spans shifted past the longest setup (the rotation barrier).
    let max_setup = setup_times
        .iter()
        .copied()
        .fold(SimDuration::ZERO, SimDuration::max);
    ring_spans.shift(max_setup);
    for (h, d) in setup_times.into_iter().enumerate() {
        if let Some(host_metrics) = metrics.hosts.get_mut(h) {
            host_metrics.setup = d;
        }
        spans.span(h, SpanKind::Setup, "setup", SimTime::ZERO, d);
    }
    spans.merge(ring_spans);
    let partials = collectors
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
        })
        .collect();
    Ok(ExecOutcome {
        metrics,
        result: DistributedResult::new(partials),
        trace: Tracer::disabled(),
        spans,
    })
}

/// Which driver realizes the loopback-TCP wire protocol: the blocking
/// thread-per-endpoint driver, or the single-threaded event-loop reactor.
/// Both speak identical frames and dice, so everything in
/// [`execute_tcp`] above the driver construction is shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SocketBackend {
    Blocking,
    Reactor,
}

/// Runs cyclo-join over real loopback TCP sockets. Setup and span
/// stitching follow the threaded path; unlike it, this path is role-aware
/// so a seeded crash heals mid-revolution over actual connections (the
/// survivor rebuilds the dead host's stationary state from the retained
/// raw partitions, exactly as the simulated path prices it). `flavor`
/// picks the blocking or the reactor driver; nothing else differs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_tcp(
    config: &RingConfig,
    algorithm: Algorithm,
    predicate: &JoinPredicate,
    output: OutputMode,
    placement: Placement,
    fault_plan: Option<&FaultPlan>,
    rescale_plan: Option<&RescalePlan>,
    trace: bool,
    flavor: SocketBackend,
) -> Result<ExecOutcome, RingError> {
    let predicate = if placement.swapped {
        mirror_predicate(predicate)
    } else {
        predicate.clone()
    };
    let radix_bits = algorithm.ring_radix_bits(placement.max_stationary_tuples().max(1));
    let threads = config.join_threads;
    let compute = ComputeMode::Measured;
    let (fragments, prep) =
        prepare_all(&algorithm, &compute, &placement, radix_bits, threads, true);

    let mut setup_times = Vec::with_capacity(config.hosts);
    let mut initial_states = Vec::with_capacity(config.hosts);
    for (s, p) in placement.stationary.iter().zip(&prep) {
        let (state, d) = compute.setup_stationary(&algorithm, s, radix_bits, threads);
        initial_states.push(state);
        setup_times.push(d + *p);
    }
    // Raw partitions are the source a takeover rebuilds an orphaned or
    // handed-off role's state from; faults and rescales both reach it.
    let stationary_raw = if fault_plan.is_some() || rescale_plan.is_some() {
        placement.stationary.clone()
    } else {
        Vec::new()
    };
    // One slot per *logical role*; ring healing replaces a dead role's
    // state with the survivor's rebuild, so the slots need a lock.
    let states: Vec<Mutex<Option<StationaryState>>> = initial_states
        .into_iter()
        .map(|s| Mutex::new(Some(s)))
        .collect();
    let collectors: Vec<Mutex<JoinCollector>> = (0..config.hosts)
        .map(|_| {
            let c = JoinCollector::new(output);
            Mutex::new(if placement.swapped {
                c.with_swapped_sides()
            } else {
                c
            })
        })
        .collect();

    let join_visit = |host: HostId, roles: &[usize], frag: &PreparedFragment| {
        let Some(shared_collector) = collectors.get(host.0) else {
            debug_assert!(false, "join visit for unknown host {}", host.0);
            return;
        };
        let mut collector = shared_collector
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for &role in roles {
            let Some(slot) = states.get(role) else {
                debug_assert!(false, "join against unknown role {role}");
                continue;
            };
            let guard = slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            let Some(state) = guard.as_ref() else {
                debug_assert!(false, "join against role {role} whose state is absent");
                continue;
            };
            algorithm.join(state, frag, &predicate, threads, &mut collector);
        }
    };
    let absorb = |_survivor: HostId, role: usize| {
        let Ok(share) = crate::recovery::takeover(&stationary_raw, role) else {
            debug_assert!(
                false,
                "ring healing needs the raw stationary partitions of a multi-host ring"
            );
            return;
        };
        let (state, _) = compute.setup_stationary(&algorithm, &share, radix_bits, threads);
        if let Some(slot) = states.get(role) {
            *slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(state);
        }
    };

    let (mut metrics, mut ring_spans) = match flavor {
        SocketBackend::Blocking => {
            let mut driver = data_roundabout::TcpRingDriver::new(config).with_tracer(trace);
            if let Some(plan) = fault_plan {
                driver = driver.with_fault_plan(plan);
            }
            if let Some(plan) = rescale_plan {
                driver = driver.with_rescale_plan(plan);
            }
            driver.run_with_roles(fragments, join_visit, absorb)?
        }
        SocketBackend::Reactor => {
            let mut driver = data_roundabout::ReactorRingDriver::new(config).with_tracer(trace);
            if let Some(plan) = fault_plan {
                driver = driver.with_fault_plan(plan);
            }
            if let Some(plan) = rescale_plan {
                driver = driver.with_rescale_plan(plan);
            }
            driver.run_with_roles(fragments, join_visit, absorb)?
        }
    };
    let mut spans = if trace {
        SpanTracer::enabled()
    } else {
        SpanTracer::disabled()
    };
    let max_setup = setup_times
        .iter()
        .copied()
        .fold(SimDuration::ZERO, SimDuration::max);
    ring_spans.shift(max_setup);
    for (h, d) in setup_times.into_iter().enumerate() {
        if let Some(host_metrics) = metrics.hosts.get_mut(h) {
            host_metrics.setup = d;
        }
        spans.span(h, SpanKind::Setup, "setup", SimTime::ZERO, d);
    }
    spans.merge(ring_spans);
    let partials = collectors
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
        })
        .collect();
    Ok(ExecOutcome {
        metrics,
        result: DistributedResult::new(partials),
        trace: Tracer::disabled(),
        spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribute::RotateSide;
    use relation::GenSpec;

    fn exec_sim(hosts: usize, swap: RotateSide) -> ExecOutcome {
        let r = GenSpec::uniform(3_000, 10).generate();
        let s = GenSpec::uniform(2_000, 11).generate();
        let config = RingConfig::paper(hosts);
        let placement = Placement::new(&r, &s, hosts, 2, swap);
        execute_simulated(
            &config,
            Algorithm::partitioned_hash(),
            &JoinPredicate::Equi,
            &ComputeMode::modeled(),
            OutputMode::Aggregate,
            placement,
            true,
            None,
            None,
            None,
            false,
        )
    }

    #[test]
    fn simulated_execution_produces_the_reference_result() {
        let r = GenSpec::uniform(3_000, 10).generate();
        let s = GenSpec::uniform(2_000, 11).generate();
        let reference = crate::verify::reference_join(&r, &s, &JoinPredicate::Equi);
        for hosts in [1, 2, 4] {
            let out = exec_sim(hosts, RotateSide::R);
            assert_eq!(out.result.count(), reference.count, "hosts={hosts}");
            assert_eq!(out.result.checksum(), reference.checksum, "hosts={hosts}");
        }
    }

    #[test]
    fn swapped_rotation_matches_unswapped() {
        let a = exec_sim(3, RotateSide::R);
        let b = exec_sim(3, RotateSide::S);
        assert_eq!(a.result.count(), b.result.count());
        assert_eq!(a.result.checksum(), b.result.checksum());
    }

    #[test]
    fn mirror_predicate_flips_theta() {
        let p = JoinPredicate::theta(|a, b| a < b);
        let m = mirror_predicate(&p);
        assert!(p.matches(1, 2));
        assert!(!m.matches(1, 2));
        assert!(m.matches(2, 1));
        // Symmetric predicates mirror to themselves.
        assert!(mirror_predicate(&JoinPredicate::Equi).is_equi());
        assert_eq!(
            mirror_predicate(&JoinPredicate::band(3)).band_delta(),
            Some(3)
        );
    }

    #[test]
    fn threaded_execution_matches_simulated() {
        let r = GenSpec::uniform(2_000, 20).generate();
        let s = GenSpec::uniform(2_000, 21).generate();
        let reference = crate::verify::reference_join(&r, &s, &JoinPredicate::Equi);
        let config = RingConfig::paper(3).with_join_threads(1);
        let placement = Placement::new(&r, &s, 3, 2, RotateSide::R);
        let out = execute_threaded(
            &config,
            Algorithm::partitioned_hash(),
            &JoinPredicate::Equi,
            OutputMode::Aggregate,
            placement,
            None,
            false,
        )
        .expect("threaded run");
        assert_eq!(out.result.count(), reference.count);
        assert_eq!(out.result.checksum(), reference.checksum);
        assert!(out
            .metrics
            .hosts
            .iter()
            .all(|h| h.setup > SimDuration::ZERO));
        assert!(!out.spans.is_enabled());
    }

    /// Regression: a panicking join predicate used to take the whole
    /// process down — the worker's panic poisoned the shared collector
    /// lock and every other thread then panicked in `.lock().expect(...)`
    /// or in channel teardown. It must surface as one typed
    /// [`RingError::Teardown`] instead.
    #[test]
    fn panicking_predicate_is_a_typed_teardown_error() {
        let r = GenSpec::uniform(2_000, 40).generate();
        let s = GenSpec::uniform(2_000, 41).generate();
        let config = RingConfig::paper(3).with_join_threads(1);
        let placement = Placement::new(&r, &s, 3, 2, RotateSide::R);
        let panicky = JoinPredicate::theta(|_, _| panic!("injected predicate failure"));
        let err = execute_threaded(
            &config,
            Algorithm::NestedLoops,
            &panicky,
            OutputMode::Aggregate,
            placement,
            None,
            false,
        )
        .expect_err("a panicking predicate must fail the run");
        assert!(
            matches!(err, RingError::Teardown(_)),
            "expected a teardown error, got {err:?}"
        );
    }

    #[test]
    fn traced_threaded_run_stitches_setup_and_reconciles() {
        use simnet::span::counter;
        let r = GenSpec::uniform(2_000, 50).generate();
        let s = GenSpec::uniform(2_000, 51).generate();
        let config = RingConfig::paper(3).with_join_threads(1);
        let placement = Placement::new(&r, &s, 3, 2, RotateSide::R);
        let out = execute_threaded(
            &config,
            Algorithm::partitioned_hash(),
            &JoinPredicate::Equi,
            OutputMode::Aggregate,
            placement,
            None,
            true,
        )
        .expect("threaded run");
        assert!(out.spans.is_enabled());
        for (h, m) in out.metrics.hosts.iter().enumerate() {
            assert_eq!(
                out.spans.total(h, SpanKind::Setup),
                m.setup,
                "host {h} setup"
            );
            assert_eq!(out.spans.busy_total(h), m.join_busy, "host {h} join_busy");
            assert_eq!(out.spans.total(h, SpanKind::Sync), m.sync, "host {h} sync");
        }
        // The stitched timeline puts every ring span after every setup span.
        let max_setup = out
            .metrics
            .hosts
            .iter()
            .map(|h| h.setup)
            .fold(SimDuration::ZERO, SimDuration::max);
        for s in out.spans.spans() {
            if s.kind != SpanKind::Setup {
                assert!(
                    s.start >= SimTime::ZERO + max_setup,
                    "ring span {s:?} starts before the rotation barrier"
                );
            }
        }
        let c = out.spans.counters();
        assert_eq!(
            c.get(counter::FRAGMENTS_RETIRED) as usize,
            out.metrics.fragments_completed
        );
    }

    #[test]
    fn tcp_execution_matches_simulated() {
        let r = GenSpec::uniform(2_000, 60).generate();
        let s = GenSpec::uniform(2_000, 61).generate();
        let hosts = 3;
        let config = RingConfig::paper(hosts).with_join_threads(1);
        let sim = execute_simulated(
            &config,
            Algorithm::partitioned_hash(),
            &JoinPredicate::Equi,
            &ComputeMode::modeled(),
            OutputMode::Aggregate,
            Placement::new(&r, &s, hosts, 2, RotateSide::R),
            true,
            None,
            None,
            None,
            false,
        );
        for flavor in [SocketBackend::Blocking, SocketBackend::Reactor] {
            let tcp = execute_tcp(
                &config,
                Algorithm::partitioned_hash(),
                &JoinPredicate::Equi,
                OutputMode::Aggregate,
                Placement::new(&r, &s, hosts, 2, RotateSide::R),
                None,
                None,
                false,
                flavor,
            )
            .expect("socket run");
            assert_eq!(tcp.result.count(), sim.result.count(), "{flavor:?}");
            assert_eq!(tcp.result.checksum(), sim.result.checksum(), "{flavor:?}");
            assert_eq!(
                tcp.metrics.fragments_completed, sim.metrics.fragments_completed,
                "{flavor:?}"
            );
            assert!(tcp
                .metrics
                .hosts
                .iter()
                .all(|h| h.setup > SimDuration::ZERO));
        }
    }

    #[test]
    fn rdma_charges_registration_into_setup() {
        let r = GenSpec::uniform(1_000, 30).generate();
        let s = GenSpec::uniform(1_000, 31).generate();
        let placement = |cfg: &RingConfig| Placement::new(&r, &s, cfg.hosts, 2, RotateSide::R);
        let rdma_cfg = RingConfig::paper(2);
        let tcp_cfg = RingConfig::paper_tcp(2);
        let rdma = execute_simulated(
            &rdma_cfg,
            Algorithm::partitioned_hash(),
            &JoinPredicate::Equi,
            &ComputeMode::modeled(),
            OutputMode::Aggregate,
            placement(&rdma_cfg),
            true,
            None,
            None,
            None,
            false,
        );
        let tcp = execute_simulated(
            &tcp_cfg,
            Algorithm::partitioned_hash(),
            &JoinPredicate::Equi,
            &ComputeMode::modeled(),
            OutputMode::Aggregate,
            placement(&tcp_cfg),
            true,
            None,
            None,
            None,
            false,
        );
        assert!(
            rdma.metrics.setup_time() > tcp.metrics.setup_time(),
            "RDMA setup must include memory registration"
        );
    }
}
