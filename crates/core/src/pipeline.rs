//! N-way join pipelines: cyclo-join as a building block in larger plans.
//!
//! §IV-A: "the join output could naturally be used as input to subsequent
//! processing in a larger query plan" — each revolution leaves its result
//! distributed across the ring, ready to rotate again against the next
//! relation. [`JoinPipeline`] chains any number of joins this way,
//! generalizing the two-revolution ternary join of [`crate::ternary`].
//!
//! ```
//! use cyclo_join::pipeline::JoinPipeline;
//! use cyclo_join::JoinPredicate;
//! use relation::{GenSpec, Tuple};
//!
//! # fn main() -> Result<(), cyclo_join::PlanError> {
//! let base = GenSpec::uniform(5_000, 1).generate();
//! let report = JoinPipeline::new(base)
//!     .join(GenSpec::uniform(5_000, 2).generate(), JoinPredicate::Equi,
//!           |m| Tuple::new(m.key, m.s_payload))
//!     .join(GenSpec::uniform(5_000, 3).generate(), JoinPredicate::Equi,
//!           |m| Tuple::new(m.key, m.r_payload))
//!     .hosts(3)
//!     .run()?;
//! assert_eq!(report.stages.len(), 2);
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use mem_joins::{JoinPredicate, OutputMode};
use relation::{MatchPair, Relation, Tuple};

use crate::plan::{CycloJoin, PlanError};
use crate::report::CycloJoinReport;

/// Projects one stage's matches into the next stage's rotating tuples.
type Rekey = Arc<dyn Fn(&MatchPair) -> Tuple + Send + Sync>;

/// One stage of a pipeline: join the running result against `relation`.
struct Stage {
    relation: Relation,
    predicate: JoinPredicate,
    rekey: Rekey,
}

/// A chain of cyclo-joins, each revolution feeding the next.
pub struct JoinPipeline {
    base: Relation,
    stages: Vec<Stage>,
    hosts: usize,
}

impl JoinPipeline {
    /// Starts a pipeline with the relation that rotates first.
    pub fn new(base: Relation) -> Self {
        JoinPipeline {
            base,
            stages: Vec::new(),
            hosts: 6,
        }
    }

    /// Appends a stage: join the running result against `relation` under
    /// `predicate`, then project each match through `rekey` to form the
    /// tuples that feed the next stage.
    pub fn join(
        mut self,
        relation: Relation,
        predicate: JoinPredicate,
        rekey: impl Fn(&MatchPair) -> Tuple + Send + Sync + 'static,
    ) -> Self {
        self.stages.push(Stage {
            relation,
            predicate,
            rekey: Arc::new(rekey),
        });
        self
    }

    /// Ring size for every revolution.
    pub fn hosts(mut self, hosts: usize) -> Self {
        self.hosts = hosts;
        self
    }

    /// Runs the pipeline, one revolution per stage.
    ///
    /// # Errors
    ///
    /// Returns the first [`PlanError`] any stage produces, or an error if
    /// the pipeline has no stages.
    pub fn run(self) -> Result<PipelineReport, PlanError> {
        if self.stages.is_empty() {
            return Err(PlanError::UnsupportedPredicate {
                algorithm: "none",
                predicate: "pipeline contains no stages".to_string(),
            });
        }
        let total = self.stages.len();
        let mut rotating = self.base;
        let mut reports = Vec::with_capacity(total);
        for (i, stage) in self.stages.into_iter().enumerate() {
            let is_last = i + 1 == total;
            let plan = CycloJoin::new(rotating, stage.relation)
                .predicate(stage.predicate)
                .hosts(self.hosts)
                // Intermediate stages must materialize to feed the next
                // revolution; the final stage may aggregate.
                .output(if is_last {
                    OutputMode::Aggregate
                } else {
                    OutputMode::Materialize
                })
                .rotate(crate::distribute::RotateSide::R);
            let report = plan.run()?;
            rotating = if is_last {
                Relation::new()
            } else {
                report.result.project(|m| (stage.rekey)(m))
            };
            reports.push(report);
        }
        Ok(PipelineReport { stages: reports })
    }
}

impl std::fmt::Debug for JoinPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinPipeline")
            .field("base_tuples", &self.base.len())
            .field("stages", &self.stages.len())
            .field("hosts", &self.hosts)
            .finish()
    }
}

/// Per-stage reports of a pipeline run.
#[derive(Debug)]
pub struct PipelineReport {
    /// One cyclo-join report per stage, in execution order.
    pub stages: Vec<CycloJoinReport>,
}

impl PipelineReport {
    /// Matches produced by the final stage.
    pub fn match_count(&self) -> u64 {
        self.stages.last().map_or(0, CycloJoinReport::match_count)
    }

    /// Total wall-clock seconds across all revolutions.
    pub fn total_seconds(&self) -> f64 {
        self.stages.iter().map(CycloJoinReport::total_seconds).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::reference_join;
    use mem_joins::{nested_loops_join, JoinCollector};
    use relation::GenSpec;

    /// Local reference for a two-stage pipeline with a given rekey.
    fn reference_two_stage(
        base: &Relation,
        s1: &Relation,
        s2: &Relation,
        rekey: impl Fn(&MatchPair) -> Tuple,
    ) -> (u64, relation::Checksum) {
        let mut first = JoinCollector::materializing();
        nested_loops_join(base, s1, &JoinPredicate::Equi, 1, &mut first);
        let mid: Relation = first.matches().iter().map(rekey).collect();
        let reference = reference_join(&mid, s2, &JoinPredicate::Equi);
        (reference.count, reference.checksum)
    }

    #[test]
    fn two_stage_pipeline_matches_reference() {
        let base = GenSpec::uniform(700, 800).generate();
        let s1 = GenSpec::uniform(700, 801).generate();
        let s2 = GenSpec::uniform(700, 802).generate();
        let rekey = |m: &MatchPair| Tuple::new(m.s_key, m.r_payload);
        let (count, checksum) = reference_two_stage(&base, &s1, &s2, rekey);
        let report = JoinPipeline::new(base)
            .join(s1, JoinPredicate::Equi, rekey)
            .join(s2, JoinPredicate::Equi, |m| Tuple::new(m.key, m.s_payload))
            .hosts(3)
            .run()
            .expect("pipeline should run");
        assert_eq!(report.match_count(), count);
        assert_eq!(report.stages[1].checksum(), checksum);
        assert_eq!(report.stages.len(), 2);
        assert!(report.total_seconds() > 0.0);
    }

    #[test]
    fn four_way_pipeline_runs() {
        let base = GenSpec::uniform(400, 810).generate();
        let mut pipeline = JoinPipeline::new(base).hosts(2);
        for i in 0..3 {
            let s = GenSpec::uniform(400, 820 + i).generate();
            pipeline = pipeline.join(s, JoinPredicate::Equi, |m| Tuple::new(m.key, m.r_payload));
        }
        let report = pipeline.run().expect("pipeline should run");
        assert_eq!(report.stages.len(), 3);
    }

    #[test]
    fn empty_pipeline_is_an_error() {
        let base = GenSpec::uniform(10, 830).generate();
        assert!(JoinPipeline::new(base).run().is_err());
    }

    #[test]
    fn mixed_predicates_across_stages() {
        let base = GenSpec::uniform(500, 840).generate();
        let s1 = GenSpec::uniform(500, 841).generate();
        let s2 = GenSpec::uniform(500, 842).generate();
        let report = JoinPipeline::new(base)
            .join(s1, JoinPredicate::band(1), |m| {
                Tuple::new(m.s_key, m.r_payload)
            })
            .join(s2, JoinPredicate::Equi, |m| Tuple::new(m.key, m.s_payload))
            .hosts(2)
            .run()
            .expect("pipeline should run");
        assert_eq!(report.stages[0].algorithm, "sort-merge");
        assert_eq!(report.stages[1].algorithm, "partitioned-hash");
    }
}
