//! Multi-way joins via repeated revolutions (§IV-A).
//!
//! "The ternary join `(R ⋈ S) ⋈ T` could, for example, be evaluated by
//! using two runs of cyclo-join": the first run materializes its result as
//! a distributed table, a projection of that table becomes the rotating
//! input of the second run, and no data ever leaves the ring's distributed
//! memory in between.

use mem_joins::{JoinPredicate, OutputMode};
use relation::{MatchPair, Relation, Tuple};

use crate::plan::{CycloJoin, PlanError};
use crate::report::CycloJoinReport;

/// The outcome of a two-revolution ternary join.
#[derive(Debug)]
pub struct TernaryReport {
    /// Report of the first revolution (`R ⋈ S`).
    pub first: CycloJoinReport,
    /// Report of the second revolution (`(R ⋈ S) ⋈ T`).
    pub second: CycloJoinReport,
}

impl TernaryReport {
    /// Total matches of the ternary join.
    pub fn match_count(&self) -> u64 {
        self.second.match_count()
    }

    /// Combined wall-clock seconds over both revolutions.
    pub fn total_seconds(&self) -> f64 {
        self.first.total_seconds() + self.second.total_seconds()
    }
}

/// Plans a ternary join `(r ⋈ s) ⋈ t`.
///
/// The intermediate result is re-keyed by `rekey` — it decides which
/// attribute of each `(R, S)` match becomes the join key against `T`
/// (e.g. `|m| Tuple::new(m.s_key, m.r_payload)` to join `T` on `S`'s key).
#[derive(Debug)]
pub struct TernaryJoin {
    r: Relation,
    s: Relation,
    t: Relation,
    first_predicate: JoinPredicate,
    second_predicate: JoinPredicate,
    hosts: usize,
}

impl TernaryJoin {
    /// Starts planning `(r ⋈ s) ⋈ t` with equi predicates on both hops.
    pub fn new(r: Relation, s: Relation, t: Relation) -> Self {
        TernaryJoin {
            r,
            s,
            t,
            first_predicate: JoinPredicate::Equi,
            second_predicate: JoinPredicate::Equi,
            hosts: 6,
        }
    }

    /// Predicate of the first hop `r ⋈ s`.
    pub fn first_predicate(mut self, p: JoinPredicate) -> Self {
        self.first_predicate = p;
        self
    }

    /// Predicate of the second hop `(r ⋈ s) ⋈ t`.
    pub fn second_predicate(mut self, p: JoinPredicate) -> Self {
        self.second_predicate = p;
        self
    }

    /// Ring size used for both revolutions.
    pub fn hosts(mut self, hosts: usize) -> Self {
        self.hosts = hosts;
        self
    }

    /// Runs both revolutions on the simulated backend.
    ///
    /// # Errors
    ///
    /// Propagates [`PlanError`] from either revolution.
    pub fn run(self, rekey: impl Fn(&MatchPair) -> Tuple) -> Result<TernaryReport, PlanError> {
        let first = CycloJoin::new(self.r, self.s)
            .predicate(self.first_predicate)
            .hosts(self.hosts)
            .output(OutputMode::Materialize)
            .run()?;
        let intermediate = first.result.project(&rekey);
        let second = CycloJoin::new(intermediate, self.t)
            .predicate(self.second_predicate)
            .hosts(self.hosts)
            .run()?;
        Ok(TernaryReport { first, second })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::reference_join;
    use relation::GenSpec;

    #[test]
    fn ternary_equals_sequential_reference() {
        let r = GenSpec::uniform(800, 40).generate();
        let s = GenSpec::uniform(800, 41).generate();
        let t = GenSpec::uniform(800, 42).generate();

        // Reference: materialize R ⋈ S locally, re-key on S's key, join T.
        let mut first_ref = mem_joins::JoinCollector::materializing();
        mem_joins::nested_loops_join(&r, &s, &JoinPredicate::Equi, 1, &mut first_ref);
        let intermediate: Relation = first_ref
            .matches()
            .iter()
            .map(|m| Tuple::new(m.s_key, m.r_payload))
            .collect();
        let expected = reference_join(&intermediate, &t, &JoinPredicate::Equi);

        let report = TernaryJoin::new(r, s, t)
            .hosts(3)
            .run(|m| Tuple::new(m.s_key, m.r_payload))
            .expect("ternary plan should run");
        assert_eq!(report.match_count(), expected.count);
        assert_eq!(report.second.checksum(), expected.checksum);
        assert!(report.total_seconds() > 0.0);
    }

    #[test]
    fn distinct_predicates_per_hop() {
        let r = GenSpec::uniform(300, 43).generate();
        let s = GenSpec::uniform(300, 44).generate();
        let t = GenSpec::uniform(300, 45).generate();
        let report = TernaryJoin::new(r, s, t)
            .first_predicate(JoinPredicate::Equi)
            .second_predicate(JoinPredicate::band(2))
            .hosts(2)
            .run(|m| Tuple::new(m.key, m.s_payload))
            .expect("ternary plan should run");
        assert_eq!(report.second.algorithm, "sort-merge");
    }
}
