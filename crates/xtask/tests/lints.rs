//! Engine tests over the seeded fixture files: exact violation counts per
//! lint, suppression tallying, stale-annotation reporting — and the gate
//! that the real tree is clean.

use std::path::PathBuf;

use xtask::lints::{FilePolicy, Lint};
use xtask::report::Report;

fn fixture(name: &str) -> PathBuf {
    xtask::workspace_root()
        .join("crates/xtask/fixtures")
        .join(name)
}

fn run_fixture(name: &str, policy: FilePolicy) -> Report {
    let registry = xtask::load_registry(&xtask::workspace_root());
    xtask::analyze_files(&[(fixture(name), policy)], &registry)
        .unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"))
}

#[test]
fn l1_fixture_counts_are_exact() {
    let report = run_fixture(
        "l1_panics.rs",
        FilePolicy {
            no_panic: true,
            ..FilePolicy::default()
        },
    );
    // 6 seeded violations + 1 malformed annotation, none of them maskable.
    assert_eq!(
        report.live_count(Lint::NoPanicPaths),
        7,
        "{}",
        report.render()
    );
    assert_eq!(report.suppressed_count(Lint::NoPanicPaths), 2);
    assert_eq!(report.unused.len(), 1, "stale annotation must be reported");
    assert_eq!(report.unused[0].kind, "panic");
    assert_ne!(report.exit_code(), 0);
    // The suppressions carry their reasons into the report.
    let reasons: Vec<&str> = report
        .suppressed()
        .filter_map(|f| f.suppressed.as_deref())
        .collect();
    assert!(reasons.iter().any(|r| r.contains("bounded by caller")));
    assert!(reasons.iter().any(|r| r.contains("whole-function audit")));
}

#[test]
fn l2_fixture_counts_are_exact() {
    let report = run_fixture(
        "l2_wall_clock.rs",
        FilePolicy {
            no_wall_clock: true,
            ..FilePolicy::default()
        },
    );
    assert_eq!(
        report.live_count(Lint::NoWallClockInSim),
        3,
        "{}",
        report.render()
    );
    assert_eq!(report.suppressed_count(Lint::NoWallClockInSim), 1);
    assert!(report.unused.is_empty());
}

#[test]
fn l3_fixture_counts_are_exact() {
    let report = run_fixture(
        "l3_counters.rs",
        FilePolicy {
            counter_registry: true,
            ..FilePolicy::default()
        },
    );
    assert_eq!(
        report.live_count(Lint::CounterRegistry),
        3,
        "{}",
        report.render()
    );
    assert_eq!(report.suppressed_count(Lint::CounterRegistry), 1);
    let messages: Vec<&str> = report.live().map(|f| f.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains("bogus_counter")));
    assert!(messages.iter().any(|m| m.contains("another_typo")));
    // The named-constant spelling is in scope: registered per-query
    // constants pass, an undefined one is flagged.
    assert!(messages
        .iter()
        .any(|m| m.contains("counter::QUERIES_EVAPORATED")));
    assert!(!messages.iter().any(|m| m.contains("QUERIES_ADMITTED")));
}

#[test]
fn l4_fixture_counts_are_exact() {
    let report = run_fixture(
        "l4_locks.rs",
        FilePolicy {
            lock_ordering: true,
            ..FilePolicy::default()
        },
    );
    assert_eq!(
        report.live_count(Lint::LockOrdering),
        2,
        "{}",
        report.render()
    );
    assert_eq!(report.suppressed_count(Lint::LockOrdering), 1);
}

#[test]
fn l5_fixture_counts_are_exact() {
    let report = run_fixture(
        "l5_sans_io.rs",
        FilePolicy {
            sans_io: true,
            ..FilePolicy::default()
        },
    );
    assert_eq!(report.live_count(Lint::SansIo), 6, "{}", report.render());
    assert_eq!(report.suppressed_count(Lint::SansIo), 1);
    assert!(report.unused.is_empty());
    let messages: Vec<&str> = report.live().map(|f| f.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains("std::net")));
    assert!(messages.iter().any(|m| m.contains("simnet::time")));
    assert!(messages.iter().any(|m| m.contains("spawn")));
    // The listener-bind seed — the exact shape the TCP backend uses for
    // its port-0 setup — is caught inside a function body, not just in
    // `use` position.
    assert!(
        messages
            .iter()
            .any(|m| m.contains("fn protocol_grew_a_listener")),
        "{messages:?}"
    );
}

#[test]
fn l6_fixture_counts_are_exact() {
    let report = run_fixture(
        "l6_output_match.rs",
        FilePolicy {
            output_match: true,
            ..FilePolicy::default()
        },
    );
    assert_eq!(
        report.live_count(Lint::OutputMatch),
        2,
        "{}",
        report.render()
    );
    assert_eq!(report.suppressed_count(Lint::OutputMatch), 1);
    assert!(report.unused.is_empty());
    let messages: Vec<&str> = report.live().map(|f| f.message.as_str()).collect();
    assert!(
        messages
            .iter()
            .any(|m| m.contains("fn drive_with_a_catch_all")),
        "{messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("fn drive_with_a_guarded_catch_all")),
        "{messages:?}"
    );
}

#[test]
fn fixtures_fail_under_the_full_policy() {
    // Mirror of `cargo run -p xtask -- analyze --fixtures`: every lint on
    // every fixture, which must exit non-zero.
    let all = FilePolicy {
        no_panic: true,
        no_wall_clock: true,
        counter_registry: true,
        lock_ordering: true,
        sans_io: true,
        output_match: true,
    };
    let registry = xtask::load_registry(&xtask::workspace_root());
    let files: Vec<_> = [
        "l1_panics.rs",
        "l2_wall_clock.rs",
        "l3_counters.rs",
        "l4_locks.rs",
        "l5_sans_io.rs",
        "l6_output_match.rs",
    ]
    .into_iter()
    .map(|n| (fixture(n), all.clone()))
    .collect();
    let report = xtask::analyze_files(&files, &registry).expect("fixtures readable");
    assert_ne!(report.exit_code(), 0);
    assert!(report.live_count(Lint::NoPanicPaths) >= 7);
    assert!(report.live_count(Lint::NoWallClockInSim) >= 3);
    assert!(report.live_count(Lint::CounterRegistry) >= 2);
    assert!(report.live_count(Lint::LockOrdering) >= 2);
    assert!(report.live_count(Lint::SansIo) >= 6);
    assert!(report.live_count(Lint::OutputMatch) >= 2);
}

#[test]
fn real_tree_is_clean() {
    // The acceptance gate: `cargo run -p xtask -- analyze` exits zero on
    // the actual workspace. Every violation is either fixed or carries a
    // reasoned, tallied `analyze: allow`.
    let report = xtask::analyze_root(&xtask::workspace_root()).expect("workspace readable");
    assert!(report.files_scanned >= 10, "walk found too few files");
    assert_eq!(report.exit_code(), 0, "\n{}", report.render());
}
