//! A structural pass over the token stream.
//!
//! The lints need three facts the raw tokens do not carry:
//!
//! 1. **Test scope** — which tokens live under `#[cfg(test)]` / `#[test]`
//!    (or a `cfg(any(test, …))` that mentions `test`): the no-panic and
//!    wall-clock lints exempt test code.
//! 2. **Function spans** — which token ranges form `fn` bodies, so a
//!    function-level `analyze: allow` annotation can cover a whole body.
//! 3. **Annotations** — `// analyze: allow(<lint>, reason = "…")` comments,
//!    which suppress individual findings and are tallied in the report.
//!
//! All three are computed with brace/bracket matching over the lexed
//! tokens — deliberately not a full parse (see the module docs of
//! [`crate::lexer`] for why), but exact enough for the shapes this
//! workspace uses, which the engine's fixture tests pin down.

use crate::lexer::{Comment, Lexed, Tok, TokKind};

/// One parsed `analyze: allow(...)` annotation.
#[derive(Debug, Clone)]
pub struct Annotation {
    /// Lint kind the annotation suppresses (`panic`, `wall-clock`,
    /// `counter`, `lock-order`).
    pub kind: String,
    /// The mandatory human reason.
    pub reason: String,
    /// 1-based line of the annotation comment.
    pub line: u32,
    /// Line range the annotation covers: the annotated line itself, or a
    /// whole function body when the next code line starts a `fn` item.
    pub covers: (u32, u32),
    /// Number of findings this annotation actually suppressed (filled in
    /// by the driver; an unused annotation is itself reported).
    pub used: std::cell::Cell<u32>,
}

/// An annotation-shaped comment that failed to parse (missing reason,
/// unknown lint name). Reported as a finding: a suppression that does not
/// say *why* defeats the purpose of the lint.
#[derive(Debug, Clone)]
pub struct MalformedAnnotation {
    /// 1-based line of the comment.
    pub line: u32,
    /// What was wrong with it.
    pub problem: String,
}

/// A `fn` item's location.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub header_line: u32,
    /// Inclusive line range of the whole item (header through `}`).
    pub lines: (u32, u32),
}

/// The per-file structural model the lints run against.
#[derive(Debug)]
pub struct FileModel {
    /// Code tokens (from the lexer).
    pub tokens: Vec<Tok>,
    /// `in_test[i]` — token `i` is inside test-gated code.
    pub in_test: Vec<bool>,
    /// Parsed allow annotations.
    pub annotations: Vec<Annotation>,
    /// Annotation-shaped comments that failed to parse.
    pub malformed: Vec<MalformedAnnotation>,
    /// Function spans in source order.
    pub functions: Vec<FnSpan>,
}

/// Lint names an annotation may reference.
pub const KNOWN_LINTS: &[&str] = &[
    "panic",
    "wall-clock",
    "counter",
    "lock-order",
    "sans-io",
    "output-match",
];

/// Builds the [`FileModel`] for one lexed file.
pub fn build(lexed: Lexed) -> FileModel {
    let Lexed { tokens, comments } = lexed;
    let in_test = test_mask(&tokens);
    let functions = fn_spans(&tokens);
    let (annotations, malformed) = collect_annotations(&comments, &functions);
    FileModel {
        tokens,
        in_test,
        annotations,
        malformed,
        functions,
    }
}

impl FileModel {
    /// The annotation (if any) of `kind` covering `line`, for suppression.
    pub fn annotation_for(&self, kind: &str, line: u32) -> Option<&Annotation> {
        self.annotations
            .iter()
            .find(|a| a.kind == kind && a.covers.0 <= line && line <= a.covers.1)
    }

    /// Name of the function whose span contains `line`, for messages.
    pub fn enclosing_fn(&self, line: u32) -> Option<&str> {
        self.functions
            .iter()
            .filter(|f| f.lines.0 <= line && line <= f.lines.1)
            .map(|f| f.name.as_str())
            .next_back()
    }
}

/// Marks every token under a test-gated attribute. An attribute gates its
/// following item (attributes stack); `#![…]` inner attributes that mention
/// `test` gate the whole file.
fn test_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        let attr_start = i;
        let inner = tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
        let bracket = if inner { i + 2 } else { i + 1 };
        if !tokens.get(bracket).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        // Walk the balanced `[...]`, remembering whether `test` appears.
        let mut depth = 0usize;
        let mut j = bracket;
        let mut mentions_test = false;
        while j < tokens.len() {
            if tokens[j].is_punct('[') {
                depth += 1;
            } else if tokens[j].is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if tokens[j].is_ident("test") {
                mentions_test = true;
            }
            j += 1;
        }
        let attr_end = j; // index of closing `]`
        if !mentions_test {
            i = attr_end + 1;
            continue;
        }
        if inner {
            // `#![cfg(test)]`-style: the whole file is test code.
            mask.iter_mut().for_each(|m| *m = true);
            return mask;
        }
        // Gate from the attribute through the end of the following item:
        // skip any further attributes, then to the first top-level `;` or
        // through the matching `}` of the first top-level `{`.
        let mut k = attr_end + 1;
        // Chained attributes on the same item.
        while tokens.get(k).is_some_and(|t| t.is_punct('#')) {
            let b = k + 1;
            if !tokens.get(b).is_some_and(|t| t.is_punct('[')) {
                break;
            }
            let mut d = 0usize;
            while k < tokens.len() {
                if tokens[k].is_punct('[') {
                    d += 1;
                } else if tokens[k].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        let mut brace = 0isize;
        let mut paren = 0isize;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct('{') {
                brace += 1;
            } else if t.is_punct('}') {
                brace -= 1;
                if brace == 0 {
                    break;
                }
            } else if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct(';') && brace == 0 && paren == 0 {
                break;
            }
            k += 1;
        }
        let item_end = k.min(tokens.len().saturating_sub(1));
        for m in mask.iter_mut().take(item_end + 1).skip(attr_start) {
            *m = true;
        }
        i = item_end + 1;
    }
    mask
}

/// Collects `fn` item spans by matching the body braces.
fn fn_spans(tokens: &[Tok]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let header_line = tokens[i].line;
        let name = match tokens.get(i + 1) {
            Some(t) if t.kind == TokKind::Ident => t.text.clone(),
            _ => {
                i += 1;
                continue;
            }
        };
        // Find the body `{` outside parens/brackets; a `;` first means a
        // bodyless declaration (trait method, extern).
        let mut j = i + 2;
        let mut paren = 0isize;
        let mut bracket = 0isize;
        let mut body_start = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
            } else if t.is_punct('[') {
                bracket += 1;
            } else if t.is_punct(']') {
                bracket -= 1;
            } else if paren == 0 && bracket == 0 {
                if t.is_punct('{') {
                    body_start = Some(j);
                    break;
                }
                if t.is_punct(';') {
                    break;
                }
            }
            j += 1;
        }
        let Some(body_start) = body_start else {
            i = j + 1;
            continue;
        };
        let mut depth = 0isize;
        let mut k = body_start;
        while k < tokens.len() {
            if tokens[k].is_punct('{') {
                depth += 1;
            } else if tokens[k].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        let end_line = tokens.get(k).map_or(header_line, |t| t.line);
        out.push(FnSpan {
            name,
            header_line,
            lines: (header_line, end_line),
        });
        // Continue *inside* the body too: nested fns are real items.
        i += 2;
    }
    out
}

/// Parses annotations out of the comment list.
fn collect_annotations(
    comments: &[Comment],
    functions: &[FnSpan],
) -> (Vec<Annotation>, Vec<MalformedAnnotation>) {
    let mut anns = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let Some(rest) = c.text.strip_prefix("analyze:") else {
            continue;
        };
        match parse_allow(rest.trim()) {
            Ok((kind, reason)) => {
                let covers = if c.trailing {
                    (c.line, c.line)
                } else if let Some(f) = functions.iter().find(|f| f.header_line == c.line + 1) {
                    // A standalone annotation directly above a `fn` header
                    // covers the whole function.
                    f.lines
                } else {
                    // Otherwise it covers the next line of code.
                    (c.line + 1, c.line + 1)
                };
                anns.push(Annotation {
                    kind,
                    reason,
                    line: c.line,
                    covers,
                    used: std::cell::Cell::new(0),
                });
            }
            Err(problem) => bad.push(MalformedAnnotation {
                line: c.line,
                problem,
            }),
        }
    }
    (anns, bad)
}

/// Parses `allow(<lint>, reason = "…")`.
fn parse_allow(text: &str) -> Result<(String, String), String> {
    let Some(args) = text
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('('))
        .and_then(|t| t.rfind(')').map(|end| &t[..end]))
    else {
        return Err("expected `allow(<lint>, reason = \"…\")`".to_string());
    };
    let Some((kind, rest)) = args.split_once(',') else {
        return Err("missing `, reason = \"…\"` — a suppression must say why".to_string());
    };
    let kind = kind.trim().to_string();
    if !KNOWN_LINTS.contains(&kind.as_str()) {
        return Err(format!(
            "unknown lint {kind:?} (known: {})",
            KNOWN_LINTS.join(", ")
        ));
    }
    let rest = rest.trim();
    let Some(reason) = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('='))
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('"'))
        .and_then(|t| t.rfind('"').map(|end| &t[..end]))
    else {
        return Err("reason must be a quoted string: `reason = \"…\"`".to_string());
    };
    if reason.trim().is_empty() {
        return Err("reason must not be empty".to_string());
    }
    Ok((kind, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> FileModel {
        build(lex(src))
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let m = model(
            "fn lib() { x.unwrap(); }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n",
        );
        let unwraps: Vec<bool> = m
            .tokens
            .iter()
            .zip(&m.in_test)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &mask)| mask)
            .collect();
        assert_eq!(unwraps, [false, true]);
    }

    #[test]
    fn test_attribute_on_fn_is_masked() {
        let m = model("#[test]\nfn t() { x.unwrap(); }\nfn lib() { y.unwrap(); }\n");
        let unwraps: Vec<bool> = m
            .tokens
            .iter()
            .zip(&m.in_test)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &mask)| mask)
            .collect();
        assert_eq!(unwraps, [true, false]);
    }

    #[test]
    fn cfg_any_test_is_masked_and_inner_attr_masks_file() {
        let m = model("#[cfg(any(test, loom))]\nmod harness { fn f() {} }\nfn lib() {}\n");
        assert!(m.in_test.iter().take(12).any(|&b| b));
        let whole = model("#![cfg(test)]\nfn f() { x.unwrap(); }\n");
        assert!(whole.in_test.iter().all(|&b| b));
    }

    #[test]
    fn fn_spans_cover_bodies_and_nested_fns() {
        let m = model("fn outer() {\n    fn inner() {\n    }\n}\n");
        assert_eq!(m.functions.len(), 2);
        assert_eq!(m.functions[0].lines, (1, 4));
        assert_eq!(m.functions[1].lines, (2, 3));
        assert_eq!(m.enclosing_fn(3), Some("inner"));
    }

    #[test]
    fn annotations_parse_and_scope() {
        let m = model(
            "// analyze: allow(panic, reason = \"slot checked\")\n\
             fn f() {\n    x.unwrap();\n}\n\
             let a = y.unwrap(); // analyze: allow(panic, reason = \"startup only\")\n",
        );
        assert_eq!(m.annotations.len(), 2);
        assert_eq!(m.annotations[0].covers, (2, 4));
        assert_eq!(m.annotations[1].covers, (5, 5));
        assert!(m.annotation_for("panic", 3).is_some());
        assert!(m.annotation_for("wall-clock", 3).is_none());
    }

    #[test]
    fn malformed_annotations_are_reported() {
        let m = model(
            "// analyze: allow(panic)\n\
             // analyze: allow(nonsense, reason = \"x\")\n\
             // analyze: allow(panic, reason = \"\")\n\
             fn f() {}\n",
        );
        assert_eq!(m.annotations.len(), 0);
        assert_eq!(m.malformed.len(), 3);
    }
}
