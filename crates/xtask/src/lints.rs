//! The repo-native lints.
//!
//! | id | name               | invariant |
//! |----|--------------------|-----------|
//! | L1 | `no-panic-paths`   | library code of the ring/wire/exec layers returns typed errors instead of panicking: no `unwrap()` / `expect()` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` and no slice indexing outside `#[cfg(test)]` |
//! | L2 | `no-wall-clock-in-sim` | the simulator is virtual-time only: `std::time::Instant` / `SystemTime` are banned in `simnet` and the simulated backend |
//! | L3 | `counter-registry` | every counter name incremented in the backends is a key of the unified registry in `simnet::span::counter` |
//! | L4 | `lock-ordering`    | nested lock acquisitions respect the declared lock-order table |
//! | L5 | `sans-io-protocol` | the protocol core stays sans-IO: no `std::net`, `std::thread`, `crate::sync` or `simnet::time` paths and no `spawn` calls in `crates/roundabout/src/protocol/` |
//! | L6 | `output-match-exhaustive` | backend drivers dispatch on `protocol::Output` without a wildcard `_` arm — every output variant is handled explicitly, so a new output fails the build instead of vanishing into a catch-all |
//!
//! A finding can be suppressed by `// analyze: allow(<lint>, reason = "…")`
//! on the same line, the line above, or above the enclosing `fn` header
//! (function scope). Suppressions are tallied and reported; an *unused*
//! annotation is itself a finding, so stale allows cannot accumulate.

use std::path::{Path, PathBuf};

use crate::context::FileModel;
use crate::lexer::TokKind;

/// Lint identifiers (also the annotation kinds, see
/// [`crate::context::KNOWN_LINTS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lint {
    /// L1 — no panic paths in library code.
    NoPanicPaths,
    /// L2 — no wall clock in simulator code.
    NoWallClockInSim,
    /// L3 — counter names must come from the unified registry.
    CounterRegistry,
    /// L4 — nested locks respect the declared order.
    LockOrdering,
    /// L5 — the protocol core is sans-IO: no sockets, threads, channels
    /// or clocks.
    SansIo,
    /// L6 — driver matches over `protocol::Output` have no wildcard arm.
    OutputMatch,
}

impl Lint {
    /// Short id shown in reports.
    pub fn id(self) -> &'static str {
        match self {
            Lint::NoPanicPaths => "L1",
            Lint::NoWallClockInSim => "L2",
            Lint::CounterRegistry => "L3",
            Lint::LockOrdering => "L4",
            Lint::SansIo => "L5",
            Lint::OutputMatch => "L6",
        }
    }

    /// The annotation kind that suppresses this lint.
    pub fn allow_kind(self) -> &'static str {
        match self {
            Lint::NoPanicPaths => "panic",
            Lint::NoWallClockInSim => "wall-clock",
            Lint::CounterRegistry => "counter",
            Lint::LockOrdering => "lock-order",
            Lint::SansIo => "sans-io",
            Lint::OutputMatch => "output-match",
        }
    }

    /// Human name shown in reports.
    pub fn name(self) -> &'static str {
        match self {
            Lint::NoPanicPaths => "no-panic-paths",
            Lint::NoWallClockInSim => "no-wall-clock-in-sim",
            Lint::CounterRegistry => "counter-registry",
            Lint::LockOrdering => "lock-ordering",
            Lint::SansIo => "sans-io-protocol",
            Lint::OutputMatch => "output-match-exhaustive",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which lint fired.
    pub lint: Lint,
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// What was found.
    pub message: String,
    /// `Some(reason)` when an `analyze: allow` annotation suppressed it.
    pub suppressed: Option<String>,
}

/// Which lints apply to one file, plus lint-specific configuration.
#[derive(Debug, Clone, Default)]
pub struct FilePolicy {
    /// Run L1 on this file.
    pub no_panic: bool,
    /// Run L2 on this file.
    pub no_wall_clock: bool,
    /// Run L3 on this file.
    pub counter_registry: bool,
    /// Run L4 on this file.
    pub lock_ordering: bool,
    /// Run L5 on this file.
    pub sans_io: bool,
    /// Run L6 on this file.
    pub output_match: bool,
}

/// The declared lock-order table for L4: a lock of class `i` may be
/// acquired while holding locks of classes `< i` only. Classes are matched
/// by substring against the receiver identifier of a `.lock()` call;
/// receivers matching no class are ignored. Nested acquisition within the
/// *same* class is always a violation (self-deadlock risk).
///
/// Order in this repo: per-host `collector` locks (leaf work under
/// `core::exec`) are taken *before* the shared span `tracer` lock — a
/// thread holding the tracer must never wait on a collector, because
/// collectors are held across whole join calls while the tracer is a
/// short-critical-section sink every entity contends on.
pub const LOCK_ORDER: &[(&str, &[&str])] = &[
    ("collector", &["collector"]),
    ("tracer", &["tracer", "spans"]),
];

/// Runs the configured lints for one file.
pub fn run_file(
    path: &Path,
    model: &FileModel,
    policy: &FilePolicy,
    registry: &[String],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    if policy.no_panic {
        l1_no_panic(path, model, &mut findings);
    }
    if policy.no_wall_clock {
        l2_no_wall_clock(path, model, &mut findings);
    }
    if policy.counter_registry {
        l3_counter_registry(path, model, registry, &mut findings);
    }
    if policy.lock_ordering {
        l4_lock_ordering(path, model, &mut findings);
    }
    if policy.sans_io {
        l5_sans_io(path, model, &mut findings);
    }
    if policy.output_match {
        l6_output_match(path, model, &mut findings);
    }
    // Malformed annotations are findings of the lint they tried to touch
    // (reported unsuppressable — a broken allow cannot allow itself).
    for bad in &model.malformed {
        findings.push(Finding {
            lint: Lint::NoPanicPaths,
            file: path.to_path_buf(),
            line: bad.line,
            message: format!("malformed analyze annotation: {}", bad.problem),
            suppressed: None,
        });
    }
    findings
}

/// Emits a finding, consulting annotations for suppression.
fn emit(
    findings: &mut Vec<Finding>,
    model: &FileModel,
    lint: Lint,
    path: &Path,
    line: u32,
    message: String,
) {
    let suppressed = model.annotation_for(lint.allow_kind(), line).map(|a| {
        a.used.set(a.used.get() + 1);
        a.reason.clone()
    });
    findings.push(Finding {
        lint,
        file: path.to_path_buf(),
        line,
        message,
        suppressed,
    });
}

/// L1: `unwrap()` / `expect(` / panic-family macros / slice indexing in
/// non-test code.
fn l1_no_panic(path: &Path, model: &FileModel, findings: &mut Vec<Finding>) {
    const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    let toks = &model.tokens;
    for i in 0..toks.len() {
        if model.in_test[i] {
            continue;
        }
        let t = &toks[i];
        // `.unwrap()` / `.expect(` — method-call position only (a `fn
        // unwrap` definition or a standalone `unwrap` path is not a call).
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            let what = if t.text == "unwrap" {
                ".unwrap()".to_string()
            } else {
                ".expect(…)".to_string()
            };
            let ctx = model
                .enclosing_fn(t.line)
                .map(|f| format!(" in fn {f}"))
                .unwrap_or_default();
            emit(
                findings,
                model,
                Lint::NoPanicPaths,
                path,
                t.line,
                format!("{what}{ctx}: return a typed error instead"),
            );
            continue;
        }
        // panic-family macros.
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            let ctx = model
                .enclosing_fn(t.line)
                .map(|f| format!(" in fn {f}"))
                .unwrap_or_default();
            emit(
                findings,
                model,
                Lint::NoPanicPaths,
                path,
                t.line,
                format!("{}!(…){ctx}: return a typed error instead", t.text),
            );
            continue;
        }
        // Slice/array indexing: `expr[` where expr ends in an identifier,
        // closing bracket/paren, or a literal (tuple-field chains). The
        // previous token rules exclude `#[attr]`, `vec![…]`, slice
        // patterns and array type syntax.
        if t.is_punct('[') && i > 0 {
            let prev = &toks[i - 1];
            let indexes = match prev.kind {
                TokKind::Ident => !is_keyword(&prev.text),
                TokKind::Punct(c) => c == ')' || c == ']',
                TokKind::Num => true,
                _ => false,
            };
            if indexes {
                let ctx = model
                    .enclosing_fn(t.line)
                    .map(|f| format!(" in fn {f}"))
                    .unwrap_or_default();
                emit(
                    findings,
                    model,
                    Lint::NoPanicPaths,
                    path,
                    t.line,
                    format!(
                        "slice indexing `{}[…]`{ctx}: use .get()/iterators or a checked helper",
                        prev.text
                    ),
                );
            }
        }
    }
}

/// Keywords that can directly precede `[` without forming an indexing
/// expression (`return [a, b]`, `match x { … => [0, 1] }`, …).
fn is_keyword(word: &str) -> bool {
    matches!(
        word,
        "return"
            | "break"
            | "in"
            | "if"
            | "else"
            | "match"
            | "as"
            | "mut"
            | "ref"
            | "move"
            | "const"
            | "static"
            | "dyn"
            | "impl"
            | "where"
            | "let"
            | "box"
            | "yield"
    )
}

/// L2: wall-clock types in virtual-time code.
fn l2_no_wall_clock(path: &Path, model: &FileModel, findings: &mut Vec<Finding>) {
    for (i, t) in model.tokens.iter().enumerate() {
        if model.in_test[i] {
            continue;
        }
        if t.kind == TokKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            let ctx = model
                .enclosing_fn(t.line)
                .map(|f| format!(" in fn {f}"))
                .unwrap_or_default();
            emit(
                findings,
                model,
                Lint::NoWallClockInSim,
                path,
                t.line,
                format!(
                    "`{}`{ctx}: simulator code must use virtual SimTime/SimDuration only",
                    t.text
                ),
            );
        }
    }
}

/// L3: string literals passed to `.count("…", …)` must be registry keys.
fn l3_counter_registry(
    path: &Path,
    model: &FileModel,
    registry: &[String],
    findings: &mut Vec<Finding>,
) {
    let toks = &model.tokens;
    for i in 0..toks.len() {
        if model.in_test[i] {
            continue;
        }
        // `.count(` followed immediately by a string literal.
        if toks[i].is_ident("count")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            if let Some(arg) = toks.get(i + 2) {
                if arg.kind == TokKind::Str && !registry.contains(&arg.text) {
                    emit(
                        findings,
                        model,
                        Lint::CounterRegistry,
                        path,
                        arg.line,
                        format!(
                            "counter {:?} is not in the unified registry \
                             (simnet::span::counter) — add a named constant there",
                            arg.text
                        ),
                    );
                }
                // `.count(counter::NAME, …)` — the named-constant spelling
                // (the per-query admission counters are emitted this way):
                // NAME must be a constant of the registry module.
                if arg.is_ident("counter") {
                    let mut j = i + 3;
                    while toks.get(j).is_some_and(|t| t.is_punct(':')) {
                        j += 1;
                    }
                    if let Some(name) = toks
                        .get(j)
                        .filter(|n| n.kind == TokKind::Ident && j > i + 3)
                    {
                        if !registry.contains(&name.text) {
                            emit(
                                findings,
                                model,
                                Lint::CounterRegistry,
                                path,
                                name.line,
                                format!(
                                    "counter constant `counter::{}` is not defined in the \
                                     unified registry (simnet::span::counter)",
                                    name.text
                                ),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// L4: lock acquisitions against the declared [`LOCK_ORDER`] table.
///
/// A `.lock()` receiver is classified by the identifier chain immediately
/// before the call (substring match against the table). A guard is treated
/// as live until the brace depth drops below its acquisition depth —
/// coarse (a `drop(guard)` is invisible), but strictly conservative for
/// ordering: it can only flag extra nesting, never miss real block nesting.
fn l4_lock_ordering(path: &Path, model: &FileModel, findings: &mut Vec<Finding>) {
    let toks = &model.tokens;
    let mut depth: isize = 0;
    // Held locks: (class index, acquisition depth, receiver name, line).
    let mut held: Vec<(usize, isize, String, u32)> = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            held.retain(|&(_, d, _, _)| d <= depth);
            continue;
        }
        if model.in_test[i] {
            continue;
        }
        let is_lock_call = t.is_ident("lock")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if !is_lock_call {
            continue;
        }
        let Some(receiver) = receiver_ident(toks, i - 1) else {
            continue;
        };
        let Some(class) = classify_lock(&receiver) else {
            continue;
        };
        for &(held_class, _, ref held_recv, held_line) in &held {
            if class <= held_class {
                let (class_name, _) = LOCK_ORDER[class];
                let (held_name, _) = LOCK_ORDER[held_class];
                emit(
                    findings,
                    model,
                    Lint::LockOrdering,
                    path,
                    t.line,
                    format!(
                        "acquiring `{receiver}` (class `{class_name}`) while holding \
                         `{held_recv}` (class `{held_name}`, line {held_line}) violates the \
                         declared lock order {:?}",
                        LOCK_ORDER.iter().map(|&(n, _)| n).collect::<Vec<_>>()
                    ),
                );
            }
        }
        held.push((class, depth, receiver, t.line));
    }
}

/// Walks back from the `.` of `.lock()` to the receiver's last identifier,
/// skipping a balanced `[...]` index chain (`pool[h].lock()` → `pool`).
fn receiver_ident(toks: &[crate::lexer::Tok], dot: usize) -> Option<String> {
    let mut i = dot;
    loop {
        if i == 0 {
            return None;
        }
        i -= 1;
        match toks[i].kind {
            TokKind::Punct(']') => {
                let mut d = 0isize;
                while i > 0 {
                    if toks[i].is_punct(']') {
                        d += 1;
                    } else if toks[i].is_punct('[') {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    i -= 1;
                }
            }
            TokKind::Ident => return Some(toks[i].text.clone()),
            _ => return None,
        }
    }
}

/// Classifies a receiver name against [`LOCK_ORDER`] by substring match.
fn classify_lock(receiver: &str) -> Option<usize> {
    let lower = receiver.to_ascii_lowercase();
    LOCK_ORDER
        .iter()
        .position(|(_, pats)| pats.iter().any(|p| lower.contains(p)))
}

/// Path pairs banned by L5: `first::second` anywhere in a protocol-core
/// file means the state machine has grown an IO or timing dependency.
const SANS_IO_BANNED: &[(&str, &str)] = &[
    ("std", "net"),
    ("std", "thread"),
    ("crate", "sync"),
    ("simnet", "time"),
];

/// L5: the protocol core must stay a pure state machine. Flags the banned
/// `a::b` path pairs (imports *and* inline paths) and any `spawn(…)` call
/// — free, path-qualified or method position. Test code is not exempt:
/// a protocol unit test that spawns a thread or consults a clock is no
/// longer testing a deterministic state machine.
fn l5_sans_io(path: &Path, model: &FileModel, findings: &mut Vec<Finding>) {
    let toks = &model.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        // `first :: second` path pairs.
        if t.kind == TokKind::Ident {
            for &(first, second) in SANS_IO_BANNED {
                if t.text == first
                    && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|n| n.is_ident(second))
                {
                    let ctx = model
                        .enclosing_fn(t.line)
                        .map(|f| format!(" in fn {f}"))
                        .unwrap_or_default();
                    emit(
                        findings,
                        model,
                        Lint::SansIo,
                        path,
                        t.line,
                        format!(
                            "`{first}::{second}`{ctx}: the protocol core is sans-IO — \
                             drivers own sockets, threads, channels and time"
                        ),
                    );
                }
            }
        }
        // `spawn(` in any position (free call, `thread::spawn`, `.spawn`).
        if t.is_ident("spawn") && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            let ctx = model
                .enclosing_fn(t.line)
                .map(|f| format!(" in fn {f}"))
                .unwrap_or_default();
            emit(
                findings,
                model,
                Lint::SansIo,
                path,
                t.line,
                format!(
                    "`spawn(…)`{ctx}: the protocol core must not start execution \
                     contexts — return an Output and let the driver act"
                ),
            );
        }
    }
}

/// L6: matches that dispatch on `protocol::Output` must be exhaustive by
/// variant. A wildcard `_` arm in a driver's output loop silently swallows
/// any output the protocol core grows later — which is exactly how a
/// driver drifts out of sync with the state machine. Without the wildcard,
/// a new `Output` variant is a compile error in every backend at once.
///
/// A match is "over `Output`" when any arm pattern contains an
/// `Output::Variant` path; the wildcard is an arm whose pattern *starts*
/// with a bare `_` (nested `_` bindings inside variant patterns are fine,
/// and so is a named catch-all binding — rustc's own exhaustiveness check
/// covers that case once the wildcard is gone).
fn l6_output_match(path: &Path, model: &FileModel, findings: &mut Vec<Finding>) {
    let toks = &model.tokens;
    for i in 0..toks.len() {
        if model.in_test[i] || !toks[i].is_ident("match") {
            continue;
        }
        let Some(open) = match_block_open(toks, i + 1) else {
            continue;
        };
        let arms = match_arm_patterns(toks, open);
        let over_output = arms.iter().any(|arm| {
            arm.iter().enumerate().any(|(j, t)| {
                t.is_ident("Output")
                    && arm.get(j + 1).is_some_and(|n| n.is_punct(':'))
                    && arm.get(j + 2).is_some_and(|n| n.is_punct(':'))
            })
        });
        if !over_output {
            continue;
        }
        for arm in &arms {
            let Some(first) = arm.first() else {
                continue;
            };
            if first.is_ident("_") {
                let ctx = model
                    .enclosing_fn(first.line)
                    .map(|f| format!(" in fn {f}"))
                    .unwrap_or_default();
                emit(
                    findings,
                    model,
                    Lint::OutputMatch,
                    path,
                    first.line,
                    format!(
                        "wildcard `_` arm in a match over `protocol::Output`{ctx}: \
                         handle every output variant explicitly so a new output \
                         fails the build instead of disappearing"
                    ),
                );
            }
        }
    }
}

/// Finds the `{` opening a match body, scanning from just past the `match`
/// keyword. The scrutinee may contain parenthesised or bracketed
/// sub-expressions but never a bare braced one (Rust bans struct literals
/// in scrutinee position), so the first `{` at zero paren/bracket depth is
/// the match block. A `;` or `}` first means the token stream was not a
/// match expression after all — bail without a block.
fn match_block_open(toks: &[crate::lexer::Tok], from: usize) -> Option<usize> {
    let mut paren = 0isize;
    for (j, t) in toks.iter().enumerate().skip(from) {
        match t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => paren -= 1,
            TokKind::Punct('{') if paren == 0 => return Some(j),
            TokKind::Punct(';') | TokKind::Punct('}') => return None,
            _ => {}
        }
    }
    None
}

/// Collects each arm's pattern tokens (pattern plus any `if` guard) from
/// the match body opening at `open`. Pattern mode runs from the block
/// start — or from the end of the previous arm's body — up to the `=>`.
/// Struct-pattern braces, tuple parens and slice brackets are depth
/// tracked; an arm body ends at a `,` at arm level, or when a braced body
/// closes back to arm level (Rust requires no comma there).
fn match_arm_patterns(toks: &[crate::lexer::Tok], open: usize) -> Vec<Vec<&crate::lexer::Tok>> {
    let mut arms = Vec::new();
    let mut cur: Vec<&crate::lexer::Tok> = Vec::new();
    let mut depth = 1isize; // brace depth relative to the match block
    let mut paren = 0isize; // () and [] combined
    let mut in_pattern = true;
    let mut j = open + 1;
    while j < toks.len() && depth > 0 {
        let t = &toks[j];
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 1 && paren == 0 && !in_pattern {
                    // `=> { … }` (or `=> Struct { … },`) just closed: the
                    // next tokens are the next arm's pattern, with the
                    // struct-literal form carrying a mandatory comma.
                    in_pattern = true;
                    j += 1;
                    if toks.get(j).is_some_and(|n| n.is_punct(',')) {
                        j += 1;
                    }
                    continue;
                }
            }
            TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => paren -= 1,
            TokKind::Punct(',') if depth == 1 && paren == 0 && !in_pattern => {
                in_pattern = true;
                j += 1;
                continue;
            }
            TokKind::Punct('=')
                if in_pattern
                    && depth == 1
                    && paren == 0
                    && toks.get(j + 1).is_some_and(|n| n.is_punct('>')) =>
            {
                arms.push(std::mem::take(&mut cur));
                in_pattern = false;
                j += 2;
                continue;
            }
            _ => {}
        }
        if in_pattern {
            cur.push(t);
        }
        j += 1;
    }
    arms
}

/// Extracts the unified counter registry from `simnet/src/span.rs`: the
/// string values *and* the constant names of `pub const … : &str = "…";`
/// items inside `pub mod counter { … }`. Both spellings are keys — a
/// backend may pass the literal (`"retransmits"`) or the named constant
/// (`counter::RETRANSMITS`, how the per-query admission counters are
/// emitted), and L3 resolves either against the same registry.
pub fn parse_registry(span_rs: &str) -> Vec<String> {
    let lexed = crate::lexer::lex(span_rs);
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    // Find `mod counter {`.
    let mut start = None;
    for i in 0..toks.len() {
        if toks[i].is_ident("mod") && toks.get(i + 1).is_some_and(|t| t.is_ident("counter")) {
            start = Some(i);
            break;
        }
    }
    let Some(start) = start else {
        return out;
    };
    let mut depth = 0isize;
    let mut entered = false;
    let mut i = start;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            entered = true;
        } else if t.is_punct('}') {
            depth -= 1;
            if entered && depth == 0 {
                break;
            }
        } else if t.is_ident("const") {
            // const NAME: &str = "value"; — both NAME and "value" are keys.
            if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                out.push(name.text.clone());
            }
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_punct(';') {
                if toks[j].kind == TokKind::Str {
                    out.push(toks[j].text.clone());
                    break;
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::build;
    use crate::lexer::lex;

    fn run(src: &str, policy: &FilePolicy, registry: &[String]) -> Vec<Finding> {
        let model = build(lex(src));
        run_file(Path::new("test.rs"), &model, policy, registry)
    }

    fn l1() -> FilePolicy {
        FilePolicy {
            no_panic: true,
            ..FilePolicy::default()
        }
    }

    #[test]
    fn l1_counts_the_panic_family() {
        let findings = run(
            "fn f() {\n    a.unwrap();\n    b.expect(\"x\");\n    panic!(\"y\");\n    \
             unreachable!();\n    todo!();\n}\n",
            &l1(),
            &[],
        );
        assert_eq!(findings.len(), 5);
        assert!(findings.iter().all(|f| f.suppressed.is_none()));
    }

    #[test]
    fn l1_indexing_rules() {
        // Flagged: ident[, )[ , ][ and tuple-number[.
        let flagged = run(
            "fn f() {\n    let a = xs[0];\n    let b = g()[1];\n    let c = m[0][1];\n}\n",
            &l1(),
            &[],
        );
        assert_eq!(flagged.len(), 4);
        // Not flagged: attributes, macros, array types/literals, patterns.
        let clean = run(
            "#[derive(Debug)]\nstruct S;\nfn f(x: [u8; 4]) {\n    let v = vec![1, 2];\n    \
             let [a, b] = (0, 1).into();\n    let w: &[u8] = &v;\n    let z = [0u8; 8];\n}\n",
            &l1(),
            &[],
        );
        assert_eq!(clean.len(), 0, "{clean:?}");
    }

    #[test]
    fn l1_skips_test_code_and_definitions() {
        let findings = run(
            "fn expect(x: u32) {}\n#[cfg(test)]\nmod tests {\n    fn t() { a.unwrap(); \
             b[0]; panic!(); }\n}\n",
            &l1(),
            &[],
        );
        assert_eq!(findings.len(), 0, "{findings:?}");
    }

    #[test]
    fn l1_annotations_suppress_and_tally() {
        let src = "\
fn f() {
    a.unwrap(); // analyze: allow(panic, reason = \"invariant: a is set in new()\")
    b.unwrap();
}
// analyze: allow(panic, reason = \"hot loop, index bounded by construction\")
fn g() {
    let x = xs[0];
    let y = xs[1];
}
";
        let findings = run(src, &l1(), &[]);
        let suppressed: Vec<_> = findings.iter().filter(|f| f.suppressed.is_some()).collect();
        let live: Vec<_> = findings.iter().filter(|f| f.suppressed.is_none()).collect();
        assert_eq!(suppressed.len(), 3, "{findings:?}");
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].line, 3);
    }

    #[test]
    fn l2_flags_wall_clock_only_outside_tests() {
        let policy = FilePolicy {
            no_wall_clock: true,
            ..FilePolicy::default()
        };
        let findings = run(
            "fn f() { let t = Instant::now(); let s = SystemTime::now(); }\n\
             #[cfg(test)]\nmod tests { fn t() { let x = Instant::now(); } }\n",
            &policy,
            &[],
        );
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn l3_flags_unregistered_literals() {
        let policy = FilePolicy {
            counter_registry: true,
            ..FilePolicy::default()
        };
        let registry = vec!["envelopes_sent".to_string()];
        let findings = run(
            "fn f(t: &mut T) { t.count(\"envelopes_sent\", 1); t.count(\"typo_counter\", 1); \
             t.count(name, 1); }\n",
            &policy,
            &registry,
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("typo_counter"));
    }

    #[test]
    fn l4_flags_out_of_order_and_same_class_nesting() {
        let policy = FilePolicy {
            lock_ordering: true,
            ..FilePolicy::default()
        };
        // tracer then collector: wrong order. collector then collector:
        // same-class nesting. collector then tracer: fine.
        let findings = run(
            "fn bad() {\n    let g = self.tracer.lock();\n    let c = collectors[h].lock();\n}\n\
             fn worse(a: &M, b: &M) {\n    let g1 = a_collector.lock();\n    \
             let g2 = b_collector.lock();\n}\n\
             fn good() {\n    let c = collector.lock();\n    let t = spans.lock();\n}\n",
            &policy,
            &[],
        );
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("lock order"));
    }

    #[test]
    fn l4_guard_scope_ends_with_block() {
        let policy = FilePolicy {
            lock_ordering: true,
            ..FilePolicy::default()
        };
        let findings = run(
            "fn f() {\n    {\n        let t = tracer.lock();\n    }\n    \
             let c = collector.lock();\n}\n",
            &policy,
            &[],
        );
        assert_eq!(findings.len(), 0, "{findings:?}");
    }

    #[test]
    fn l5_flags_io_paths_and_spawns_everywhere() {
        let policy = FilePolicy {
            sans_io: true,
            ..FilePolicy::default()
        };
        let findings = run(
            "use std::net::TcpStream;\nuse std::thread;\n\
             fn f() {\n    let (tx, rx) = crate::sync::mpmc::bounded(1);\n    \
             let t0 = simnet::time::SimTime::ZERO;\n    thread::spawn(|| {});\n}\n\
             #[cfg(test)]\nmod tests {\n    fn t() { spawn(|| {}); }\n}\n",
            &policy,
            &[],
        );
        // Four banned paths, two spawns — and the test module is *not*
        // exempt: a sans-IO core stays sans-IO in its tests too.
        assert_eq!(findings.len(), 6, "{findings:?}");
        assert!(findings.iter().all(|f| f.lint == Lint::SansIo));
    }

    #[test]
    fn l5_ignores_pure_state_machine_code() {
        let policy = FilePolicy {
            sans_io: true,
            ..FilePolicy::default()
        };
        let findings = run(
            "use simnet::topology::HostId;\nuse std::collections::HashMap;\n\
             fn step(now: u64) -> Vec<Output> {\n    let spawn = 3;\n    \
             let net = spawn + now as usize;\n    vec![]\n}\n",
            &policy,
            &[],
        );
        assert_eq!(findings.len(), 0, "{findings:?}");
    }

    fn l6() -> FilePolicy {
        FilePolicy {
            output_match: true,
            ..FilePolicy::default()
        }
    }

    #[test]
    fn l6_flags_wildcards_only_in_output_matches() {
        let findings = run(
            "fn drive(out: Output) {\n    match out {\n        Output::Send { to, .. } => \
             send(to),\n        Output::Ack(id) => ack(id),\n        _ => {}\n    }\n    \
             match other {\n        Some(x) => use_it(x),\n        _ => {}\n    }\n}\n",
            &l6(),
            &[],
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].lint, Lint::OutputMatch);
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn l6_exhaustive_dispatch_is_clean() {
        // Guards, struct patterns, struct literals in unbraced bodies and
        // braced bodies without trailing commas must all parse cleanly —
        // and nested `_` bindings are not wildcards.
        let findings = run(
            "fn drive(out: Output) {\n    match out {\n        Output::Send { env, .. } if \
             env.live => Frame { data: env },\n        Output::Send { to: _, .. } => {}\n        \
             Output::Retire(id) => retire(id),\n    };\n}\n",
            &l6(),
            &[],
        );
        assert_eq!(findings.len(), 0, "{findings:?}");
    }

    #[test]
    fn l6_guarded_wildcard_and_nested_match_are_caught() {
        // A `_ if …` arm still swallows unknown variants; a nested match
        // in an arm body is analyzed on its own.
        let findings = run(
            "fn drive(out: Output) {\n    match out {\n        Output::Ack(id) => ack(id),\n        \
             _ if quiet() => {}\n        Output::Retire(id) => match lookup(id) {\n            \
             Output::Send { .. } => resend(),\n            _ => {}\n        },\n    }\n}\n",
            &l6(),
            &[],
        );
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert_eq!(findings[0].line, 4);
        assert_eq!(findings[1].line, 7);
    }

    #[test]
    fn l6_annotations_suppress() {
        let findings = run(
            "fn drive(out: Output) {\n    match out {\n        Output::Ack(id) => ack(id),\n        \
             _ => {} // analyze: allow(output-match, reason = \"migration shim\")\n    }\n}\n",
            &l6(),
            &[],
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].suppressed.is_some());
    }

    #[test]
    fn registry_parses_span_module_shape() {
        let src = "pub mod counter {\n    /// Doc.\n    pub const A: &str = \"alpha\";\n    \
                   pub const B: &str = \"beta\";\n}\npub const OUTSIDE: &str = \"nope\";\n";
        // Constant names and string values are both keys (literal and
        // `counter::NAME` emission sites resolve against one registry).
        assert_eq!(parse_registry(src), ["A", "alpha", "B", "beta"]);
    }
}
