//! Repo tasks: `cargo xtask analyze` and `cargo xtask bench`.
//!
//! * `analyze [--root <dir>] [--fixtures]` — runs the repo-native lints
//!   (see `xtask::lints`) and exits non-zero when any unsuppressed
//!   violation, malformed annotation, or stale suppression exists.
//!   `--fixtures` analyzes the seeded fixture files instead of the real
//!   tree (used to demonstrate the non-zero exit path).
//! * `bench [--smoke] [--check] [--root <dir>]` — the measured perf
//!   baseline. Runs `cyclo-bench`'s `bench_suite` binary in release mode
//!   and validates its JSON report against the schema in
//!   `xtask::bench_schema`. A full run writes the next free
//!   `BENCH_<n>.json` at the workspace root (commit it with the change it
//!   measures); `--smoke` writes a throwaway report under `target/` (the
//!   CI gate); `--check` only re-validates the committed `BENCH_*.json`
//!   files without running anything.
//! * `verify --smoke|--deep [--root <dir>]` — the explicit-state model
//!   checker over the sans-IO ring protocol (`ring-verify`). `--smoke`
//!   exhaustively explores the 2-host bound plus the seeded-sabotage
//!   self-check (the tier-1 gate); `--deep` adds the 3-host bounds with
//!   membership changes and a second crash (the analyze-tier gate).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::lints::FilePolicy;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!(
            "usage: cargo xtask analyze [--root <dir>] [--fixtures]\n\
             \x20      cargo xtask bench [--smoke] [--check] [--root <dir>]\n\
             \x20      cargo xtask verify --smoke|--deep [--root <dir>]"
        );
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "analyze" => analyze_cmd(args),
        "bench" => bench_cmd(args),
        "verify" => verify_cmd(args),
        other => {
            eprintln!("unknown command {other:?}; commands are `analyze`, `bench` and `verify`");
            ExitCode::from(2)
        }
    }
}

fn analyze_cmd(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut root = xtask::workspace_root();
    let mut fixtures = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--fixtures" => fixtures = true,
            other => {
                eprintln!("unknown flag {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let result = if fixtures {
        analyze_fixtures(&root)
    } else {
        xtask::analyze_root(&root)
    };
    match result {
        Ok(report) => {
            print!("{}", report.render());
            let code = report.exit_code();
            if code == 0 {
                println!("analyze: clean");
            } else {
                println!("analyze: FAILED");
            }
            ExitCode::from(code as u8)
        }
        Err(err) => {
            eprintln!("analyze: i/o error: {err}");
            ExitCode::from(2)
        }
    }
}

/// Runs every lint over the seeded fixture files, which contain known
/// violations — this path must exit non-zero.
fn analyze_fixtures(root: &std::path::Path) -> std::io::Result<xtask::report::Report> {
    let dir = root.join("crates/xtask/fixtures");
    let all = FilePolicy {
        no_panic: true,
        no_wall_clock: true,
        counter_registry: true,
        lock_ordering: true,
        sans_io: true,
        output_match: true,
    };
    let registry = xtask::load_registry(root);
    let mut files = Vec::new();
    for entry in std::fs::read_dir(&dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "rs") {
            files.push((path, all.clone()));
        }
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    xtask::analyze_files(&files, &registry)
}

/// Shells out to the `ring-verify` checker binary in release mode (the
/// deep bounds explore hundreds of thousands of states — debug mode is an
/// order of magnitude slower) and propagates its verdict.
fn verify_cmd(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut root = xtask::workspace_root();
    let mut mode: Option<&'static str> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--smoke" => mode = Some("--smoke"),
            "--deep" => mode = Some("--deep"),
            other => {
                eprintln!("unknown flag {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(mode) = mode else {
        eprintln!("verify: pass --smoke (tier-1 gate) or --deep (full bounds)");
        return ExitCode::from(2);
    };
    let mut cargo = std::process::Command::new("cargo");
    cargo.current_dir(&root).args([
        "run",
        "--release",
        "-p",
        "ring-verify",
        "--bin",
        "verify",
        "--",
        mode,
    ]);
    match cargo.status() {
        Ok(status) if status.success() => ExitCode::SUCCESS,
        Ok(_) => {
            eprintln!("verify: model checking FAILED");
            ExitCode::from(1)
        }
        Err(err) => {
            eprintln!("verify: could not launch cargo: {err}");
            ExitCode::from(2)
        }
    }
}

fn bench_cmd(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut root = xtask::workspace_root();
    let mut smoke = false;
    let mut check = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--smoke" => smoke = true,
            "--check" => check = true,
            other => {
                eprintln!("unknown flag {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    if smoke && check {
        eprintln!("--smoke and --check are mutually exclusive");
        return ExitCode::from(2);
    }

    if check {
        return check_committed_reports(&root);
    }

    let out = if smoke {
        root.join("target/bench_smoke.json")
    } else {
        next_free_report_path(&root)
    };
    let mut cargo = std::process::Command::new("cargo");
    cargo.current_dir(&root).args([
        "run",
        "--release",
        "-p",
        "cyclo-bench",
        "--bin",
        "bench_suite",
        "--",
    ]);
    if smoke {
        cargo.arg("--smoke");
    }
    cargo.arg("--out").arg(&out);
    match cargo.status() {
        Ok(status) if status.success() => {}
        Ok(status) => {
            eprintln!("bench: bench_suite failed: {status}");
            return ExitCode::from(1);
        }
        Err(err) => {
            eprintln!("bench: could not launch cargo: {err}");
            return ExitCode::from(2);
        }
    }
    match validate_file(&out) {
        Ok(()) => {
            println!("bench: {} validates against schema v1", out.display());
            ExitCode::SUCCESS
        }
        Err(code) => code,
    }
}

/// First unused `BENCH_<n>.json` at the workspace root, counting from 1.
fn next_free_report_path(root: &Path) -> PathBuf {
    let mut n = 1u32;
    loop {
        let path = root.join(format!("BENCH_{n}.json"));
        if !path.exists() {
            return path;
        }
        n += 1;
    }
}

/// Validates every committed `BENCH_*.json`; at least one must exist.
fn check_committed_reports(root: &Path) -> ExitCode {
    let mut reports: Vec<PathBuf> = match std::fs::read_dir(root) {
        Ok(dir) => dir
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect(),
        Err(err) => {
            eprintln!("bench: cannot read {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    reports.sort();
    if reports.is_empty() {
        eprintln!(
            "bench: no BENCH_*.json at {} — run `cargo xtask bench` and commit the report",
            root.display()
        );
        return ExitCode::from(1);
    }
    for path in &reports {
        if let Err(code) = validate_file(path) {
            return code;
        }
        println!("bench: {} validates against schema v1", path.display());
    }
    ExitCode::SUCCESS
}

fn validate_file(path: &Path) -> Result<(), ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|err| {
        eprintln!("bench: cannot read {}: {err}", path.display());
        ExitCode::from(2)
    })?;
    xtask::bench_schema::validate_report(&text).map_err(|err| {
        eprintln!("bench: {} violates the schema: {err}", path.display());
        ExitCode::from(1)
    })
}
