//! `cargo run -p xtask -- analyze [--root <dir>] [--fixtures]`
//!
//! Runs the repo-native lints (see `xtask::lints`) and exits non-zero when
//! any unsuppressed violation, malformed annotation, or stale suppression
//! exists. `--fixtures` analyzes the seeded fixture files instead of the
//! real tree (used to demonstrate the non-zero exit path).

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::lints::FilePolicy;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("usage: cargo run -p xtask -- analyze [--root <dir>] [--fixtures]");
        return ExitCode::from(2);
    };
    if cmd != "analyze" {
        eprintln!("unknown command {cmd:?}; the only command is `analyze`");
        return ExitCode::from(2);
    }
    let mut root = xtask::workspace_root();
    let mut fixtures = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--fixtures" => fixtures = true,
            other => {
                eprintln!("unknown flag {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let result = if fixtures {
        analyze_fixtures(&root)
    } else {
        xtask::analyze_root(&root)
    };
    match result {
        Ok(report) => {
            print!("{}", report.render());
            let code = report.exit_code();
            if code == 0 {
                println!("analyze: clean");
            } else {
                println!("analyze: FAILED");
            }
            ExitCode::from(code as u8)
        }
        Err(err) => {
            eprintln!("analyze: i/o error: {err}");
            ExitCode::from(2)
        }
    }
}

/// Runs every lint over the seeded fixture files, which contain known
/// violations — this path must exit non-zero.
fn analyze_fixtures(root: &std::path::Path) -> std::io::Result<xtask::report::Report> {
    let dir = root.join("crates/xtask/fixtures");
    let all = FilePolicy {
        no_panic: true,
        no_wall_clock: true,
        counter_registry: true,
        lock_ordering: true,
        sans_io: true,
    };
    let registry = xtask::load_registry(root);
    let mut files = Vec::new();
    for entry in std::fs::read_dir(&dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "rs") {
            files.push((path, all.clone()));
        }
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    xtask::analyze_files(&files, &registry)
}
