//! Repo-native static analysis for the Data Roundabout workspace.
//!
//! `cargo run -p xtask -- analyze` runs four lints the paper's protocol
//! invariants need but `clippy` cannot express (see [`lints`] for the
//! catalogue), over a token-level model of the source ([`lexer`] +
//! [`context`]). The scoping below is *policy*: which crates promise
//! which invariants.

pub mod bench_schema;
pub mod context;
pub mod lexer;
pub mod lints;
pub mod report;

use std::path::{Path, PathBuf};

use lints::FilePolicy;
use report::{Report, UnusedAnnotation};

/// Path of the unified counter registry (the L3 source of truth),
/// relative to the workspace root.
pub const REGISTRY_PATH: &str = "crates/simnet/src/span.rs";

/// Decides which lints run on `rel` (workspace-relative path with `/`
/// separators).
///
/// - **L1 no-panic-paths**: all of `roundabout`'s library sources, the
///   `relation` wire format, and the `core` executor/recovery/concurrent/
///   sql modules — everything on the ring's data path.
/// - **L2 no-wall-clock-in-sim**: all of `simnet` plus the simulated
///   backend; virtual time only.
/// - **L3 counter-registry**: the three backends and the threaded executor,
///   which are the only emitters of counters.
/// - **L4 lock-ordering**: the threaded executor and backend, where the
///   collector/tracer locks nest.
/// - **L5 sans-io-protocol**: the shared ring-protocol core, which must
///   never grow a socket, thread, channel or clock dependency.
/// - **L6 output-match-exhaustive**: the backend drivers, whose
///   `protocol::Output` dispatch loops must name every variant — a
///   wildcard arm would let a future output silently vanish in one
///   driver while the others act on it.
pub fn policy_for(rel: &str) -> FilePolicy {
    let mut p = FilePolicy::default();
    let core_l1 = [
        "crates/core/src/exec.rs",
        "crates/core/src/recovery.rs",
        "crates/core/src/concurrent.rs",
        "crates/core/src/sql.rs",
    ];
    if rel.starts_with("crates/roundabout/src/")
        || rel == "crates/relation/src/wire.rs"
        || core_l1.contains(&rel)
    {
        p.no_panic = true;
    }
    if rel.starts_with("crates/simnet/src/") || rel == "crates/roundabout/src/sim_backend.rs" {
        p.no_wall_clock = true;
    }
    if rel == "crates/roundabout/src/thread_backend.rs"
        || rel == "crates/roundabout/src/sim_backend.rs"
        || rel == "crates/roundabout/src/tcp_backend.rs"
        || rel == "crates/roundabout/src/reactor_backend.rs"
        || rel == "crates/core/src/exec.rs"
    {
        p.counter_registry = true;
    }
    if rel == "crates/core/src/concurrent.rs"
        || rel == "crates/core/src/exec.rs"
        || rel == "crates/roundabout/src/thread_backend.rs"
    {
        p.lock_ordering = true;
    }
    if rel.starts_with("crates/roundabout/src/protocol/") {
        p.sans_io = true;
    }
    if rel == "crates/roundabout/src/thread_backend.rs"
        || rel == "crates/roundabout/src/sim_backend.rs"
        || rel == "crates/roundabout/src/tcp_backend.rs"
        || rel == "crates/roundabout/src/reactor_backend.rs"
    {
        p.output_match = true;
    }
    p
}

/// True when any lint applies.
fn policy_is_active(p: &FilePolicy) -> bool {
    p.no_panic
        || p.no_wall_clock
        || p.counter_registry
        || p.lock_ordering
        || p.sans_io
        || p.output_match
}

/// Analyzes the workspace rooted at `root` with the standard policy.
pub fn analyze_root(root: &Path) -> std::io::Result<Report> {
    let registry = load_registry(root);
    let mut files = Vec::new();
    for dir in ["crates/roundabout/src", "crates/simnet/src"] {
        collect_rs(&root.join(dir), &mut files)?;
    }
    for extra in [
        "crates/relation/src/wire.rs",
        "crates/core/src/exec.rs",
        "crates/core/src/recovery.rs",
        "crates/core/src/concurrent.rs",
        "crates/core/src/sql.rs",
    ] {
        let p = root.join(extra);
        if p.is_file() {
            files.push(p);
        }
    }
    files.sort();
    files.dedup();

    let mut report = Report::default();
    for path in files {
        let rel = rel_path(root, &path);
        let policy = policy_for(&rel);
        if !policy_is_active(&policy) {
            continue;
        }
        analyze_file(&path, &policy, &registry, &mut report)?;
    }
    Ok(report)
}

/// Analyzes one explicit file list with per-file policies — the fixture
/// harness and engine tests drive this directly.
pub fn analyze_files(
    files: &[(PathBuf, FilePolicy)],
    registry: &[String],
) -> std::io::Result<Report> {
    let mut report = Report::default();
    for (path, policy) in files {
        analyze_file(path, policy, registry, &mut report)?;
    }
    Ok(report)
}

fn analyze_file(
    path: &Path,
    policy: &FilePolicy,
    registry: &[String],
    report: &mut Report,
) -> std::io::Result<()> {
    let src = std::fs::read_to_string(path)?;
    let model = context::build(lexer::lex(&src));
    let findings = lints::run_file(path, &model, policy, registry);
    report.findings.extend(findings);
    for ann in &model.annotations {
        if ann.used.get() == 0 {
            report.unused.push(UnusedAnnotation {
                file: path.to_path_buf(),
                line: ann.line,
                kind: ann.kind.clone(),
            });
        }
    }
    report.files_scanned += 1;
    Ok(())
}

/// Loads the L3 registry; a missing registry file yields an empty registry
/// (every counter literal then fails L3, which is the safe direction).
pub fn load_registry(root: &Path) -> Vec<String> {
    std::fs::read_to_string(root.join(REGISTRY_PATH))
        .map(|src| lints::parse_registry(&src))
        .unwrap_or_default()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Workspace root, resolved from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_scopes_match_the_issue() {
        let p = policy_for("crates/roundabout/src/thread_backend.rs");
        assert!(p.no_panic && p.counter_registry && p.lock_ordering && !p.no_wall_clock);
        assert!(!p.sans_io, "drivers are allowed to do IO");
        assert!(p.output_match, "drivers must dispatch Output exhaustively");
        let p = policy_for("crates/roundabout/src/sim_backend.rs");
        assert!(p.no_panic && p.no_wall_clock && p.counter_registry && !p.lock_ordering);
        assert!(p.output_match, "drivers must dispatch Output exhaustively");
        // The TCP driver: on the ring's data path (L1) and a counter
        // emitter (L3), but wall-clock and sockets are its whole job.
        let p = policy_for("crates/roundabout/src/tcp_backend.rs");
        assert!(p.no_panic && p.counter_registry && !p.no_wall_clock && !p.lock_ordering);
        assert!(!p.sans_io, "drivers are allowed to do IO");
        assert!(p.output_match, "drivers must dispatch Output exhaustively");
        // The reactor driver: the tcp policy verbatim — same data path
        // (L1), same counters (L3), same exhaustive Output dispatch (L6)
        // — and wall-clock/epoll readiness is its whole job.
        let p = policy_for("crates/roundabout/src/reactor_backend.rs");
        assert!(p.no_panic && p.counter_registry && !p.no_wall_clock && !p.lock_ordering);
        assert!(!p.sans_io, "drivers are allowed to do IO");
        assert!(p.output_match, "drivers must dispatch Output exhaustively");
        // The timer wheel is library code inside the roundabout crate:
        // on the no-panic data path, but it dispatches no outputs.
        let p = policy_for("crates/roundabout/src/wheel.rs");
        assert!(p.no_panic && !p.output_match && !p.counter_registry);
        // The sans-IO core: L1 (it is library code) plus L5, and nothing
        // that assumes a particular driver — L6 included: the core emits
        // outputs, only drivers dispatch on them.
        let p = policy_for("crates/roundabout/src/protocol/ring.rs");
        assert!(p.no_panic && p.sans_io);
        assert!(!p.no_wall_clock && !p.counter_registry && !p.lock_ordering && !p.output_match);
        let p = policy_for("crates/roundabout/src/protocol/link.rs");
        assert!(p.sans_io);
        // With a real socket backend in the tree, L5 is the wall that
        // keeps `std::net` from leaking into the shared core: every
        // protocol-layer file stays under the sans-IO ban — including
        // the elastic-membership ledger, which must stay portable
        // across all three drivers.
        for core in [
            "crates/roundabout/src/protocol/mod.rs",
            "crates/roundabout/src/protocol/host.rs",
            "crates/roundabout/src/protocol/ring.rs",
            "crates/roundabout/src/protocol/link.rs",
            "crates/roundabout/src/protocol/membership.rs",
        ] {
            let p = policy_for(core);
            assert!(p.sans_io, "{core} must ban std::net");
            assert!(p.no_panic, "{core} is on the ring's data path");
        }
        let p = policy_for("crates/core/src/sql.rs");
        assert!(p.no_panic && !p.no_wall_clock && !p.counter_registry && !p.lock_ordering);
        let p = policy_for("crates/simnet/src/net.rs");
        assert!(!p.no_panic && p.no_wall_clock);
        // Out of scope entirely.
        let p = policy_for("crates/relation/src/joins.rs");
        assert!(!policy_is_active(&p));
    }

    #[test]
    fn registry_loads_from_real_tree() {
        let reg = load_registry(&workspace_root());
        assert!(
            reg.iter().any(|k| k == "envelopes_sent"),
            "registry should contain the PR 2 counters, got {reg:?}"
        );
        // The elastic-membership counters all three backends emit must
        // come from the registry, or L3 flags the emission sites.
        for key in ["rescale_joins", "rescale_drains", "rescale_handoffs"] {
            assert!(
                reg.iter().any(|k| k == key),
                "registry should contain the membership counter {key}, got {reg:?}"
            );
        }
        // The multi-tenant admission counters are emitted via their named
        // constants, so the registry must expose both spellings.
        for key in [
            "queries_admitted",
            "queries_completed",
            "QUERIES_ADMITTED",
            "QUERIES_COMPLETED",
        ] {
            assert!(
                reg.iter().any(|k| k == key),
                "registry should contain the admission counter key {key}, got {reg:?}"
            );
        }
    }
}
