//! Validator for `BENCH_<n>.json` reports (`cargo xtask bench --check`).
//!
//! `xtask` is deliberately dependency-free, so this module carries its own
//! minimal JSON reader — just enough of RFC 8259 for the bench report
//! shape (objects, arrays, strings, numbers, booleans, null). The schema
//! it enforces is documented in `crates/bench/src/report.rs`:
//!
//! * `version` must be `1`, `mode` must be `"full"` or `"smoke"`;
//! * `entries` is non-empty; each entry has a `name`, a `group` in
//!   {`kernel`, `codec`, `e2e`}, `iters >= 1`, `ns_per_iter > 0`,
//!   `throughput > 0` and a string `throughput_unit`;
//! * all three groups appear, and the `e2e` group covers every required
//!   backend (`e2e_sim`, `e2e_threads`, `e2e_tcp`); extra backend
//!   entries such as `e2e_reactor` are accepted, so reports committed
//!   before a backend existed keep validating and newer reports can
//!   carry it;
//! * each delta has a `name`, `before_ns > 0`, `after_ns > 0` and a
//!   `speedup > 0` consistent with `before_ns / after_ns`.
//!
//! The validator checks *shape and internal consistency*, not perf
//! targets: a regressed speedup is a review conversation, not a broken
//! build.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }
}

/// A schema violation (or parse error), with enough context to fix it.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaError(pub String);

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, SchemaError> {
    Err(SchemaError(msg.into()))
}

// --- JSON reader -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn fail<T>(&self, msg: &str) -> Result<T, SchemaError> {
        err(format!("json parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), SchemaError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.fail(&format!("expected {:?}", b as char))
        }
    }

    fn value(&mut self) -> Result<Json, SchemaError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => self.fail(&format!("unexpected {:?}", other as char)),
            None => self.fail("unexpected end of input"),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, SchemaError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.fail(&format!("expected {word:?}"))
        }
    }

    fn object(&mut self) -> Result<Json, SchemaError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return self.fail("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, SchemaError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return self.fail("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, SchemaError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.fail("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.fail("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.fail("bad \\u escape");
                            };
                            self.pos += 4;
                            // Surrogates don't occur in bench names; map
                            // them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return self.fail("unknown escape"),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 from the source slice.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let Some(chunk) = self.bytes.get(start..start + len) else {
                        return self.fail("truncated utf-8");
                    };
                    let Ok(s) = std::str::from_utf8(chunk) else {
                        return self.fail("invalid utf-8");
                    };
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, SchemaError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Number(x)),
            _ => self.fail(&format!("bad number {text:?}")),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse_json(text: &str) -> Result<Json, SchemaError> {
    let mut p = Parser::new(text);
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.fail("trailing data after the document");
    }
    Ok(value)
}

// --- schema ----------------------------------------------------------------

fn get<'a>(obj: &'a BTreeMap<String, Json>, key: &str) -> Result<&'a Json, SchemaError> {
    obj.get(key)
        .ok_or_else(|| SchemaError(format!("missing field {key:?}")))
}

fn as_object(v: &Json, what: &str) -> Result<BTreeMap<String, Json>, SchemaError> {
    match v {
        Json::Object(map) => Ok(map.clone()),
        other => err(format!(
            "{what} must be an object, got {}",
            other.type_name()
        )),
    }
}

fn as_array<'a>(v: &'a Json, what: &str) -> Result<&'a [Json], SchemaError> {
    match v {
        Json::Array(items) => Ok(items),
        other => err(format!(
            "{what} must be an array, got {}",
            other.type_name()
        )),
    }
}

fn as_string<'a>(v: &'a Json, what: &str) -> Result<&'a str, SchemaError> {
    match v {
        Json::String(s) => Ok(s),
        other => err(format!(
            "{what} must be a string, got {}",
            other.type_name()
        )),
    }
}

fn as_number(v: &Json, what: &str) -> Result<f64, SchemaError> {
    match v {
        Json::Number(x) => Ok(*x),
        other => err(format!(
            "{what} must be a number, got {}",
            other.type_name()
        )),
    }
}

fn positive(obj: &BTreeMap<String, Json>, key: &str, ctx: &str) -> Result<f64, SchemaError> {
    let x = as_number(get(obj, key)?, &format!("{ctx}.{key}"))?;
    if x > 0.0 {
        Ok(x)
    } else {
        err(format!("{ctx}.{key} must be > 0, got {x}"))
    }
}

/// Validates a bench report document against schema version 1.
pub fn validate_report(text: &str) -> Result<(), SchemaError> {
    let root = as_object(&parse_json(text)?, "report")?;

    let version = as_number(get(&root, "version")?, "version")?;
    if version != 1.0 {
        return err(format!("version must be 1, got {version}"));
    }
    let mode = as_string(get(&root, "mode")?, "mode")?;
    if mode != "full" && mode != "smoke" {
        return err(format!("mode must be \"full\" or \"smoke\", got {mode:?}"));
    }

    let entries = as_array(get(&root, "entries")?, "entries")?;
    if entries.is_empty() {
        return err("entries must not be empty");
    }
    let mut groups_seen = Vec::new();
    let mut names_seen = Vec::new();
    for (i, entry) in entries.iter().enumerate() {
        let ctx = format!("entries[{i}]");
        let obj = as_object(entry, &ctx)?;
        let name = as_string(get(&obj, "name")?, &format!("{ctx}.name"))?;
        let group = as_string(get(&obj, "group")?, &format!("{ctx}.group"))?;
        if !matches!(group, "kernel" | "codec" | "e2e") {
            return err(format!(
                "{ctx}.group must be kernel|codec|e2e, got {group:?}"
            ));
        }
        let iters = as_number(get(&obj, "iters")?, &format!("{ctx}.iters"))?;
        if iters < 1.0 || iters.fract() != 0.0 {
            return err(format!(
                "{ctx}.iters must be a positive integer, got {iters}"
            ));
        }
        positive(&obj, "ns_per_iter", &ctx)?;
        positive(&obj, "throughput", &ctx)?;
        as_string(
            get(&obj, "throughput_unit")?,
            &format!("{ctx}.throughput_unit"),
        )?;
        if names_seen.contains(&name.to_string()) {
            return err(format!("duplicate entry name {name:?}"));
        }
        names_seen.push(name.to_string());
        if !groups_seen.contains(&group.to_string()) {
            groups_seen.push(group.to_string());
        }
    }
    for group in ["kernel", "codec", "e2e"] {
        if !groups_seen.iter().any(|g| g == group) {
            return err(format!("entries must cover group {group:?}"));
        }
    }
    for backend in ["e2e_sim", "e2e_threads", "e2e_tcp"] {
        if !names_seen.iter().any(|n| n == backend) {
            return err(format!("missing e2e backend entry {backend:?}"));
        }
    }

    let deltas = as_array(get(&root, "deltas")?, "deltas")?;
    for (i, delta) in deltas.iter().enumerate() {
        let ctx = format!("deltas[{i}]");
        let obj = as_object(delta, &ctx)?;
        as_string(get(&obj, "name")?, &format!("{ctx}.name"))?;
        let before = positive(&obj, "before_ns", &ctx)?;
        let after = positive(&obj, "after_ns", &ctx)?;
        let speedup = positive(&obj, "speedup", &ctx)?;
        let ratio = before / after;
        // The serializer rounds every number; allow the ratio check the
        // slack that rounding can introduce.
        if (speedup - ratio).abs() > 0.05 * ratio.max(speedup) + 0.11 {
            return err(format!(
                "{ctx}.speedup {speedup} inconsistent with before/after ratio {ratio:.3}"
            ));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
      "version": 1,
      "mode": "smoke",
      "entries": [
        { "name": "radix_partition_4k", "group": "kernel", "iters": 3,
          "ns_per_iter": 1000.0, "throughput": 4.1e9, "throughput_unit": "tuples/s" },
        { "name": "wire_encode_16k", "group": "codec", "iters": 3,
          "ns_per_iter": 1000.0, "throughput": 1.0e9, "throughput_unit": "bytes/s" },
        { "name": "e2e_sim", "group": "e2e", "iters": 1,
          "ns_per_iter": 1000.0, "throughput": 8.0, "throughput_unit": "revolutions/s" },
        { "name": "e2e_threads", "group": "e2e", "iters": 1,
          "ns_per_iter": 1000.0, "throughput": 8.0, "throughput_unit": "revolutions/s" },
        { "name": "e2e_tcp", "group": "e2e", "iters": 1,
          "ns_per_iter": 1000.0, "throughput": 8.0, "throughput_unit": "revolutions/s" }
      ],
      "deltas": [
        { "name": "envelope_encode_buffer", "before_ns": 200.0, "after_ns": 100.0, "speedup": 2.0 }
      ]
    }"#;

    #[test]
    fn good_report_validates() {
        validate_report(GOOD).unwrap();
    }

    #[test]
    fn parser_handles_scalars_and_nesting() {
        let v = parse_json(r#"{"a": [1, -2.5e3, "x\n", true, null, {}]}"#).unwrap();
        let Json::Object(map) = v else {
            panic!("not an object")
        };
        let Some(Json::Array(items)) = map.get("a") else {
            panic!("missing array")
        };
        assert_eq!(items[0], Json::Number(1.0));
        assert_eq!(items[1], Json::Number(-2500.0));
        assert_eq!(items[2], Json::String("x\n".into()));
        assert_eq!(items[3], Json::Bool(true));
        assert_eq!(items[4], Json::Null);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("{} extra").is_err());
        assert!(parse_json(r#"{"a": }"#).is_err());
        assert!(parse_json("[1,]").is_err());
    }

    fn mutate(from: &str, to: &str) -> String {
        assert!(GOOD.contains(from), "fixture must contain {from:?}");
        GOOD.replacen(from, to, 1)
    }

    #[test]
    fn wrong_version_is_rejected() {
        let bad = mutate("\"version\": 1", "\"version\": 2");
        assert!(validate_report(&bad).unwrap_err().0.contains("version"));
    }

    #[test]
    fn bad_mode_is_rejected() {
        let bad = mutate("\"smoke\"", "\"warp\"");
        assert!(validate_report(&bad).unwrap_err().0.contains("mode"));
    }

    #[test]
    fn missing_backend_is_rejected() {
        let bad = mutate("e2e_tcp", "e2e_quic");
        assert!(validate_report(&bad).unwrap_err().0.contains("e2e_tcp"));
    }

    #[test]
    fn extra_backend_entries_are_accepted() {
        // Reports from before the reactor backend existed lack the
        // entry; newer reports carry it. Both must validate.
        let with_reactor = mutate(
            r#"{ "name": "e2e_tcp", "group": "e2e", "iters": 1,
          "ns_per_iter": 1000.0, "throughput": 8.0, "throughput_unit": "revolutions/s" }"#,
            r#"{ "name": "e2e_tcp", "group": "e2e", "iters": 1,
          "ns_per_iter": 1000.0, "throughput": 8.0, "throughput_unit": "revolutions/s" },
        { "name": "e2e_reactor", "group": "e2e", "iters": 1,
          "ns_per_iter": 1000.0, "throughput": 8.0, "throughput_unit": "revolutions/s" }"#,
        );
        validate_report(&with_reactor).unwrap();
    }

    #[test]
    fn missing_group_is_rejected() {
        let bad = mutate("\"group\": \"codec\"", "\"group\": \"kernel\"");
        assert!(validate_report(&bad).unwrap_err().0.contains("codec"));
    }

    #[test]
    fn nonpositive_measurement_is_rejected() {
        let bad = mutate(
            "\"ns_per_iter\": 1000.0, \"throughput\": 4.1e9",
            "\"ns_per_iter\": 0.0, \"throughput\": 4.1e9",
        );
        assert!(validate_report(&bad).unwrap_err().0.contains("ns_per_iter"));
    }

    #[test]
    fn inconsistent_speedup_is_rejected() {
        let bad = mutate("\"speedup\": 2.0", "\"speedup\": 9.0");
        assert!(validate_report(&bad)
            .unwrap_err()
            .0
            .contains("inconsistent"));
    }

    #[test]
    fn duplicate_entry_names_are_rejected() {
        let bad = mutate("radix_partition_4k", "wire_encode_16k");
        assert!(validate_report(&bad).unwrap_err().0.contains("duplicate"));
    }
}
