//! Report assembly and rendering for `xtask analyze`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;

use crate::lints::{Finding, Lint};

/// A suppression that matched no finding — stale, so reported: dead
/// `allow` annotations otherwise accumulate and hide future regressions.
#[derive(Debug, Clone)]
pub struct UnusedAnnotation {
    /// File the annotation is in.
    pub file: PathBuf,
    /// 1-based line of the annotation comment.
    pub line: u32,
    /// Lint kind it names.
    pub kind: String,
}

/// The full analysis result.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, suppressed or not, in walk order.
    pub findings: Vec<Finding>,
    /// Annotations that suppressed nothing.
    pub unused: Vec<UnusedAnnotation>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that are *not* suppressed.
    pub fn live(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// Findings that an annotation suppressed.
    pub fn suppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_some())
    }

    /// Live findings for one lint (fixture tests assert on these counts).
    pub fn live_count(&self, lint: Lint) -> usize {
        self.live().filter(|f| f.lint == lint).count()
    }

    /// Suppressed findings for one lint.
    pub fn suppressed_count(&self, lint: Lint) -> usize {
        self.suppressed().filter(|f| f.lint == lint).count()
    }

    /// Process exit code: non-zero when anything needs fixing.
    pub fn exit_code(&self) -> i32 {
        if self.live().next().is_some() || !self.unused.is_empty() {
            1
        } else {
            0
        }
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let lints = [
            Lint::NoPanicPaths,
            Lint::NoWallClockInSim,
            Lint::CounterRegistry,
            Lint::LockOrdering,
            Lint::SansIo,
            Lint::OutputMatch,
        ];
        for lint in lints {
            let live: Vec<&Finding> = self.live().filter(|f| f.lint == lint).collect();
            let nsupp = self.suppressed_count(lint);
            if live.is_empty() && nsupp == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{} {} — {} violation(s), {} suppressed",
                lint.id(),
                lint.name(),
                live.len(),
                nsupp
            );
            for f in live {
                let _ = writeln!(out, "  {}:{}: {}", f.file.display(), f.line, f.message);
            }
        }
        // Suppression tally: reasons grouped so reviewers can audit the
        // debt in one place.
        let mut reasons: BTreeMap<&str, usize> = BTreeMap::new();
        for f in self.suppressed() {
            if let Some(reason) = f.suppressed.as_deref() {
                *reasons.entry(reason).or_insert(0) += 1;
            }
        }
        if !reasons.is_empty() {
            let _ = writeln!(out, "suppressions by reason:");
            for (reason, n) in &reasons {
                let _ = writeln!(out, "  {n}× {reason:?}");
            }
        }
        for u in &self.unused {
            let _ = writeln!(
                out,
                "  {}:{}: unused `analyze: allow({})` annotation — remove it",
                u.file.display(),
                u.line,
                u.kind
            );
        }
        let _ = writeln!(
            out,
            "scanned {} file(s): {} violation(s), {} suppressed, {} unused annotation(s)",
            self.files_scanned,
            self.live().count(),
            self.suppressed().count(),
            self.unused.len()
        );
        out
    }
}
