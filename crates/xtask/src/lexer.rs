//! A small, self-contained Rust lexer.
//!
//! The analysis lints (see [`crate::lints`]) need a *token* view of each
//! source file — string/char/comment contents must not masquerade as code,
//! line numbers must survive, and `// analyze: allow(...)` annotations must
//! be collected — but they do not need expression trees. This lexer covers
//! the token shapes that occur in the workspace: identifiers, lifetimes,
//! numbers, `"…"`/`r#"…"#`/`b"…"` strings, character literals, nested block
//! comments, and single-character punctuation. It exists because the build
//! runs in hermetic containers with no crates-io access, so `syn` is not
//! available; for the repo lints the token model is also simply *enough*.

/// Kinds of tokens the lints distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// String literal of any flavor (plain, raw, byte).
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal (integer or float, any base, any suffix).
    Num,
    /// A single punctuation character (`.`, `[`, `!`, …).
    Punct(char),
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text. For strings this is the *unquoted* content.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True if this is punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// True if this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// A comment encountered during lexing (the lints scan these for
/// `analyze:` annotations).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when source code precedes the comment on the same line
    /// (a trailing comment annotates its own line, a standalone comment
    /// annotates what follows).
    pub trailing: bool,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Invalid UTF-8 never reaches this
/// function (files are read as strings); lexically broken files produce a
/// best-effort token stream rather than an error — the compiler is the
/// authority on validity, the lints only need positions.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_has_code = false;

    macro_rules! bump_line {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
                line_has_code = false;
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            bump_line!(c);
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start_line = line;
            let mut text = String::new();
            i += 2;
            // Swallow doc-comment markers so `/// text` and `//! text`
            // read as plain comment text.
            while matches!(chars.get(i), Some('/') | Some('!')) {
                i += 1;
            }
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                i += 1;
            }
            out.comments.push(Comment {
                text: text.trim().to_string(),
                line: start_line,
                trailing: line_has_code,
            });
            continue;
        }
        // Block comment (nested).
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start_line = line;
            let was_trailing = line_has_code;
            let mut depth = 1usize;
            let mut text = String::new();
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    bump_line!(chars[i]);
                    text.push(chars[i]);
                    i += 1;
                }
            }
            out.comments.push(Comment {
                text: text.trim().to_string(),
                line: start_line,
                trailing: was_trailing,
            });
            continue;
        }
        line_has_code = true;
        // Raw strings: r"…", r#"…"#, br#"…"# (any number of #).
        if (c == 'r' || c == 'b') && is_raw_string_start(&chars, i) {
            let start_line = line;
            let mut j = i;
            if chars[j] == 'b' {
                j += 1;
            }
            if chars.get(j) == Some(&'r') {
                j += 1;
            }
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            // Opening quote.
            j += 1;
            let mut text = String::new();
            'raw: while j < chars.len() {
                if chars[j] == '"' {
                    let mut k = 0usize;
                    while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                        k += 1;
                    }
                    if k == hashes {
                        j += 1 + hashes;
                        break 'raw;
                    }
                }
                bump_line!(chars[j]);
                text.push(chars[j]);
                j += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Str,
                text,
                line: start_line,
            });
            i = j;
            continue;
        }
        // Plain / byte strings.
        if c == '"' || (c == 'b' && chars.get(i + 1) == Some(&'"')) {
            let start_line = line;
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            let mut text = String::new();
            while j < chars.len() && chars[j] != '"' {
                if chars[j] == '\\' && j + 1 < chars.len() {
                    text.push(chars[j]);
                    text.push(chars[j + 1]);
                    bump_line!(chars[j + 1]);
                    j += 2;
                } else {
                    bump_line!(chars[j]);
                    text.push(chars[j]);
                    j += 1;
                }
            }
            out.tokens.push(Tok {
                kind: TokKind::Str,
                text,
                line: start_line,
            });
            i = j + 1;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let start_line = line;
            if chars.get(i + 1) == Some(&'\\') {
                // Escaped char literal: '\n', '\'', '\u{…}'.
                let mut j = i + 2;
                while j < chars.len() && chars[j] != '\'' {
                    j += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Char,
                    text: chars[i + 1..j.min(chars.len())].iter().collect(),
                    line: start_line,
                });
                i = j + 1;
                continue;
            }
            // Collect identifier-ish chars after the quote.
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            if chars.get(j) == Some(&'\'') && j > i + 1 {
                // 'a' — a char literal.
                out.tokens.push(Tok {
                    kind: TokKind::Char,
                    text: chars[i + 1..j].iter().collect(),
                    line: start_line,
                });
                i = j + 1;
            } else if chars
                .get(i + 1)
                .is_some_and(|&c| c.is_alphanumeric() || c == '_')
            {
                // 'a without a closing quote — a lifetime.
                out.tokens.push(Tok {
                    kind: TokKind::Lifetime,
                    text: chars[i + 1..j].iter().collect(),
                    line: start_line,
                });
                i = j;
            } else {
                // Bare quote (broken source); emit as punctuation.
                out.tokens.push(Tok {
                    kind: TokKind::Punct('\''),
                    text: "'".into(),
                    line: start_line,
                });
                i += 1;
            }
            continue;
        }
        // Identifiers / keywords.
        if c.is_alphabetic() || c == '_' {
            let start_line = line;
            let mut j = i;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text: chars[i..j].iter().collect(),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Numbers: digits, `_`, alphanumeric suffixes/bases, and a dot only
        // when followed by a digit (so `0..4` and `1.max(2)` stay intact).
        if c.is_ascii_digit() {
            let start_line = line;
            let mut j = i;
            while j < chars.len() {
                let d = chars[j];
                let part_of_number = d.is_alphanumeric()
                    || d == '_'
                    || (d == '.' && chars.get(j + 1).is_some_and(char::is_ascii_digit));
                if part_of_number {
                    j += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Tok {
                kind: TokKind::Num,
                text: chars[i..j].iter().collect(),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Everything else: single-character punctuation.
        out.tokens.push(Tok {
            kind: TokKind::Punct(c),
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// True when position `i` starts a raw (possibly byte) string literal.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn strings_do_not_leak_code_tokens() {
        let l = lex(r#"let x = "panic!(oops) [0]";"#);
        let strs: Vec<_> = l.tokens.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(!l.tokens.iter().any(|t| t.is_punct('[')));
    }

    #[test]
    fn raw_and_byte_strings_lex_as_one_token() {
        assert_eq!(kinds(r##"r#"a "quoted" b"#"##), vec![TokKind::Str]);
        assert_eq!(kinds(r#"b"bytes""#), vec![TokKind::Str]);
        assert_eq!(kinds(r##"br#"raw bytes"#"##), vec![TokKind::Str]);
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = l.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn ranges_do_not_merge_into_floats() {
        let l = lex("&bytes[0..4]");
        let nums: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, ["0", "4"]);
        assert!(l.tokens.iter().any(|t| t.is_punct('[')));
    }

    #[test]
    fn floats_and_method_calls_on_ints() {
        let l = lex("let a = 1.5; let b = 1.max(2);");
        let nums: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, ["1.5", "1", "2"]);
    }

    #[test]
    fn comments_carry_lines_and_trailing_flags() {
        let l = lex("let x = 1; // trailing\n// standalone\nlet y = 2;");
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].trailing);
        assert_eq!(l.comments[0].text, "trailing");
        assert!(!l.comments[1].trailing);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let l = lex("/* outer /* inner */ still outer */ let x = 1;");
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.tokens.len(), 5); // let x = 1 ;
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let l = lex("let s = \"a\nb\";\nlet t = 2;");
        let t2 = l.tokens.iter().find(|t| t.is_ident("t")).map(|t| t.line);
        assert_eq!(t2, Some(3));
    }
}
