//! L6 fixture — seeded wildcard arms in `protocol::Output` dispatch
//! matches. Expected under the L6 policy: 2 live findings, 1 suppressed.

pub fn drive_with_a_catch_all(out: Output) {
    match out {
        Output::Send { to, .. } => send(to),
        Output::Delivered { host, id } => log(host, id),
        _ => {} // seeded violation: swallows any future output
    }
}

pub fn drive_with_a_guarded_catch_all(out: Output) {
    let n = match out {
        Output::Ack { .. } => 1,
        _ if quiet() => 0, // seeded violation: the guard does not excuse it
        Output::Retire(id) => id,
    };
    drop(n);
}

pub fn audited(out: Output) {
    match out {
        Output::Teardown(why) => fail(why),
        _ => {} // analyze: allow(output-match, reason = "fixture: migration shim, tracked")
    }
}

pub fn non_output_matches_are_ignored(x: Option<u8>) {
    // A wildcard over a foreign enum is rustc's business, not L6's.
    match x {
        Some(v) => drop(v),
        _ => {}
    }
}

pub fn nested_underscores_are_bindings_not_wildcards(out: Output) {
    match out {
        Output::Send { to: _, .. } => bump(),
        Output::Delivered { .. } => bump(),
        Output::Ack { .. } => bump(),
        Output::Retire(_) => bump(),
        Output::Teardown(_) => bump(),
    }
}
