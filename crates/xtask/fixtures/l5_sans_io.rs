//! L5 fixture — seeded sans-IO violations in protocol-layer code.
//! Expected under the L5 policy: 6 live findings, 1 suppressed.

use std::net::TcpStream; // seeded violation: a socket in the state machine
use std::thread; // seeded violation: an execution context

pub fn protocol_grew_a_driver_dependency() {
    let pool = crate::sync::mpmc::bounded::<u8>(1); // seeded violation
    let deadline = simnet::time::SimTime::ZERO; // seeded violation
    thread::spawn(move || drop(pool)); // seeded violation: spawn call
    drop(deadline);
}

pub fn protocol_grew_a_listener() {
    // Seeded violation shaped like the TCP driver's setup path: binding a
    // port is driver work and must never appear in the shared core.
    let l = std::net::TcpListener::bind(("127.0.0.1", 0));
    drop(l);
}

pub fn pure_state_machine_is_fine(now: u64) -> u64 {
    // `spawn` and `net` as plain identifiers are not paths or calls.
    let spawn = now + 1;
    let net = spawn * 2;
    net
}

pub fn audited() {
    spawn_probe(); // helper call, not a spawn
    spawn(7); // analyze: allow(sans-io, reason = "fixture: free fn shadows the banned name")
}

fn spawn_probe() {}
