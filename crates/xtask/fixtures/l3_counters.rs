//! L3 fixture — counter names checked against the unified registry in
//! `crates/simnet/src/span.rs` (`pub mod counter`).
//! Expected under the L3 policy: 2 live findings, 1 suppressed.

pub fn emit_counters(tracer: &mut Tracer) {
    tracer.count("envelopes_sent", 1); // registered: clean
    tracer.count("retransmits", 2); // registered: clean
    tracer.count("bogus_counter", 1); // seeded violation
    tracer.count("another_typo", 1); // seeded violation
    tracer.count("legacy_counter", 1); // analyze: allow(counter, reason = "fixture: migration window for renamed counter")
    let name = runtime_name();
    tracer.count(name, 1); // non-literal: out of scope for a static lint
}
