//! L3 fixture — counter names checked against the unified registry in
//! `crates/simnet/src/span.rs` (`pub mod counter`), in both spellings:
//! string literals and `counter::NAME` constants.
//! Expected under the L3 policy: 3 live findings, 1 suppressed.

pub fn emit_counters(tracer: &mut Tracer) {
    tracer.count("envelopes_sent", 1); // registered: clean
    tracer.count("retransmits", 2); // registered: clean
    tracer.count("bogus_counter", 1); // seeded violation
    tracer.count("another_typo", 1); // seeded violation
    tracer.count("legacy_counter", 1); // analyze: allow(counter, reason = "fixture: migration window for renamed counter")
    let name = runtime_name();
    tracer.count(name, 1); // non-literal receiver name: out of scope for a static lint
}

pub fn emit_query_counters(tracer: &mut Tracer) {
    tracer.count(counter::QUERIES_ADMITTED, 1); // registered constant: clean
    tracer.count(counter::QUERIES_COMPLETED, 1); // registered constant: clean
    tracer.count(counter::QUERIES_EVAPORATED, 1); // seeded violation: no such constant
}
