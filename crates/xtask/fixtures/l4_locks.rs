//! L4 fixture — nested lock acquisitions against the declared order
//! (`collector` locks before the shared span `tracer`).
//! Expected under the L4 policy: 2 live findings, 1 suppressed.

pub fn wrong_order(&self) {
    let _t = self.tracer.lock();
    let _c = self.collector.lock(); // seeded violation: collector under tracer
}

pub fn same_class_nesting() {
    let _g1 = left_collector.lock();
    let _g2 = right_collector.lock(); // seeded violation: same-class nesting
}

pub fn audited(&self, h: usize) {
    let _t = self.spans.lock();
    let _c = collectors[h].lock(); // analyze: allow(lock-order, reason = "fixture: teardown path, tracer thread already joined")
}

pub fn correct_order(&self, h: usize) {
    {
        let _c = collectors[h].lock();
        let _t = self.tracer.lock();
    }
    let _again = collector.lock();
}

pub fn unclassified_locks_ignored(&self) {
    let _q = self.queue.lock();
    let _r = self.registry_state.lock();
}
