//! L2 fixture — seeded wall-clock-in-sim violations.
//! Expected under the L2 policy: 3 live findings, 1 suppressed.

pub fn wall_clock_violations() {
    let a = Instant::now(); // seeded violation
    let b = std::time::SystemTime::now(); // seeded violation
    let elapsed: Instant = a; // seeded violation (type position counts too)
    let _ = (b, elapsed);
}

pub fn virtual_time_is_fine(now: SimTime) -> SimTime {
    now + SimDuration::from_micros(10)
}

pub fn audited() {
    let _boot = Instant::now(); // analyze: allow(wall-clock, reason = "fixture: process boot stamp, never enters sim time")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_real_clocks() {
        let _ = Instant::now();
    }
}
