//! L1 fixture — seeded no-panic-path violations with exact known counts.
//! Never compiled; read by `crates/xtask/tests/lints.rs` and by
//! `cargo run -p xtask -- analyze --fixtures`.
//!
//! Expected under the L1 policy: 7 live findings (6 seeded violations plus
//! 1 malformed annotation), 2 suppressed, 1 unused annotation.

pub fn hot_path(xs: &[u32]) -> u32 {
    let a = xs[0]; // seeded violation: slice indexing
    let b = xs.first().unwrap(); // seeded violation: unwrap
    let c = compute().expect("nope"); // seeded violation: expect
    if a > 10 {
        panic!("too big"); // seeded violation: panic!
    }
    match b {
        0 => unreachable!(), // seeded violation: unreachable!
        _ => todo!(), // seeded violation: todo!
    }
}

pub fn audited_line(xs: &[u32]) -> u32 {
    xs[1] // analyze: allow(panic, reason = "fixture: index bounded by caller contract")
}

// analyze: allow(panic, reason = "fixture: whole-function audit")
pub fn audited_fn(xs: &[u32]) -> u32 {
    xs[2]
}

// analyze: allow(panic, reason = "fixture: stale suppression, matches nothing")
pub fn clean() -> u32 {
    0
}

// analyze: allow(panic)
pub fn also_clean() -> u32 {
    1
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v = vec![1, 2];
        let _ = v[0];
        v.get(1).unwrap();
        panic!("even this");
    }
}
