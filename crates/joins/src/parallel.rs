//! Minimal fork-join helpers over crossbeam scoped threads.
//!
//! The paper's join phases use all four cores of the testbed machines; our
//! implementations take an explicit thread count (cyclo-join's §V-G
//! experiment varies it from 1 to 4) and split work into per-thread shards
//! that are joined at the end. `threads == 1` runs inline with no spawn
//! overhead, which also keeps single-threaded runs exactly deterministic
//! in profilers.

/// Runs `worker(shard_index)` on `threads` scoped threads and returns all
/// results in shard order.
///
/// # Panics
///
/// Panics if `threads` is zero, or if any worker panics (the panic is
/// propagated).
pub fn fork_join<T, F>(threads: usize, worker: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads > 0, "fork_join needs at least one thread");
    if threads == 1 {
        return vec![worker(0)];
    }
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let worker = &worker;
                scope.spawn(move |_| worker(i))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fork_join worker panicked"))
            .collect()
    })
    .expect("fork_join scope panicked")
}

/// Splits `len` items into `shards` contiguous ranges of near-equal size.
/// Empty ranges appear when `shards > len`.
pub fn shard_ranges(len: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    assert!(shards > 0, "need at least one shard");
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_join_returns_in_shard_order() {
        let results = fork_join(4, |i| i * 10);
        assert_eq!(results, vec![0, 10, 20, 30]);
    }

    #[test]
    fn fork_join_single_thread_runs_inline() {
        let results = fork_join(1, |i| {
            assert_eq!(i, 0);
            "inline"
        });
        assert_eq!(results, vec!["inline"]);
    }

    #[test]
    fn fork_join_actually_parallelizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        fork_join(8, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = fork_join(0, |_| ());
    }

    #[test]
    fn shard_ranges_cover_exactly() {
        let ranges = shard_ranges(10, 3);
        assert_eq!(ranges, vec![0..4, 4..7, 7..10]);
        let ranges = shard_ranges(2, 4);
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 2);
        assert_eq!(ranges.len(), 4);
    }

    #[test]
    fn shard_ranges_empty_input() {
        let ranges = shard_ranges(0, 3);
        assert!(ranges.iter().all(|r| r.is_empty()));
    }
}
