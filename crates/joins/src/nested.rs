//! Blocked nested-loops join — the universal fallback.
//!
//! For join predicates with no exploitable structure (no equality to hash
//! on, no band to merge through) the system "falls back to the universal
//! but slower nested loops join" (§IV-C). The implementation is blocked
//! for cache locality — the inner relation is re-scanned once per probe
//! *block* rather than once per probe tuple — and the probe side is
//! sharded across threads.

use relation::{MatchPair, Relation};

use crate::collector::JoinCollector;
use crate::parallel::{fork_join, shard_ranges};
use crate::predicate::JoinPredicate;

/// Probe tuples per block; one block of keys stays cache-resident while
/// the inner relation streams past it.
const BLOCK: usize = 4096;

/// Joins `r` and `s` under an arbitrary `predicate` with `threads` workers.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn nested_loops_join(
    r: &Relation,
    s: &Relation,
    predicate: &JoinPredicate,
    threads: usize,
    collector: &mut JoinCollector,
) {
    let ranges = shard_ranges(r.len(), threads);
    let shards = fork_join(threads, |i| {
        let mut local = collector.child();
        let range = ranges[i].clone();
        let mut block_start = range.start;
        while block_start < range.end {
            let block_end = (block_start + BLOCK).min(range.end);
            for si in 0..s.len() {
                let s_tuple = s.get(si).expect("si in bounds");
                for ri in block_start..block_end {
                    let r_tuple = r.get(ri).expect("ri in bounds");
                    if predicate.matches(r_tuple.key, s_tuple.key) {
                        local.push(MatchPair::new(r_tuple, s_tuple));
                    }
                }
            }
            block_start = block_end;
        }
        local
    });
    for shard in shards {
        collector.merge(shard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::join::reference_equi_join;
    use relation::{Checksum, GenSpec};

    #[test]
    fn equi_predicate_matches_reference() {
        let r = GenSpec::uniform(800, 70).generate();
        let s = GenSpec::uniform(800, 71).generate();
        let mut c = JoinCollector::aggregating();
        nested_loops_join(&r, &s, &JoinPredicate::Equi, 2, &mut c);
        let reference = reference_equi_join(&r, &s);
        assert_eq!(c.count(), reference.len() as u64);
        assert_eq!(
            c.checksum(),
            reference.iter().copied().collect::<Checksum>()
        );
    }

    #[test]
    fn theta_predicate_is_honoured() {
        let r = Relation::from_pairs([(1, 0), (5, 0), (10, 0)]);
        let s = Relation::from_pairs([(2, 0), (6, 0), (20, 0)]);
        // r.key < s.key
        let pred = JoinPredicate::theta(|rk, sk| rk < sk);
        let mut c = JoinCollector::aggregating();
        nested_loops_join(&r, &s, &pred, 1, &mut c);
        // (1,2),(1,6),(1,20),(5,6),(5,20),(10,20)
        assert_eq!(c.count(), 6);
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let r = GenSpec::uniform(1_000, 72).generate();
        let s = GenSpec::uniform(1_000, 73).generate();
        let pred = JoinPredicate::band(2);
        let mut results = Vec::new();
        for threads in [1, 2, 5] {
            let mut c = JoinCollector::aggregating();
            nested_loops_join(&r, &s, &pred, threads, &mut c);
            results.push((c.count(), c.checksum()));
        }
        assert!(results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn blocks_larger_than_input_work() {
        let r = GenSpec::uniform(10, 74).generate();
        let s = GenSpec::uniform(10, 75).generate();
        let mut c = JoinCollector::aggregating();
        nested_loops_join(&r, &s, &JoinPredicate::Equi, 4, &mut c);
        assert_eq!(c.count(), reference_equi_join(&r, &s).len() as u64);
    }

    #[test]
    fn empty_inputs() {
        let mut c = JoinCollector::aggregating();
        nested_loops_join(
            &Relation::new(),
            &Relation::new(),
            &JoinPredicate::Equi,
            2,
            &mut c,
        );
        assert_eq!(c.count(), 0);
    }
}
