//! Timing helpers and phase breakdowns for join execution.
//!
//! The paper reports every experiment as a **setup** / **join** (and later
//! **sync**) phase breakdown; [`PhaseTimes`] is that record for real,
//! wall-clock-measured local execution. (The simulator keeps its own
//! virtual-time breakdowns; this type is for the measured-compute path.)

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Runs `f`, returning its result and the wall-clock time it took.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Wall-clock time spent in each phase of a (local) join execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// Setup phase: partitioning + hash-table build, or sorting.
    pub setup: Duration,
    /// Join phase: probing or merging.
    pub join: Duration,
}

impl PhaseTimes {
    /// Total across phases.
    pub fn total(&self) -> Duration {
        self.setup + self.join
    }

    /// Component-wise sum.
    pub fn combine(&self, other: &PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            setup: self.setup + other.setup,
            join: self.join + other.join,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_and_returns() {
        let (value, elapsed) = timed(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(value, 42);
        assert!(elapsed >= Duration::from_millis(5));
    }

    #[test]
    fn phase_times_combine() {
        let a = PhaseTimes {
            setup: Duration::from_millis(10),
            join: Duration::from_millis(20),
        };
        let b = PhaseTimes {
            setup: Duration::from_millis(1),
            join: Duration::from_millis(2),
        };
        let c = a.combine(&b);
        assert_eq!(c.setup, Duration::from_millis(11));
        assert_eq!(c.join, Duration::from_millis(22));
        assert_eq!(c.total(), Duration::from_millis(33));
    }
}
