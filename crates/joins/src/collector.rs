//! Collecting join output.
//!
//! At paper-scale volumes, materializing every match is often unnecessary
//! (and for high-skew workloads, enormous): experiments mostly need the
//! match count and a verification checksum. A [`JoinCollector`] therefore
//! runs in one of two modes, and multi-threaded join phases give each
//! thread its own collector and [`merge`](JoinCollector::merge) them at
//! the end — no locks on the hot path.

use relation::{Checksum, MatchPair};
use serde::{Deserialize, Serialize};

/// What a collector retains about the matches that flow through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OutputMode {
    /// Keep every match (needed when the result feeds further processing).
    Materialize,
    /// Keep only the count and checksum (the benchmark default).
    #[default]
    Aggregate,
}

/// Accumulates join matches in the configured [`OutputMode`].
#[derive(Debug, Clone, Default)]
pub struct JoinCollector {
    mode: OutputMode,
    swap_sides: bool,
    matches: Vec<MatchPair>,
    checksum: Checksum,
}

impl JoinCollector {
    /// A collector in the given mode.
    pub fn new(mode: OutputMode) -> Self {
        JoinCollector {
            mode,
            swap_sides: false,
            matches: Vec::new(),
            checksum: Checksum::new(),
        }
    }

    /// Makes the collector swap the two sides of every match before
    /// recording it.
    ///
    /// Cyclo-join may rotate the *smaller* of the two input relations
    /// (§IV-B); when the logical `S` rotates, the local joins see it as
    /// their probe side, and the collector swaps each match back so the
    /// recorded result is always in `(R, S)` orientation regardless of the
    /// rotation choice.
    pub fn with_swapped_sides(mut self) -> Self {
        self.swap_sides = true;
        self
    }

    /// A fresh, empty collector with the same mode and side orientation —
    /// what parallel join phases hand to each worker thread before merging.
    pub fn child(&self) -> JoinCollector {
        JoinCollector {
            mode: self.mode,
            swap_sides: self.swap_sides,
            matches: Vec::new(),
            checksum: Checksum::new(),
        }
    }

    /// A materializing collector.
    pub fn materializing() -> Self {
        JoinCollector::new(OutputMode::Materialize)
    }

    /// An aggregating (count + checksum only) collector.
    pub fn aggregating() -> Self {
        JoinCollector::new(OutputMode::Aggregate)
    }

    /// The collector's mode.
    pub fn mode(&self) -> OutputMode {
        self.mode
    }

    /// Feeds one match into the collector.
    #[inline]
    pub fn push(&mut self, m: MatchPair) {
        let m = if self.swap_sides {
            MatchPair {
                key: m.s_key,
                s_key: m.key,
                r_payload: m.s_payload,
                s_payload: m.r_payload,
            }
        } else {
            m
        };
        self.checksum.fold_match(&m);
        if self.mode == OutputMode::Materialize {
            self.matches.push(m);
        }
    }

    /// Number of matches seen.
    pub fn count(&self) -> u64 {
        self.checksum.count
    }

    /// Order-independent checksum over all matches seen.
    pub fn checksum(&self) -> Checksum {
        self.checksum
    }

    /// The materialized matches (empty in aggregate mode).
    pub fn matches(&self) -> &[MatchPair] {
        &self.matches
    }

    /// Absorbs another collector's state (multiset union). Swap orientation
    /// is applied at [`JoinCollector::push`] time, so merging collectors
    /// with different orientations is fine — their contents are already
    /// normalized.
    ///
    /// # Panics
    ///
    /// Panics if the modes differ — merging a materializing collector into
    /// an aggregating one would silently drop matches.
    pub fn merge(&mut self, other: JoinCollector) {
        assert_eq!(
            self.mode, other.mode,
            "cannot merge collectors with different output modes"
        );
        self.checksum = self.checksum.combine(&other.checksum);
        if self.mode == OutputMode::Materialize {
            self.matches.extend(other.matches);
        }
    }

    /// Consumes the collector, returning the materialized matches.
    pub fn into_matches(self) -> Vec<MatchPair> {
        self.matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::Tuple;

    fn m(k: u32) -> MatchPair {
        MatchPair::new(Tuple::new(k, 1), Tuple::new(k, 2))
    }

    #[test]
    fn aggregate_mode_counts_without_storing() {
        let mut c = JoinCollector::aggregating();
        for k in 0..100 {
            c.push(m(k));
        }
        assert_eq!(c.count(), 100);
        assert!(c.matches().is_empty());
        assert!(!c.checksum().is_empty());
    }

    #[test]
    fn materialize_mode_stores_everything() {
        let mut c = JoinCollector::materializing();
        c.push(m(1));
        c.push(m(2));
        assert_eq!(c.count(), 2);
        assert_eq!(c.matches().len(), 2);
        assert_eq!(c.into_matches().len(), 2);
    }

    #[test]
    fn modes_agree_on_checksum() {
        let mut a = JoinCollector::aggregating();
        let mut b = JoinCollector::materializing();
        for k in 0..50 {
            a.push(m(k));
            b.push(m(k));
        }
        assert_eq!(a.checksum(), b.checksum());
    }

    #[test]
    fn merge_unions_counts_and_checksums() {
        let mut whole = JoinCollector::aggregating();
        for k in 0..30 {
            whole.push(m(k));
        }
        let mut left = JoinCollector::aggregating();
        let mut right = JoinCollector::aggregating();
        for k in 0..10 {
            left.push(m(k));
        }
        for k in 10..30 {
            right.push(m(k));
        }
        left.merge(right);
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.checksum(), whole.checksum());
    }

    #[test]
    #[should_panic(expected = "different output modes")]
    fn merging_mixed_modes_panics() {
        let mut a = JoinCollector::aggregating();
        a.merge(JoinCollector::materializing());
    }

    #[test]
    fn default_is_aggregate() {
        assert_eq!(JoinCollector::default().mode(), OutputMode::Aggregate);
    }
}
