//! The unified join-operator API that cyclo-join drives.
//!
//! Cyclo-join "can play together with arbitrary implementations of ⋈"
//! (§IV-C): the local algorithm never needs to know the setup is
//! distributed. The contract it must expose, though, is the **setup/join
//! phase split**, because cyclo-join invokes setup *once* and then reuses
//! its output for every fragment of a full revolution (§IV-D):
//!
//! * [`Algorithm::setup_stationary`] — the one-time investment over the
//!   host's stationary partition `S_i` (partition + hash tables, or sort);
//! * [`Algorithm::prepare_fragment`] — the one-time reorganization of a
//!   rotating fragment `R_j` at its origin host (radix-partition or sort;
//!   the reorganized form is what travels around the ring);
//! * [`Algorithm::join`] — the per-encounter join phase `R_j ⋈ S_i`.
//!
//! One ring-wide subtlety: the partitioned hash join requires probe
//! fragments and build tables to agree on the radix fan-out, so the ring
//! agrees on a single [`Algorithm::ring_radix_bits`] value up front.

use std::fmt;

use relation::Relation;
use serde::{Deserialize, Serialize};

use crate::collector::JoinCollector;
use crate::hash::{radix_bits_for, CacheParams, HashJoinState, RadixPartitioned};
use crate::nested::nested_loops_join;
use crate::predicate::JoinPredicate;
use crate::sort::{SortMergeState, SortedRun};

/// Which local join algorithm runs on every host.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Algorithm {
    /// MonetDB-style radix-partitioned hash join (equi-joins only).
    PartitionedHash(CacheParams),
    /// Sort-merge join (equi- and band joins).
    SortMerge,
    /// Blocked nested loops (any predicate; the slow universal fallback).
    NestedLoops,
}

impl Algorithm {
    /// The partitioned hash join with the paper's cache parameters.
    pub fn partitioned_hash() -> Self {
        Algorithm::PartitionedHash(CacheParams::default())
    }

    /// Picks the fastest algorithm that supports `predicate`, mirroring
    /// the paper's fallback chain: hash for equi, sort-merge for band,
    /// nested loops otherwise.
    pub fn for_predicate(predicate: &JoinPredicate) -> Self {
        match predicate {
            JoinPredicate::Equi => Algorithm::partitioned_hash(),
            JoinPredicate::Band { .. } => Algorithm::SortMerge,
            JoinPredicate::Theta(_) => Algorithm::NestedLoops,
        }
    }

    /// True if this algorithm can evaluate `predicate`.
    pub fn supports(&self, predicate: &JoinPredicate) -> bool {
        match self {
            Algorithm::PartitionedHash(_) => predicate.is_equi(),
            Algorithm::SortMerge => predicate.band_delta().is_some(),
            Algorithm::NestedLoops => true,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::PartitionedHash(_) => "partitioned-hash",
            Algorithm::SortMerge => "sort-merge",
            Algorithm::NestedLoops => "nested-loops",
        }
    }

    /// The radix fan-out every ring member must use, derived from the
    /// per-host stationary tuple count. Zero for non-hash algorithms.
    pub fn ring_radix_bits(&self, s_tuples_per_host: usize) -> u32 {
        match self {
            Algorithm::PartitionedHash(params) => radix_bits_for(s_tuples_per_host, params),
            _ => 0,
        }
    }

    /// Setup phase over the host's stationary partition.
    pub fn setup_stationary(
        &self,
        s: &Relation,
        radix_bits: u32,
        threads: usize,
    ) -> StationaryState {
        match self {
            Algorithm::PartitionedHash(params) => StationaryState::Hash(
                HashJoinState::build_parallel(s, radix_bits, params, threads),
            ),
            Algorithm::SortMerge => StationaryState::Sorted(SortMergeState::build(s, threads)),
            Algorithm::NestedLoops => StationaryState::Plain(s.clone()),
        }
    }

    /// Setup-phase reorganization of a rotating fragment at its origin
    /// host. The returned form is what circulates in the ring.
    pub fn prepare_fragment(
        &self,
        r: &Relation,
        radix_bits: u32,
        threads: usize,
    ) -> PreparedFragment {
        match self {
            Algorithm::PartitionedHash(params) => PreparedFragment::HashPartitioned(
                RadixPartitioned::new_parallel(r, radix_bits, params, threads),
            ),
            Algorithm::SortMerge => PreparedFragment::Sorted(SortedRun::sort(r, threads)),
            Algorithm::NestedLoops => PreparedFragment::Plain(r.clone()),
        }
    }

    /// Join phase: one fragment against one stationary state.
    ///
    /// # Panics
    ///
    /// Panics if the state/fragment kinds do not belong to this algorithm
    /// (they were prepared by a different one) or if `predicate` is not
    /// supported — callers validate with [`Algorithm::supports`] first.
    pub fn join(
        &self,
        state: &StationaryState,
        fragment: &PreparedFragment,
        predicate: &JoinPredicate,
        threads: usize,
        collector: &mut JoinCollector,
    ) {
        assert!(
            self.supports(predicate),
            "{} cannot evaluate predicate {predicate}",
            self.name()
        );
        match (self, state, fragment) {
            (
                Algorithm::PartitionedHash(_),
                StationaryState::Hash(hash),
                PreparedFragment::HashPartitioned(part),
            ) => hash.probe_partitioned(part, threads, collector),
            (
                Algorithm::SortMerge,
                StationaryState::Sorted(sorted),
                PreparedFragment::Sorted(run),
            ) => {
                let delta = predicate
                    .band_delta()
                    .expect("supports() guaranteed a band-style predicate");
                sorted.merge(run, delta, threads, collector);
            }
            (Algorithm::NestedLoops, StationaryState::Plain(s), PreparedFragment::Plain(r)) => {
                nested_loops_join(r, s, predicate, threads, collector);
            }
            _ => panic!(
                "mismatched setup state / fragment kind for algorithm {}",
                self.name()
            ),
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Setup-phase output over a stationary partition.
#[derive(Debug, Clone)]
pub enum StationaryState {
    /// Radix-partitioned hash tables.
    Hash(HashJoinState),
    /// The partition in sorted order.
    Sorted(SortMergeState),
    /// The partition as-is (nested loops needs no setup).
    Plain(Relation),
}

impl StationaryState {
    /// Number of stationary tuples covered.
    pub fn len(&self) -> usize {
        match self {
            StationaryState::Hash(h) => h.len(),
            StationaryState::Sorted(s) => s.len(),
            StationaryState::Plain(r) => r.len(),
        }
    }

    /// True if no tuples are covered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A rotating fragment in its ring-transport form.
#[derive(Debug, Clone)]
pub enum PreparedFragment {
    /// Radix-partitioned for hash probing.
    HashPartitioned(RadixPartitioned),
    /// Sorted for merging.
    Sorted(SortedRun),
    /// Unmodified tuples.
    Plain(Relation),
}

impl PreparedFragment {
    /// Number of tuples in the fragment.
    pub fn len(&self) -> usize {
        match self {
            PreparedFragment::HashPartitioned(p) => p.len(),
            PreparedFragment::Sorted(s) => s.len(),
            PreparedFragment::Plain(r) => r.len(),
        }
    }

    /// True if the fragment holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical bytes that travel over a ring link when this fragment is
    /// forwarded (12 bytes per tuple; reorganization does not change the
    /// volume, it only reorders it).
    pub fn byte_volume(&self) -> u64 {
        self.len() as u64 * relation::TUPLE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::join::reference_equi_join;
    use relation::{Checksum, GenSpec};

    fn run_algorithm(
        alg: Algorithm,
        pred: &JoinPredicate,
        r: &Relation,
        s: &Relation,
        threads: usize,
    ) -> (u64, Checksum) {
        let bits = alg.ring_radix_bits(s.len());
        let state = alg.setup_stationary(s, bits, threads);
        let frag = alg.prepare_fragment(r, bits, threads);
        let mut c = JoinCollector::aggregating();
        alg.join(&state, &frag, pred, threads, &mut c);
        (c.count(), c.checksum())
    }

    #[test]
    fn all_algorithms_agree_on_equi_joins() {
        let r = GenSpec::uniform(1_500, 80).generate();
        let s = GenSpec::uniform(1_500, 81).generate();
        let reference = reference_equi_join(&r, &s);
        let expected = (
            reference.len() as u64,
            reference.iter().copied().collect::<Checksum>(),
        );
        for alg in [
            Algorithm::partitioned_hash(),
            Algorithm::SortMerge,
            Algorithm::NestedLoops,
        ] {
            let got = run_algorithm(alg, &JoinPredicate::Equi, &r, &s, 2);
            assert_eq!(got, expected, "algorithm {alg} disagrees");
        }
    }

    #[test]
    fn sort_merge_and_nested_agree_on_band_joins() {
        let r = GenSpec::uniform(800, 82).generate();
        let s = GenSpec::uniform(800, 83).generate();
        let pred = JoinPredicate::band(3);
        let smj = run_algorithm(Algorithm::SortMerge, &pred, &r, &s, 2);
        let nl = run_algorithm(Algorithm::NestedLoops, &pred, &r, &s, 2);
        assert_eq!(smj, nl);
        assert!(smj.0 > 0, "band join should find matches on this workload");
    }

    #[test]
    fn support_matrix_matches_the_paper() {
        let hash = Algorithm::partitioned_hash();
        let smj = Algorithm::SortMerge;
        let nl = Algorithm::NestedLoops;
        let theta = JoinPredicate::theta(|a, b| a % 7 == b % 7);
        assert!(hash.supports(&JoinPredicate::Equi));
        assert!(!hash.supports(&JoinPredicate::band(1)));
        assert!(!hash.supports(&theta));
        assert!(smj.supports(&JoinPredicate::Equi));
        assert!(smj.supports(&JoinPredicate::band(1)));
        assert!(!smj.supports(&theta));
        assert!(nl.supports(&JoinPredicate::Equi));
        assert!(nl.supports(&JoinPredicate::band(1)));
        assert!(nl.supports(&theta));
    }

    #[test]
    fn for_predicate_picks_the_fallback_chain() {
        assert_eq!(
            Algorithm::for_predicate(&JoinPredicate::Equi).name(),
            "partitioned-hash"
        );
        assert_eq!(
            Algorithm::for_predicate(&JoinPredicate::band(5)).name(),
            "sort-merge"
        );
        assert_eq!(
            Algorithm::for_predicate(&JoinPredicate::theta(|_, _| true)).name(),
            "nested-loops"
        );
    }

    #[test]
    #[should_panic(expected = "cannot evaluate")]
    fn hash_join_rejects_band_predicates() {
        let r = GenSpec::uniform(10, 0).generate();
        let s = GenSpec::uniform(10, 1).generate();
        let _ = run_algorithm(
            Algorithm::partitioned_hash(),
            &JoinPredicate::band(1),
            &r,
            &s,
            1,
        );
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn mismatched_state_and_fragment_rejected() {
        let s = GenSpec::uniform(10, 2).generate();
        let r = GenSpec::uniform(10, 3).generate();
        let smj_state = Algorithm::SortMerge.setup_stationary(&s, 0, 1);
        let hash_frag = Algorithm::partitioned_hash().prepare_fragment(&r, 2, 1);
        let mut c = JoinCollector::aggregating();
        Algorithm::SortMerge.join(&smj_state, &hash_frag, &JoinPredicate::Equi, 1, &mut c);
    }

    #[test]
    fn fragment_byte_volume_is_preserved_by_preparation() {
        let r = GenSpec::uniform(1_000, 84).generate();
        for alg in [
            Algorithm::partitioned_hash(),
            Algorithm::SortMerge,
            Algorithm::NestedLoops,
        ] {
            let frag = alg.prepare_fragment(&r, alg.ring_radix_bits(1_000), 2);
            assert_eq!(frag.byte_volume(), r.byte_volume(), "algorithm {alg}");
            assert_eq!(frag.len(), r.len());
        }
    }
}
