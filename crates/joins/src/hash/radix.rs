//! Multi-pass radix partitioning.
//!
//! Partitioning scatters tuples into `2^bits` partitions according to the
//! low bits of `hash_key(key)`. Resolving too many bits in one pass would
//! thrash the TLB and cache (one open scatter target per partition), so
//! passes resolve at most [`CacheParams::max_bits_per_pass`] bits each,
//! refining the partitions of the previous pass — exactly the scheme of
//! Manegold, Boncz and Kersten \[22\].

use relation::{Key, Payload, Relation};
use serde::{Deserialize, Serialize};

use super::{hash_key, CacheParams};
use crate::parallel::{fork_join, shard_ranges};

/// A relation scattered into `2^bits` hash partitions.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RadixPartitioned {
    bits: u32,
    partitions: Vec<Relation>,
}

impl RadixPartitioned {
    /// Partitions `rel` on `bits` radix bits of the key hash, in passes of
    /// at most `params.max_bits_per_pass` bits.
    ///
    /// The first pass scatters straight from the borrowed input — the
    /// input is never cloned. Callers that own their relation and are done
    /// with it should prefer [`RadixPartitioned::from_owned`], which also
    /// avoids the copy on the `bits == 0` identity path.
    pub fn new(rel: &Relation, bits: u32, params: &CacheParams) -> Self {
        assert!(bits <= 24, "more than 2^24 partitions is never useful here");
        if bits == 0 {
            return RadixPartitioned {
                bits: 0,
                partitions: vec![rel.clone()],
            };
        }
        RadixPartitioned {
            bits,
            partitions: scatter_slices(rel.keys(), rel.payloads(), bits, params),
        }
    }

    /// Like [`RadixPartitioned::new`] but consumes the relation, so the
    /// `bits == 0` identity partitioning moves the storage instead of
    /// copying it. For `bits > 0` the input is scattered from a borrow and
    /// dropped — the partitions own fresh storage either way.
    pub fn from_owned(rel: Relation, bits: u32, params: &CacheParams) -> Self {
        assert!(bits <= 24, "more than 2^24 partitions is never useful here");
        if bits == 0 {
            return RadixPartitioned {
                bits: 0,
                partitions: vec![rel],
            };
        }
        RadixPartitioned::new(&rel, bits, params)
    }

    /// Like [`RadixPartitioned::new`] but scatters with `threads` worker
    /// threads: each thread partitions a contiguous chunk of the input and
    /// the per-partition pieces are concatenated. The partition *multisets*
    /// equal the sequential result; only the order of tuples within each
    /// partition differs.
    pub fn new_parallel(rel: &Relation, bits: u32, params: &CacheParams, threads: usize) -> Self {
        if threads <= 1 || rel.len() < 4 * threads {
            return RadixPartitioned::new(rel, bits, params);
        }
        if bits == 0 {
            return RadixPartitioned::new(rel, 0, params);
        }
        let ranges = shard_ranges(rel.len(), threads);
        let keys = rel.keys();
        let payloads = rel.payloads();
        // Each thread scatters its borrowed chunk of the input columns
        // directly — no per-chunk copy of the tuples before the scatter.
        let chunk_parts: Vec<Vec<Relation>> = fork_join(threads, |i| {
            let range = ranges[i].clone();
            scatter_slices(&keys[range.clone()], &payloads[range], bits, params)
        });
        let fanout = 1usize << bits;
        let mut partitions: Vec<Relation> = (0..fanout)
            .map(|j| {
                let cap = chunk_parts.iter().map(|cp| cp[j].len()).sum();
                Relation::with_capacity(cap)
            })
            .collect();
        for cp in &chunk_parts {
            for (j, p) in cp.iter().enumerate() {
                partitions[j].extend_from(p);
            }
        }
        RadixPartitioned { bits, partitions }
    }

    /// Reassembles a partitioned relation from its parts — the inverse of
    /// taking `bits()` and `partitions()` apart, used when a partitioned
    /// fragment is reconstructed after crossing a byte-oriented transport.
    ///
    /// # Panics
    ///
    /// Panics if `partitions.len() != 2^bits`; callers deserializing
    /// untrusted bytes must validate the count first.
    pub fn from_parts(bits: u32, partitions: Vec<Relation>) -> Self {
        assert_eq!(
            partitions.len(),
            1usize << bits,
            "a {bits}-bit radix partitioning needs exactly 2^{bits} partitions"
        );
        RadixPartitioned { bits, partitions }
    }

    /// Number of radix bits (`partitions() == 2^bits`).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The partitions, indexed by the low `bits` of the key hash.
    pub fn partitions(&self) -> &[Relation] {
        &self.partitions
    }

    /// Consumes the partitioning, returning the owned partitions — lets a
    /// consumer (the per-partition hash-table build) take over the backing
    /// storage instead of copying both columns of every partition.
    pub fn into_partitions(self) -> Vec<Relation> {
        self.partitions
    }

    /// Partition `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn partition(&self, index: usize) -> &Relation {
        &self.partitions[index]
    }

    /// Total number of tuples across all partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(Relation::len).sum()
    }

    /// True if no partition holds any tuple.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical byte volume (12 bytes per tuple), for transport accounting.
    pub fn byte_volume(&self) -> u64 {
        self.partitions.iter().map(Relation::byte_volume).sum()
    }

    /// Reassembles a flat relation (partition order; for tests).
    pub fn flatten(&self) -> Relation {
        let mut out = Relation::with_capacity(self.len());
        for p in &self.partitions {
            out.extend_from(p);
        }
        out
    }
}

/// The partition a key belongs to under `bits` total radix bits.
#[inline]
pub fn radix_of(key: Key, bits: u32) -> usize {
    if bits == 0 {
        0
    } else {
        (hash_key(key) & ((1u32 << bits) - 1)) as usize
    }
}

/// Multi-pass scatter over borrowed column slices: resolves
/// most-significant radix bits first, so after every pass the flat
/// concatenation of partitions is ordered by the bits resolved so far (as
/// the *top* of the final index) and once all passes ran, partition `i`
/// holds exactly the keys with `hash & mask == i`. The first pass reads
/// the caller's slices directly; only the refinement passes touch owned
/// intermediate partitions.
fn scatter_slices(
    keys: &[Key],
    payloads: &[Payload],
    bits: u32,
    params: &CacheParams,
) -> Vec<Relation> {
    debug_assert!(bits > 0, "bits == 0 is the identity; callers handle it");
    let mut remaining = bits;
    let step = params.max_bits_per_pass.max(1).min(remaining);
    let mut current = scatter_one(keys, payloads, remaining - step, step);
    remaining -= step;
    while remaining > 0 {
        let step = params.max_bits_per_pass.max(1).min(remaining);
        let shift = remaining - step;
        let mut refined = Vec::with_capacity(current.len() << step);
        for part in &current {
            refined.extend(scatter_one(part.keys(), part.payloads(), shift, step));
        }
        current = refined;
        remaining -= step;
    }
    current
}

/// Scatters one pair of column slices on `step` bits starting at bit
/// `shift` of the key hash, using a histogram + exact-capacity scatter
/// targets (no per-partition reallocation).
fn scatter_one(keys: &[Key], payloads: &[Payload], shift: u32, step: u32) -> Vec<Relation> {
    let fanout = 1usize << step;
    let mask = (fanout - 1) as u32;

    let mut histogram = vec![0usize; fanout];
    for &k in keys {
        histogram[((hash_key(k) >> shift) & mask) as usize] += 1;
    }

    let mut out_keys: Vec<Vec<Key>> = histogram.iter().map(|&n| Vec::with_capacity(n)).collect();
    let mut out_payloads: Vec<Vec<Payload>> =
        histogram.iter().map(|&n| Vec::with_capacity(n)).collect();
    for (&k, &p) in keys.iter().zip(payloads) {
        let idx = ((hash_key(k) >> shift) & mask) as usize;
        out_keys[idx].push(k);
        out_payloads[idx].push(p);
    }

    out_keys
        .into_iter()
        .zip(out_payloads)
        .map(|(k, p)| Relation::from_columns(k.into(), p.into()))
        .collect()
}

/// Chooses the number of radix bits so that each partition of a stationary
/// relation with `s_tuples` rows — *plus its hash table* — fits in half the
/// L2 cache (the other half is left for the probe stream), as the paper's
/// radix join requires.
pub fn radix_bits_for(s_tuples: usize, params: &CacheParams) -> u32 {
    // Per tuple: 12 B of data + 8 B of table (4 B head amortized + 4 B next).
    const BYTES_PER_TUPLE: usize = 20;
    let budget = (params.l2_bytes / 2).max(BYTES_PER_TUPLE);
    let tuples_per_partition = (budget / BYTES_PER_TUPLE).max(1);
    let mut bits = 0u32;
    while (s_tuples >> bits) > tuples_per_partition && bits < 18 {
        bits += 1;
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::GenSpec;

    #[test]
    fn partitions_preserve_all_tuples() {
        let rel = GenSpec::uniform(10_000, 1).generate();
        let part = RadixPartitioned::new(&rel, 6, &CacheParams::default());
        assert_eq!(part.partitions().len(), 64);
        assert_eq!(part.len(), rel.len());
        assert_eq!(part.byte_volume(), rel.byte_volume());
    }

    #[test]
    fn tuples_land_in_their_radix_partition() {
        let rel = GenSpec::uniform(5_000, 2).generate();
        let bits = 5;
        let part = RadixPartitioned::new(&rel, bits, &CacheParams::default());
        for (i, p) in part.partitions().iter().enumerate() {
            for &k in p.keys() {
                assert_eq!(radix_of(k, bits), i);
            }
        }
    }

    #[test]
    fn multi_pass_equals_single_pass() {
        let rel = GenSpec::uniform(8_000, 3).generate();
        let single = RadixPartitioned::new(
            &rel,
            6,
            &CacheParams {
                max_bits_per_pass: 6,
                ..CacheParams::default()
            },
        );
        let multi = RadixPartitioned::new(
            &rel,
            6,
            &CacheParams {
                max_bits_per_pass: 2,
                ..CacheParams::default()
            },
        );
        assert_eq!(single.partitions().len(), multi.partitions().len());
        for (a, b) in single.partitions().iter().zip(multi.partitions()) {
            // Same multiset per partition (order may differ between passes).
            let mut ka = a.keys().to_vec();
            let mut kb = b.keys().to_vec();
            ka.sort_unstable();
            kb.sort_unstable();
            assert_eq!(ka, kb);
        }
    }

    #[test]
    fn zero_bits_is_identity() {
        let rel = GenSpec::uniform(100, 4).generate();
        let part = RadixPartitioned::new(&rel, 0, &CacheParams::default());
        assert_eq!(part.partitions().len(), 1);
        assert_eq!(part.partition(0), &rel);
    }

    #[test]
    fn equal_keys_colocate() {
        let rel = Relation::from_pairs([(7, 1), (3, 2), (7, 3), (7, 4)]);
        let part = RadixPartitioned::new(&rel, 4, &CacheParams::default());
        let idx = radix_of(7, 4);
        assert_eq!(
            part.partition(idx)
                .keys()
                .iter()
                .filter(|&&k| k == 7)
                .count(),
            3
        );
    }

    #[test]
    fn uniform_keys_spread_evenly() {
        let rel = GenSpec::uniform(64_000, 5).generate();
        let part = RadixPartitioned::new(&rel, 4, &CacheParams::default());
        let expected = rel.len() as f64 / 16.0;
        for p in part.partitions() {
            let dev = (p.len() as f64 - expected).abs() / expected;
            assert!(
                dev < 0.15,
                "partition skew {dev:.2} too high for uniform keys"
            );
        }
    }

    #[test]
    fn parallel_partitioning_equals_sequential_multisets() {
        let rel = GenSpec::uniform(20_000, 7).generate();
        let params = CacheParams::default();
        let sequential = RadixPartitioned::new(&rel, 5, &params);
        for threads in [1usize, 2, 3, 8] {
            let parallel = RadixPartitioned::new_parallel(&rel, 5, &params, threads);
            assert_eq!(parallel.partitions().len(), sequential.partitions().len());
            for (a, b) in parallel.partitions().iter().zip(sequential.partitions()) {
                let mut ka: Vec<_> = a.iter().collect();
                let mut kb: Vec<_> = b.iter().collect();
                ka.sort_unstable();
                kb.sort_unstable();
                assert_eq!(ka, kb, "threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_partitioning_tiny_inputs_fall_back() {
        let rel = GenSpec::uniform(5, 8).generate();
        let p = RadixPartitioned::new_parallel(&rel, 3, &CacheParams::default(), 4);
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn bits_for_small_relation_is_zero() {
        // A relation that fits L2 outright needs no partitioning.
        assert_eq!(radix_bits_for(1_000, &CacheParams::paper_xeon()), 0);
    }

    #[test]
    fn bits_grow_with_relation_size() {
        let params = CacheParams::paper_xeon();
        let small = radix_bits_for(1 << 20, &params);
        let large = radix_bits_for(1 << 24, &params);
        assert!(large > small);
        // Partitions should actually fit the budget afterwards.
        let tuples_per_part = (1usize << 24) >> large;
        assert!(tuples_per_part * 20 <= params.l2_bytes / 2);
    }

    #[test]
    fn bits_are_capped() {
        assert!(radix_bits_for(usize::MAX / 32, &CacheParams::tiny_for_tests()) <= 18);
    }

    #[test]
    fn empty_relation_partitions_cleanly() {
        let part = RadixPartitioned::new(&Relation::new(), 3, &CacheParams::default());
        assert!(part.is_empty());
        assert_eq!(part.partitions().len(), 8);
    }

    #[test]
    fn flatten_reassembles_the_multiset() {
        let rel = GenSpec::uniform(1_000, 6).generate();
        let part = RadixPartitioned::new(&rel, 4, &CacheParams::default());
        let mut orig: Vec<_> = rel.iter().collect();
        let mut flat: Vec<_> = part.flatten().iter().collect();
        orig.sort_unstable();
        flat.sort_unstable();
        assert_eq!(orig, flat);
    }
}
