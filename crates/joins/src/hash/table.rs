//! Bucket-chained hash tables over one partition of the stationary relation.
//!
//! The table stores the partition's tuples densely (columnar) plus two
//! index arrays: `heads[bucket]` points at the first tuple of the bucket's
//! chain, `next[i]` at the next tuple in tuple `i`'s chain (both offset by
//! one; `0` terminates). With the partition sized to fit L2, probes walk
//! chains entirely inside the cache.
//!
//! Skew sensitivity is *by design*: when a partition is dominated by one
//! key, its chain degenerates to a list and the probe cost per tuple grows
//! with the number of duplicates — this is the "hash join slowly degrades
//! toward a nested-loops-style evaluation" effect behind Figure 9.

use relation::{Key, Payload, Relation, Tuple};

use super::hash_key;

/// A bucket-chained hash table over one relation partition.
#[derive(Debug, Clone, Default)]
pub struct ChainedTable {
    mask: u32,
    /// Hash bits to discard before indexing buckets. A partition produced
    /// by `radix_bits` of radix partitioning holds keys that all agree on
    /// the low `radix_bits` bits of their hash — indexing buckets with
    /// those same bits would use only a fraction of the table and grow
    /// chains by `2^radix_bits`. The table therefore buckets on the hash
    /// bits *above* the radix, the standard radix-join layout.
    shift: u32,
    heads: Vec<u32>,
    next: Vec<u32>,
    keys: Vec<Key>,
    payloads: Vec<Payload>,
}

impl ChainedTable {
    /// Builds a table over an unpartitioned relation (no radix bits spent).
    pub fn build(partition: &Relation) -> Self {
        ChainedTable::build_with_shift(partition, 0)
    }

    /// Builds a table over a partition produced with `radix_bits` of radix
    /// partitioning, with one bucket per tuple (rounded up to a power of
    /// two), bucketing on the hash bits above the radix.
    ///
    /// Copies both columns out of the borrowed partition; callers that are
    /// done with the partition should use [`ChainedTable::build_owned`],
    /// which takes the storage over instead.
    pub fn build_with_shift(partition: &Relation, radix_bits: u32) -> Self {
        ChainedTable::build_owned(partition.clone(), radix_bits)
    }

    /// Like [`ChainedTable::build_with_shift`] but consumes the partition:
    /// the table indexes the partition's own columns in place, so the build
    /// allocates only the two index arrays — no copy of keys or payloads.
    pub fn build_owned(partition: Relation, radix_bits: u32) -> Self {
        let n = partition.len();
        let buckets = n.next_power_of_two().max(1);
        let mask = (buckets - 1) as u32;
        let mut heads = vec![0u32; buckets];
        let mut next = vec![0u32; n];
        let (keys, payloads) = partition.into_columns();
        let (keys, payloads) = (keys.into_vec(), payloads.into_vec());
        for (i, &k) in keys.iter().enumerate() {
            let b = ((hash_key(k) >> radix_bits) & mask) as usize;
            next[i] = heads[b];
            heads[b] = i as u32 + 1;
        }
        ChainedTable {
            mask,
            shift: radix_bits,
            heads,
            next,
            keys,
            payloads,
        }
    }

    /// Number of tuples in the table.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the table holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Approximate memory footprint in bytes (tuples + index arrays), the
    /// quantity that must fit in L2 together with the probe stream.
    pub fn footprint_bytes(&self) -> usize {
        self.keys.len() * (4 + 8 + 4) + self.heads.len() * 4
    }

    /// Iterates over the stored tuples whose key equals `key`.
    #[inline]
    pub fn probe(&self, key: Key) -> Probe<'_> {
        let bucket = ((hash_key(key) >> self.shift) & self.mask) as usize;
        Probe {
            table: self,
            key,
            cursor: *self.heads.get(bucket).unwrap_or(&0),
        }
    }

    /// Length of the longest bucket chain (a direct skew indicator).
    pub fn longest_chain(&self) -> usize {
        let mut longest = 0;
        for &head in &self.heads {
            let mut len = 0;
            let mut cur = head;
            while cur != 0 {
                len += 1;
                cur = self.next[(cur - 1) as usize];
            }
            longest = longest.max(len);
        }
        longest
    }
}

/// Iterator over the matches [`ChainedTable::probe`] found.
#[derive(Debug)]
pub struct Probe<'a> {
    table: &'a ChainedTable,
    key: Key,
    cursor: u32,
}

impl Iterator for Probe<'_> {
    type Item = Tuple;

    #[inline]
    fn next(&mut self) -> Option<Tuple> {
        while self.cursor != 0 {
            let i = (self.cursor - 1) as usize;
            self.cursor = self.table.next[i];
            if self.table.keys[i] == self.key {
                return Some(Tuple::new(self.table.keys[i], self.table.payloads[i]));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_finds_all_duplicates() {
        let rel = Relation::from_pairs([(1, 10), (2, 20), (1, 11), (3, 30), (1, 12)]);
        let table = ChainedTable::build(&rel);
        let mut payloads: Vec<u64> = table.probe(1).map(|t| t.payload).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, vec![10, 11, 12]);
        assert_eq!(table.probe(2).count(), 1);
        assert_eq!(table.probe(99).count(), 0);
    }

    #[test]
    fn empty_table_probes_cleanly() {
        let table = ChainedTable::build(&Relation::new());
        assert!(table.is_empty());
        assert_eq!(table.probe(5).count(), 0);
        assert_eq!(table.longest_chain(), 0);
    }

    #[test]
    fn every_key_is_findable() {
        let rel = relation::GenSpec::uniform(5_000, 9).generate();
        let table = ChainedTable::build(&rel);
        for t in rel.iter().take(500) {
            assert!(
                table.probe(t.key).any(|m| m.payload == t.payload),
                "tuple {t} lost in the table"
            );
        }
    }

    #[test]
    fn probe_never_returns_wrong_keys() {
        let rel = relation::GenSpec::uniform(2_000, 10).generate();
        let table = ChainedTable::build(&rel);
        for key in 0..100u32 {
            for m in table.probe(key) {
                assert_eq!(m.key, key);
            }
        }
    }

    #[test]
    fn skew_creates_long_chains() {
        let uniform = relation::GenSpec::uniform(4_000, 11).generate();
        let skewed = relation::GenSpec::zipf(4_000, 0.9, 11).generate();
        let tu = ChainedTable::build(&uniform);
        let ts = ChainedTable::build(&skewed);
        assert!(
            ts.longest_chain() > 4 * tu.longest_chain(),
            "skewed chain {} vs uniform {}",
            ts.longest_chain(),
            tu.longest_chain()
        );
    }

    #[test]
    fn radix_shift_keeps_chains_short() {
        // Regression: a partition whose keys all share their low hash bits
        // must still spread over the whole table — bucket on the bits
        // above the radix, not the radix bits themselves.
        use super::super::{hash_key, radix::radix_of};
        let bits = 6u32;
        let target = 3usize; // an arbitrary partition id
        let rel: Relation = relation::GenSpec::uniform(200_000, 13)
            .generate()
            .iter()
            .filter(|t| radix_of(t.key, bits) == target)
            .collect();
        assert!(rel.len() > 1_000, "need a meaningful partition");
        let table = ChainedTable::build_with_shift(&rel, bits);
        // With one bucket per tuple and a good hash, chains stay tiny.
        assert!(
            table.longest_chain() <= 16,
            "longest chain {} — the low radix bits leaked into bucketing",
            table.longest_chain()
        );
        // Sanity: the keys really do collide in their low hash bits.
        let first = hash_key(rel.get(0).unwrap().key) & ((1 << bits) - 1);
        assert!(rel
            .keys()
            .iter()
            .all(|&k| hash_key(k) & ((1 << bits) - 1) == first));
    }

    #[test]
    fn footprint_is_roughly_20_bytes_per_tuple() {
        let rel = relation::GenSpec::uniform(1_024, 12).generate();
        let table = ChainedTable::build(&rel);
        let per_tuple = table.footprint_bytes() as f64 / 1_024.0;
        assert!((16.0..=24.0).contains(&per_tuple), "got {per_tuple}");
    }
}
