//! The two-phase partitioned hash join operator.
//!
//! **Setup phase** — [`HashJoinState::build`]: radix-partition the
//! stationary relation `S_i` and build a [`ChainedTable`] per partition,
//! each sized to fit the L2 cache.
//!
//! **Join phase** — [`HashJoinState::probe_partitioned`]: scan the
//! partitions of a probe fragment `R_j` (partitioned with the *same* radix
//! bits) and probe the matching tables. Disjoint partitions are handed to
//! separate threads, exactly how the paper exploits its quad cores.
//!
//! In cyclo-join the setup output is built **once** and reused for every
//! `R_j` that rotates past (§IV-D) — the reuse is what makes the setup
//! phase's cost scale with `|S|/n` while the join phase cost stays
//! proportional to `|R|` (Equation ⋆).

use relation::{MatchPair, Relation, Tuple};

use super::radix::{radix_bits_for, RadixPartitioned};
use super::table::ChainedTable;
use super::CacheParams;
use crate::collector::JoinCollector;
use crate::parallel::fork_join;

/// The setup-phase output of the partitioned hash join: cache-sized hash
/// tables over every partition of the stationary relation.
#[derive(Debug, Clone)]
pub struct HashJoinState {
    bits: u32,
    tables: Vec<ChainedTable>,
    tuples: usize,
}

impl HashJoinState {
    /// Builds the state over stationary relation `s`, choosing the radix
    /// fan-out from `params` so each table fits in L2.
    pub fn build(s: &Relation, params: &CacheParams) -> Self {
        let bits = radix_bits_for(s.len(), params);
        Self::build_with_bits(s, bits, params)
    }

    /// Builds the state with an explicit number of radix bits (used by
    /// ablation benchmarks; prefer [`HashJoinState::build`]).
    pub fn build_with_bits(s: &Relation, bits: u32, params: &CacheParams) -> Self {
        HashJoinState::build_parallel(s, bits, params, 1)
    }

    /// Builds the state with `threads` worker threads doing the radix
    /// partitioning (table building per partition remains sequential —
    /// insertions are cheap relative to the scatter).
    pub fn build_parallel(s: &Relation, bits: u32, params: &CacheParams, threads: usize) -> Self {
        let tuples = s.len();
        let partitioned = RadixPartitioned::new_parallel(s, bits, params, threads);
        // The scatter output is discarded after the build, so each table
        // takes its partition's columns over instead of copying them.
        let tables = partitioned
            .into_partitions()
            .into_iter()
            .map(|p| ChainedTable::build_owned(p, bits))
            .collect();
        HashJoinState {
            bits,
            tables,
            tuples,
        }
    }

    /// Radix bits the stationary side was partitioned with; probe fragments
    /// must be partitioned with the same value.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of stationary tuples indexed.
    pub fn len(&self) -> usize {
        self.tuples
    }

    /// True if no stationary tuples are indexed.
    pub fn is_empty(&self) -> bool {
        self.tuples == 0
    }

    /// Approximate bytes of access structures built during setup — this is
    /// what cyclo-join would ship over the ring to re-use setup output
    /// (§IV-D).
    pub fn footprint_bytes(&self) -> usize {
        self.tables.iter().map(ChainedTable::footprint_bytes).sum()
    }

    /// Partitions a probe-side fragment with the matching radix fan-out.
    /// In cyclo-join this runs once per fragment during setup, at the
    /// fragment's origin host; the partitioned form is what rotates.
    pub fn partition_probe(&self, r: &Relation, params: &CacheParams) -> RadixPartitioned {
        RadixPartitioned::new(r, self.bits, params)
    }

    /// Join phase against a pre-partitioned probe fragment, using
    /// `threads` worker threads over disjoint partition ranges.
    ///
    /// # Panics
    ///
    /// Panics if `r` was partitioned with a different number of radix bits
    /// or `threads` is zero.
    pub fn probe_partitioned(
        &self,
        r: &RadixPartitioned,
        threads: usize,
        collector: &mut JoinCollector,
    ) {
        assert_eq!(
            r.bits(),
            self.bits,
            "probe fragment partitioned with {} bits but tables use {}",
            r.bits(),
            self.bits
        );
        let shards = fork_join(threads, |shard| {
            let mut local = collector.child();
            let mut idx = shard;
            while idx < self.tables.len() {
                probe_one(&self.tables[idx], r.partition(idx), &mut local);
                idx += threads;
            }
            local
        });
        for shard in shards {
            collector.merge(shard);
        }
    }

    /// Convenience single-shot probe for an unpartitioned fragment:
    /// partitions it, then joins. Equivalent to `partition_probe` +
    /// `probe_partitioned`.
    pub fn probe(
        &self,
        r: &Relation,
        params: &CacheParams,
        threads: usize,
        collector: &mut JoinCollector,
    ) {
        let partitioned = self.partition_probe(r, params);
        self.probe_partitioned(&partitioned, threads, collector);
    }
}

/// Scans one probe partition and probes its table.
fn probe_one(table: &ChainedTable, probe: &Relation, collector: &mut JoinCollector) {
    for r_tuple in probe.iter() {
        for s_tuple in table.probe(r_tuple.key) {
            collector.push(MatchPair::new(r_tuple, s_tuple));
        }
    }
}

/// Reference equi-join by brute force, for correctness tests.
pub fn reference_equi_join(r: &Relation, s: &Relation) -> Vec<MatchPair> {
    let mut out = Vec::new();
    for rt in r.iter() {
        for st in s.iter() {
            if rt.key == st.key {
                out.push(MatchPair::new(rt, st));
            }
        }
    }
    out
}

/// Handy constructor for tests: a match from raw parts.
pub fn match_of(r: (u32, u64), s: (u32, u64)) -> MatchPair {
    MatchPair::new(Tuple::new(r.0, r.1), Tuple::new(s.0, s.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Checksum, GenSpec};

    fn checksum_of(matches: &[MatchPair]) -> Checksum {
        matches.iter().copied().collect()
    }

    #[test]
    fn matches_reference_join_on_uniform_data() {
        let r = GenSpec::uniform(3_000, 20).generate();
        let s = GenSpec::uniform(3_000, 21).generate();
        let state = HashJoinState::build(&s, &CacheParams::tiny_for_tests());
        let mut collector = JoinCollector::aggregating();
        state.probe(&r, &CacheParams::tiny_for_tests(), 2, &mut collector);
        let reference = reference_equi_join(&r, &s);
        assert_eq!(collector.count(), reference.len() as u64);
        assert_eq!(collector.checksum(), checksum_of(&reference));
    }

    #[test]
    fn matches_reference_join_on_skewed_data() {
        let r = GenSpec::zipf(2_000, 0.9, 22).generate();
        let s = GenSpec::zipf(2_000, 0.9, 23).generate();
        let state = HashJoinState::build(&s, &CacheParams::tiny_for_tests());
        let mut collector = JoinCollector::aggregating();
        state.probe(&r, &CacheParams::tiny_for_tests(), 4, &mut collector);
        let reference = reference_equi_join(&r, &s);
        assert_eq!(collector.count(), reference.len() as u64);
        assert_eq!(collector.checksum(), checksum_of(&reference));
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let r = GenSpec::uniform(5_000, 24).generate();
        let s = GenSpec::uniform(5_000, 25).generate();
        let params = CacheParams::tiny_for_tests();
        let state = HashJoinState::build(&s, &params);
        let mut results = Vec::new();
        for threads in [1, 2, 4, 8] {
            let mut c = JoinCollector::aggregating();
            state.probe(&r, &params, threads, &mut c);
            results.push((c.count(), c.checksum()));
        }
        assert!(results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn materialized_matches_are_correct() {
        let r = Relation::from_pairs([(1, 100), (2, 200), (3, 300)]);
        let s = Relation::from_pairs([(2, 900), (2, 901), (4, 400)]);
        let state = HashJoinState::build(&s, &CacheParams::default());
        let mut c = JoinCollector::materializing();
        state.probe(&r, &CacheParams::default(), 1, &mut c);
        let mut matches = c.into_matches();
        matches.sort_unstable();
        assert_eq!(
            matches,
            vec![match_of((2, 200), (2, 900)), match_of((2, 200), (2, 901))]
        );
    }

    #[test]
    fn empty_inputs_produce_empty_output() {
        let params = CacheParams::default();
        let empty_state = HashJoinState::build(&Relation::new(), &params);
        let mut c = JoinCollector::aggregating();
        empty_state.probe(&GenSpec::uniform(100, 0).generate(), &params, 2, &mut c);
        assert_eq!(c.count(), 0);
        assert!(empty_state.is_empty());

        let state = HashJoinState::build(&GenSpec::uniform(100, 0).generate(), &params);
        let mut c = JoinCollector::aggregating();
        state.probe(&Relation::new(), &params, 2, &mut c);
        assert_eq!(c.count(), 0);
    }

    #[test]
    #[should_panic(expected = "partitioned with")]
    fn mismatched_partitioning_rejected() {
        let params = CacheParams::tiny_for_tests();
        let s = GenSpec::uniform(10_000, 1).generate();
        let state = HashJoinState::build_with_bits(&s, 4, &params);
        let wrong = RadixPartitioned::new(&s, 2, &params);
        let mut c = JoinCollector::aggregating();
        state.probe_partitioned(&wrong, 1, &mut c);
    }

    #[test]
    fn setup_probe_split_reuses_state() {
        // The cyclo-join pattern: one build, many probes.
        let params = CacheParams::tiny_for_tests();
        let s = GenSpec::uniform(2_000, 30).generate();
        let state = HashJoinState::build(&s, &params);
        let fragments: Vec<Relation> = GenSpec::uniform(4_000, 31).generate().split_even(4);
        let mut total = JoinCollector::aggregating();
        for frag in &fragments {
            state.probe(frag, &params, 2, &mut total);
        }
        let whole = {
            let r = {
                let mut r = Relation::new();
                for f in &fragments {
                    r.extend_from(f);
                }
                r
            };
            reference_equi_join(&r, &s)
        };
        assert_eq!(total.count(), whole.len() as u64);
        assert_eq!(total.checksum(), checksum_of(&whole));
    }

    #[test]
    fn footprint_reported() {
        let s = GenSpec::uniform(1_000, 40).generate();
        let state = HashJoinState::build(&s, &CacheParams::default());
        assert!(state.footprint_bytes() >= 1_000 * 16);
        assert_eq!(state.len(), 1_000);
    }
}
