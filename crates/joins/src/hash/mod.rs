//! Radix-partitioned hash join (MonetDB’s radix join \[22\]).
//!
//! The algorithm is carefully tuned to CPU cache characteristics: during a
//! **setup phase** both inputs are radix-partitioned on a hash of the join
//! key so that each partition of the stationary relation *plus its hash
//! table* fits in the L2 cache; the subsequent **join phase** scans the
//! probe-side partitions and probes the matching cache-resident tables,
//! so every hash probe is served from L2.
//!
//! Module layout:
//! * [`radix`] — the multi-pass radix partitioner,
//! * [`table`] — bucket-chained hash tables over a partition,
//! * [`join`] — the two-phase join operator gluing them together.

pub mod join;
pub mod radix;
pub mod table;

pub use join::HashJoinState;
pub use radix::{radix_bits_for, RadixPartitioned};
pub use table::ChainedTable;

use relation::Key;
use serde::{Deserialize, Serialize};

/// CPU cache characteristics the radix join is tuned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheParams {
    /// Unified L2 cache size in bytes.
    pub l2_bytes: usize,
    /// L2 cache line size in bytes.
    pub cache_line: usize,
    /// Maximum radix bits resolved per partitioning pass (fan-out per pass
    /// is `2^max_bits_per_pass`; bounding it keeps the scatter targets
    /// within the TLB during each pass).
    pub max_bits_per_pass: u32,
}

impl CacheParams {
    /// The paper's testbed: 4 MB unified L2, 64 B lines.
    pub fn paper_xeon() -> Self {
        CacheParams {
            l2_bytes: 4 << 20,
            cache_line: 64,
            max_bits_per_pass: 8,
        }
    }

    /// A deliberately tiny cache, useful in tests to force many partitions
    /// and multiple passes on small inputs.
    pub fn tiny_for_tests() -> Self {
        CacheParams {
            l2_bytes: 1 << 10,
            cache_line: 64,
            max_bits_per_pass: 2,
        }
    }
}

impl Default for CacheParams {
    fn default() -> Self {
        CacheParams::paper_xeon()
    }
}

/// The hash function applied to join keys before taking radix bits.
///
/// A multiply–xorshift finalizer: cheap, and decorrelates partition ids
/// from raw key values so sequential keys spread over all partitions.
#[inline]
pub fn hash_key(key: Key) -> u32 {
    let mut x = key;
    x = x.wrapping_mul(0x85eb_ca6b);
    x ^= x >> 13;
    x = x.wrapping_mul(0xc2b2_ae35);
    x ^= x >> 16;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_key_is_deterministic_and_spreading() {
        assert_eq!(hash_key(42), hash_key(42));
        // Sequential keys should not collide in their low bits too often.
        let mut low_bits: Vec<u32> = (0..1024u32).map(|k| hash_key(k) & 0xf).collect();
        low_bits.sort_unstable();
        low_bits.dedup();
        assert_eq!(low_bits.len(), 16, "all 16 low-bit buckets should be hit");
    }

    #[test]
    fn default_params_are_the_paper_machine() {
        let p = CacheParams::default();
        assert_eq!(p.l2_bytes, 4 << 20);
        assert_eq!(p.cache_line, 64);
    }
}
