//! The merge phase of sort-merge join, with band-join support.
//!
//! Both inputs arrive as [`SortedRun`]s. The merge aligns matches by
//! scanning both runs forward — a strictly sequential access pattern that
//! the paper credits for the join phase being about twice as fast as hash
//! probing (§V-E). A band predicate `|r.key − s.key| ≤ delta` generalizes
//! the equi case (`delta = 0`): for each probe tuple the matching window
//! of `S` is `[r.key − delta, r.key + delta]`, and since `R` is scanned in
//! key order the window's start only ever moves forward.
//!
//! Multi-threading follows the paper (§IV-C2): the probe side is split
//! into as many contiguous sub-ranges as there are cores; each thread
//! binary-searches its own start position in `S` and merges independently.

use relation::MatchPair;

use super::run::SortedRun;
use crate::collector::JoinCollector;
use crate::parallel::{fork_join, shard_ranges};

/// The setup-phase output of sort-merge join: the stationary relation in
/// sorted order.
///
/// (The probe side must be sorted too; in cyclo-join that happens once per
/// fragment at its origin host, and the sorted fragment is what rotates.)
#[derive(Debug, Clone, Default)]
pub struct SortMergeState {
    s: SortedRun,
}

impl SortMergeState {
    /// Sorts stationary relation `s` with `threads` workers.
    pub fn build(s: &relation::Relation, threads: usize) -> Self {
        SortMergeState {
            s: SortedRun::sort(s, threads),
        }
    }

    /// Wraps an already sorted stationary side.
    pub fn from_sorted(s: SortedRun) -> Self {
        SortMergeState { s }
    }

    /// The sorted stationary run.
    pub fn sorted(&self) -> &SortedRun {
        &self.s
    }

    /// Number of stationary tuples.
    pub fn len(&self) -> usize {
        self.s.len()
    }

    /// True if the stationary side is empty.
    pub fn is_empty(&self) -> bool {
        self.s.is_empty()
    }

    /// Join phase: merges sorted probe fragment `r` against the stationary
    /// run with band half-width `delta` (`0` = equi-join), on `threads`
    /// worker threads.
    pub fn merge(&self, r: &SortedRun, delta: u32, threads: usize, collector: &mut JoinCollector) {
        merge_join(r, &self.s, delta, threads, collector);
    }
}

/// Merges two sorted runs with band half-width `delta` (`0` = equi-join).
///
/// Matches are emitted as `(r tuple, s tuple)` pairs into `collector`.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn merge_join(
    r: &SortedRun,
    s: &SortedRun,
    delta: u32,
    threads: usize,
    collector: &mut JoinCollector,
) {
    let ranges = shard_ranges(r.len(), threads);
    let shards = fork_join(threads, |i| {
        let mut local = collector.child();
        let range = ranges[i].clone();
        if !range.is_empty() {
            merge_range(r, s, delta, range, &mut local);
        }
        local
    });
    for shard in shards {
        collector.merge(shard);
    }
}

/// Merges `r[range]` against all of `s`.
fn merge_range(
    r: &SortedRun,
    s: &SortedRun,
    delta: u32,
    range: std::ops::Range<usize>,
    collector: &mut JoinCollector,
) {
    let r_rel = r.as_relation();
    let s_rel = s.as_relation();
    let s_keys = s_rel.keys();
    if s_keys.is_empty() {
        return;
    }
    // Start of the S window for the first probe key of this shard.
    let first_key = r_rel.keys()[range.start];
    let mut window_start = s.lower_bound(first_key.saturating_sub(delta));

    for ri in range {
        let r_tuple = r_rel.get(ri).expect("range in bounds");
        let low = r_tuple.key.saturating_sub(delta);
        let high = r_tuple.key.saturating_add(delta);
        // R is sorted, so the window start only moves forward.
        while window_start < s_keys.len() && s_keys[window_start] < low {
            window_start += 1;
        }
        let mut si = window_start;
        while si < s_keys.len() && s_keys[si] <= high {
            let s_tuple = s_rel.get(si).expect("si in bounds");
            collector.push(MatchPair::new(r_tuple, s_tuple));
            si += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::join::reference_equi_join;
    use crate::predicate::JoinPredicate;
    use relation::{Checksum, GenSpec, Relation};

    fn reference_band_join(r: &Relation, s: &Relation, delta: u32) -> Vec<MatchPair> {
        let pred = JoinPredicate::band(delta);
        let mut out = Vec::new();
        for rt in r.iter() {
            for st in s.iter() {
                if pred.matches(rt.key, st.key) {
                    out.push(MatchPair::new(rt, st));
                }
            }
        }
        out
    }

    #[test]
    fn equi_merge_matches_reference() {
        let r = GenSpec::uniform(2_000, 60).generate();
        let s = GenSpec::uniform(2_000, 61).generate();
        let state = SortMergeState::build(&s, 2);
        let sorted_r = SortedRun::sort(&r, 2);
        let mut c = JoinCollector::aggregating();
        state.merge(&sorted_r, 0, 2, &mut c);
        let reference = reference_equi_join(&r, &s);
        assert_eq!(c.count(), reference.len() as u64);
        assert_eq!(
            c.checksum(),
            reference.iter().copied().collect::<Checksum>()
        );
    }

    #[test]
    fn equi_merge_handles_duplicates_on_both_sides() {
        let r = Relation::from_pairs([(5, 1), (5, 2), (7, 3)]);
        let s = Relation::from_pairs([(5, 10), (5, 11), (5, 12), (7, 13)]);
        let mut c = JoinCollector::aggregating();
        merge_join(
            &SortedRun::sort(&r, 1),
            &SortedRun::sort(&s, 1),
            0,
            1,
            &mut c,
        );
        // 2 × 3 for key 5, 1 × 1 for key 7.
        assert_eq!(c.count(), 7);
    }

    #[test]
    fn band_merge_matches_reference() {
        let r = GenSpec::uniform(1_000, 62).generate();
        let s = GenSpec::uniform(1_000, 63).generate();
        for delta in [0u32, 1, 3, 10] {
            let mut c = JoinCollector::aggregating();
            merge_join(
                &SortedRun::sort(&r, 2),
                &SortedRun::sort(&s, 2),
                delta,
                3,
                &mut c,
            );
            let reference = reference_band_join(&r, &s, delta);
            assert_eq!(c.count(), reference.len() as u64, "delta={delta}");
            assert_eq!(
                c.checksum(),
                reference.iter().copied().collect::<Checksum>(),
                "delta={delta}"
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let r = GenSpec::zipf(3_000, 0.7, 64).generate();
        let s = GenSpec::zipf(3_000, 0.7, 65).generate();
        let sr = SortedRun::sort(&r, 4);
        let ss = SortedRun::sort(&s, 4);
        let mut results = Vec::new();
        for threads in [1, 2, 4, 8] {
            let mut c = JoinCollector::aggregating();
            merge_join(&sr, &ss, 1, threads, &mut c);
            results.push((c.count(), c.checksum()));
        }
        assert!(results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn skew_does_not_break_correctness() {
        let r = GenSpec::zipf(1_500, 0.95, 66).generate();
        let s = GenSpec::zipf(1_500, 0.95, 67).generate();
        let mut c = JoinCollector::aggregating();
        merge_join(
            &SortedRun::sort(&r, 2),
            &SortedRun::sort(&s, 2),
            0,
            4,
            &mut c,
        );
        assert_eq!(c.count(), reference_equi_join(&r, &s).len() as u64);
    }

    #[test]
    fn empty_sides_yield_no_matches() {
        let some = SortedRun::sort(&GenSpec::uniform(100, 0).generate(), 1);
        let empty = SortedRun::default();
        for (a, b) in [(&some, &empty), (&empty, &some), (&empty, &empty)] {
            let mut c = JoinCollector::aggregating();
            merge_join(a, b, 0, 2, &mut c);
            assert_eq!(c.count(), 0);
        }
    }

    #[test]
    fn band_near_key_domain_edges() {
        // Saturating arithmetic at 0 and u32::MAX must not wrap.
        let r = Relation::from_pairs([(0, 1), (u32::MAX, 2)]);
        let s = Relation::from_pairs([(1, 10), (u32::MAX - 1, 20)]);
        let mut c = JoinCollector::materializing();
        merge_join(
            &SortedRun::sort(&r, 1),
            &SortedRun::sort(&s, 1),
            2,
            1,
            &mut c,
        );
        assert_eq!(c.count(), 2);
    }

    #[test]
    fn state_reuse_across_fragments() {
        let s = GenSpec::uniform(2_000, 68).generate();
        let state = SortMergeState::build(&s, 2);
        let r = GenSpec::uniform(2_000, 69).generate();
        let mut total = JoinCollector::aggregating();
        for frag in r.split_even(3) {
            let sorted = SortedRun::sort(&frag, 2);
            state.merge(&sorted, 0, 2, &mut total);
        }
        assert_eq!(total.count(), reference_equi_join(&r, &s).len() as u64);
    }
}
