//! Sorted runs: relations with a sortedness guarantee.
//!
//! [`SortedRun`] is a newtype over [`Relation`] whose constructor sorts
//! (in parallel) and whose invariant — keys non-decreasing — every merge
//! join relies on. Getting a `SortedRun` is the setup phase of sort-merge
//! join; in cyclo-join the sorted form of a rotating fragment is produced
//! once at its origin host and shipped around the ring in sorted order
//! (§IV-D).

use relation::{Relation, Tuple};
use serde::{Deserialize, Serialize};

use crate::parallel::{fork_join, shard_ranges};

/// A relation sorted by join key (non-decreasing).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SortedRun(Relation);

impl SortedRun {
    /// Sorts `rel` into a run using `threads` worker threads: each thread
    /// sorts a contiguous chunk, then chunks are merged pairwise.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn sort(rel: &Relation, threads: usize) -> Self {
        assert!(threads > 0, "sorting needs at least one thread");
        let ranges = shard_ranges(rel.len(), threads);
        let mut chunks: Vec<Vec<Tuple>> = fork_join(threads, |i| {
            let range = ranges[i].clone();
            let mut chunk: Vec<Tuple> = (range.start..range.end)
                .map(|j| rel.get(j).expect("shard range in bounds"))
                .collect();
            chunk.sort_unstable_by_key(|t| t.key);
            chunk
        });
        // Pairwise merge rounds: log2(threads) rounds of linear merges.
        while chunks.len() > 1 {
            let mut merged = Vec::with_capacity(chunks.len().div_ceil(2));
            let mut iter = chunks.into_iter();
            while let Some(a) = iter.next() {
                match iter.next() {
                    Some(b) => merged.push(merge_two(a, b)),
                    None => merged.push(a),
                }
            }
            chunks = merged;
        }
        let sorted = chunks.pop().unwrap_or_default();
        SortedRun(sorted.into_iter().collect())
    }

    /// Wraps a relation that is already sorted.
    ///
    /// # Panics
    ///
    /// Panics if `rel` is not sorted by key.
    pub fn from_sorted(rel: Relation) -> Self {
        assert!(
            rel.is_sorted_by_key(),
            "from_sorted: relation is not sorted by key"
        );
        SortedRun(rel)
    }

    /// The underlying sorted relation.
    pub fn as_relation(&self) -> &Relation {
        &self.0
    }

    /// Consumes the run, returning the sorted relation.
    pub fn into_relation(self) -> Relation {
        self.0
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the run holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The sorted key column.
    pub fn keys(&self) -> &[relation::Key] {
        self.0.keys()
    }

    /// Index of the first tuple with `key ≥ bound` (binary search).
    pub fn lower_bound(&self, bound: relation::Key) -> usize {
        self.0.keys().partition_point(|&k| k < bound)
    }
}

/// Merges two sorted tuple vectors into one.
fn merge_two(a: Vec<Tuple>, b: Vec<Tuple>) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].key <= b[j].key {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::GenSpec;

    #[test]
    fn sorting_is_correct_for_any_thread_count() {
        let rel = GenSpec::uniform(10_000, 50).generate();
        let reference = {
            let mut r = rel.clone();
            r.sort_by_key();
            r
        };
        for threads in [1, 2, 3, 4, 7] {
            let run = SortedRun::sort(&rel, threads);
            assert!(run.as_relation().is_sorted_by_key());
            assert_eq!(run.len(), rel.len());
            // Same key sequence as the reference sort.
            assert_eq!(run.as_relation().keys(), reference.keys());
        }
    }

    #[test]
    fn sorting_preserves_the_multiset() {
        let rel = GenSpec::zipf(5_000, 0.8, 51).generate();
        let run = SortedRun::sort(&rel, 4);
        let mut orig: Vec<Tuple> = rel.iter().collect();
        let mut sorted: Vec<Tuple> = run.as_relation().iter().collect();
        orig.sort_unstable();
        sorted.sort_unstable();
        assert_eq!(orig, sorted);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(SortedRun::sort(&Relation::new(), 4).is_empty());
        let one = SortedRun::sort(&Relation::from_pairs([(5, 50)]), 4);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn from_sorted_accepts_sorted() {
        let rel = GenSpec::sequential(100, 0).generate();
        let run = SortedRun::from_sorted(rel.clone());
        assert_eq!(run.as_relation(), &rel);
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn from_sorted_rejects_unsorted() {
        let _ = SortedRun::from_sorted(Relation::from_pairs([(2, 0), (1, 0)]));
    }

    #[test]
    fn lower_bound_finds_first_occurrence() {
        let run = SortedRun::from_sorted(Relation::from_pairs([(1, 0), (3, 0), (3, 1), (5, 0)]));
        assert_eq!(run.lower_bound(0), 0);
        assert_eq!(run.lower_bound(3), 1);
        assert_eq!(run.lower_bound(4), 3);
        assert_eq!(run.lower_bound(9), 4);
    }
}
