//! Sort-merge join.
//!
//! The **setup phase** sorts both inputs by join key ([`SortedRun`],
//! produced by a parallel merge sort — the paper sorts `R_i` and `S_i` in
//! parallel with a qsort-based routine). The **join phase** merges the two
//! sorted runs with a strictly sequential, cache-friendly access pattern;
//! it naturally supports band joins and splits the probe side across
//! threads for multi-core execution.
//!
//! Sorting costs far more than building hash tables, but in cyclo-join the
//! sort is a one-time investment amortized over the whole revolution
//! (§V-E), and the merge phase is ~2× faster than hash probing.

pub mod join;
pub mod run;

pub use join::{merge_join, SortMergeState};
pub use run::SortedRun;
