//! # mem-joins — cache-conscious in-memory join algorithms
//!
//! The local-join substrate of the cyclo-join reproduction: Rust ports of
//! the algorithms the paper took from MonetDB (§IV-C), exposed through a
//! uniform two-phase API so cyclo-join can amortize setup across a full
//! ring revolution.
//!
//! * [`hash`] — radix-partitioned hash join tuned to L2 cache geometry
//!   (Manegold, Boncz & Kersten's radix join), equi-joins only;
//! * [`sort`] — parallel-sort + multi-threaded merge join, including band
//!   joins;
//! * [`nested`] — blocked nested loops for arbitrary theta predicates;
//! * [`operator::Algorithm`] — the uniform setup/prepare/join dispatch.
//!
//! ```
//! use mem_joins::{Algorithm, JoinCollector, JoinPredicate};
//! use relation::GenSpec;
//!
//! let r = GenSpec::uniform(10_000, 1).generate();
//! let s = GenSpec::uniform(10_000, 2).generate();
//!
//! let alg = Algorithm::partitioned_hash();
//! let bits = alg.ring_radix_bits(s.len());
//! let state = alg.setup_stationary(&s, bits, 4);      // setup phase
//! let frag = alg.prepare_fragment(&r, bits, 4);       // fragment reorganization
//! let mut out = JoinCollector::aggregating();
//! alg.join(&state, &frag, &JoinPredicate::Equi, 4, &mut out); // join phase
//! assert!(out.count() > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod collector;
pub mod hash;
pub mod nested;
pub mod operator;
pub mod parallel;
pub mod predicate;
pub mod sort;
pub mod stats;

pub use collector::{JoinCollector, OutputMode};
pub use hash::{CacheParams, HashJoinState, RadixPartitioned};
pub use nested::nested_loops_join;
pub use operator::{Algorithm, PreparedFragment, StationaryState};
pub use predicate::JoinPredicate;
pub use sort::{merge_join, SortMergeState, SortedRun};
pub use stats::{timed, PhaseTimes};
