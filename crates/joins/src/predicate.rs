//! Join predicates.
//!
//! Cyclo-join poses no restriction on the join predicate (§IV-A): the paper
//! evaluates equi-joins (hash or sort-merge), notes that the sort-merge
//! implementation also handles band joins, and falls back to nested loops
//! for everything else. The same taxonomy is modelled here.

use std::fmt;
use std::sync::Arc;

use relation::Key;

/// A join predicate `p(r.key, s.key)`.
#[derive(Clone, Default)]
pub enum JoinPredicate {
    /// `r.key = s.key`.
    #[default]
    Equi,
    /// `|r.key − s.key| ≤ delta` (band join, DeWitt et al. \[7\]).
    Band {
        /// Half-width of the band.
        delta: u32,
    },
    /// An arbitrary theta predicate, evaluated per key pair.
    Theta(Arc<dyn Fn(Key, Key) -> bool + Send + Sync>),
}

impl JoinPredicate {
    /// A band predicate of half-width `delta`.
    pub fn band(delta: u32) -> Self {
        JoinPredicate::Band { delta }
    }

    /// An arbitrary theta predicate.
    pub fn theta(f: impl Fn(Key, Key) -> bool + Send + Sync + 'static) -> Self {
        JoinPredicate::Theta(Arc::new(f))
    }

    /// Evaluates the predicate on a key pair.
    pub fn matches(&self, r_key: Key, s_key: Key) -> bool {
        match self {
            JoinPredicate::Equi => r_key == s_key,
            JoinPredicate::Band { delta } => r_key.abs_diff(s_key) <= *delta,
            JoinPredicate::Theta(f) => f(r_key, s_key),
        }
    }

    /// True if this is the equality predicate.
    pub fn is_equi(&self) -> bool {
        matches!(self, JoinPredicate::Equi)
    }

    /// The band half-width: 0 for equi, `delta` for band, `None` for theta
    /// (which has no band structure to exploit).
    pub fn band_delta(&self) -> Option<u32> {
        match self {
            JoinPredicate::Equi => Some(0),
            JoinPredicate::Band { delta } => Some(*delta),
            JoinPredicate::Theta(_) => None,
        }
    }
}

impl fmt::Debug for JoinPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinPredicate::Equi => write!(f, "Equi"),
            JoinPredicate::Band { delta } => write!(f, "Band {{ delta: {delta} }}"),
            JoinPredicate::Theta(_) => write!(f, "Theta(..)"),
        }
    }
}

impl fmt::Display for JoinPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinPredicate::Equi => write!(f, "r.key = s.key"),
            JoinPredicate::Band { delta } => write!(f, "|r.key - s.key| <= {delta}"),
            JoinPredicate::Theta(_) => write!(f, "theta(r.key, s.key)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_matches_only_equal_keys() {
        let p = JoinPredicate::Equi;
        assert!(p.matches(5, 5));
        assert!(!p.matches(5, 6));
        assert!(p.is_equi());
        assert_eq!(p.band_delta(), Some(0));
    }

    #[test]
    fn band_matches_within_delta() {
        let p = JoinPredicate::band(2);
        assert!(p.matches(10, 8));
        assert!(p.matches(10, 12));
        assert!(p.matches(10, 10));
        assert!(!p.matches(10, 13));
        assert!(!p.matches(10, 7));
        assert_eq!(p.band_delta(), Some(2));
    }

    #[test]
    fn band_zero_equals_equi() {
        let band = JoinPredicate::band(0);
        for (r, s) in [(1u32, 1u32), (1, 2), (7, 7), (0, u32::MAX)] {
            assert_eq!(band.matches(r, s), JoinPredicate::Equi.matches(r, s));
        }
    }

    #[test]
    fn band_handles_unsigned_underflow() {
        // 0 vs MAX must not wrap around.
        let p = JoinPredicate::band(5);
        assert!(!p.matches(0, u32::MAX));
        assert!(p.matches(0, 5));
        assert!(p.matches(5, 0));
    }

    #[test]
    fn theta_evaluates_arbitrary_predicates() {
        let p = JoinPredicate::theta(|r, s| r > s && (r - s) % 2 == 0);
        assert!(p.matches(10, 8));
        assert!(!p.matches(10, 9));
        assert!(!p.matches(8, 10));
        assert_eq!(p.band_delta(), None);
        assert!(!p.is_equi());
    }

    #[test]
    fn debug_and_display_formatting() {
        assert_eq!(format!("{:?}", JoinPredicate::Equi), "Equi");
        assert_eq!(
            format!("{}", JoinPredicate::band(3)),
            "|r.key - s.key| <= 3"
        );
        assert_eq!(
            format!("{:?}", JoinPredicate::theta(|_, _| true)),
            "Theta(..)"
        );
    }
}
