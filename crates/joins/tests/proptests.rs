//! Property-based tests of the join algorithms: every algorithm, on any
//! input, produces exactly the reference multiset of matches.

use mem_joins::hash::{CacheParams, RadixPartitioned};
use mem_joins::{
    merge_join, nested_loops_join, Algorithm, JoinCollector, JoinPredicate, SortedRun,
};
use proptest::prelude::*;
use relation::{relation_checksum, Checksum, GenSpec, Relation};

fn relation_strategy() -> impl Strategy<Value = Relation> {
    // Mix of shapes: empty, small domains (heavy duplicates), wide domains.
    (0usize..300, 1u32..50_000, any::<u64>()).prop_map(|(tuples, domain, seed)| {
        GenSpec {
            tuples,
            distribution: relation::KeyDistribution::Uniform { domain },
            seed,
        }
        .generate()
    })
}

fn reference(r: &Relation, s: &Relation, pred: &JoinPredicate) -> (u64, Checksum) {
    let mut c = JoinCollector::aggregating();
    nested_loops_join(r, s, pred, 1, &mut c);
    (c.count(), c.checksum())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The radix hash join equals brute force on arbitrary inputs.
    #[test]
    fn hash_join_equals_reference(
        r in relation_strategy(),
        s in relation_strategy(),
        threads in 1usize..5,
    ) {
        let alg = Algorithm::PartitionedHash(CacheParams::tiny_for_tests());
        let bits = alg.ring_radix_bits(s.len());
        let state = alg.setup_stationary(&s, bits, threads);
        let frag = alg.prepare_fragment(&r, bits, threads);
        let mut c = JoinCollector::aggregating();
        alg.join(&state, &frag, &JoinPredicate::Equi, threads, &mut c);
        let (count, checksum) = reference(&r, &s, &JoinPredicate::Equi);
        prop_assert_eq!(c.count(), count);
        prop_assert_eq!(c.checksum(), checksum);
    }

    /// The sort-merge join equals brute force for any band half-width.
    #[test]
    fn merge_join_equals_reference(
        r in relation_strategy(),
        s in relation_strategy(),
        delta in 0u32..10,
        threads in 1usize..5,
    ) {
        let pred = JoinPredicate::band(delta);
        let mut c = JoinCollector::aggregating();
        merge_join(&SortedRun::sort(&r, 2), &SortedRun::sort(&s, 2), delta, threads, &mut c);
        let (count, checksum) = reference(&r, &s, &pred);
        prop_assert_eq!(c.count(), count);
        prop_assert_eq!(c.checksum(), checksum);
    }

    /// Radix partitioning conserves the multiset for any bit/pass combo.
    #[test]
    fn radix_partitioning_conserves(
        rel in relation_strategy(),
        bits in 0u32..10,
        per_pass in 1u32..6,
    ) {
        let params = CacheParams {
            max_bits_per_pass: per_pass,
            ..CacheParams::default()
        };
        let part = RadixPartitioned::new(&rel, bits, &params);
        prop_assert_eq!(part.partitions().len(), 1 << bits);
        prop_assert_eq!(part.len(), rel.len());
        prop_assert_eq!(
            relation_checksum(&part.flatten()),
            relation_checksum(&rel)
        );
    }

    /// The three partitioning constructors — borrowed scatter, owned
    /// scatter, and the parallel scatter — produce byte-identical
    /// partitions. The borrowed path used to seed itself with a
    /// whole-relation clone; this pins the fix to the old semantics
    /// (and `from_owned(rel.clone())` *is* the old clone-seeded path).
    #[test]
    fn partitioning_constructors_agree(
        rel in relation_strategy(),
        bits in 0u32..10,
        per_pass in 1u32..6,
        threads in 1usize..6,
    ) {
        let params = CacheParams {
            max_bits_per_pass: per_pass,
            ..CacheParams::default()
        };
        let borrowed = RadixPartitioned::new(&rel, bits, &params);
        let owned = RadixPartitioned::from_owned(rel.clone(), bits, &params);
        let parallel = RadixPartitioned::new_parallel(&rel, bits, &params, threads);
        prop_assert_eq!(borrowed.partitions(), owned.partitions());
        prop_assert_eq!(borrowed.partitions(), parallel.partitions());
    }

    /// The owned table build (which moves the partition's columns) probes
    /// identically to the borrowed build (which copies them): same
    /// matches in the same order for present and absent keys, same chain
    /// topology.
    #[test]
    fn owned_table_build_probes_like_borrowed(
        partition in relation_strategy(),
        bits in 0u32..8,
        absent in prop::collection::vec(any::<u32>(), 0..20),
    ) {
        use mem_joins::hash::ChainedTable;
        let reference = ChainedTable::build_with_shift(&partition, bits);
        let owned = ChainedTable::build_owned(partition.clone(), bits);
        prop_assert_eq!(owned.len(), reference.len());
        prop_assert_eq!(owned.longest_chain(), reference.longest_chain());
        for &key in partition.keys().iter().chain(absent.iter()) {
            let expect: Vec<_> = reference.probe(key).collect();
            let got: Vec<_> = owned.probe(key).collect();
            prop_assert_eq!(got, expect, "probe({}) diverged", key);
        }
    }

    /// Sorting is stable with respect to the multiset for any thread count.
    #[test]
    fn parallel_sort_conserves(rel in relation_strategy(), threads in 1usize..6) {
        let run = SortedRun::sort(&rel, threads);
        prop_assert!(run.as_relation().is_sorted_by_key());
        prop_assert_eq!(
            relation_checksum(run.as_relation()),
            relation_checksum(&rel)
        );
    }

    /// Probe results never depend on the thread count.
    #[test]
    fn thread_invariance(
        r in relation_strategy(),
        s in relation_strategy(),
    ) {
        let alg = Algorithm::PartitionedHash(CacheParams::tiny_for_tests());
        let bits = alg.ring_radix_bits(s.len());
        let state = alg.setup_stationary(&s, bits, 1);
        let frag = alg.prepare_fragment(&r, bits, 1);
        let mut results = Vec::new();
        for threads in [1usize, 3, 7] {
            let mut c = JoinCollector::aggregating();
            alg.join(&state, &frag, &JoinPredicate::Equi, threads, &mut c);
            results.push((c.count(), c.checksum()));
        }
        prop_assert!(results.windows(2).all(|w| w[0] == w[1]));
    }

    /// Collector merging is associative on counts and checksums.
    #[test]
    fn collector_merge_associates(
        keys in prop::collection::vec(any::<u32>(), 0..120),
        cut1 in 0usize..120,
        cut2 in 0usize..120,
    ) {
        use relation::{MatchPair, Tuple};
        let matches: Vec<MatchPair> = keys
            .iter()
            .map(|&k| MatchPair::new(Tuple::new(k, 1), Tuple::new(k, 2)))
            .collect();
        let (a, b) = (cut1.min(matches.len()), cut2.min(matches.len()));
        let (lo, hi) = (a.min(b), a.max(b));
        let fill = |range: &[MatchPair]| {
            let mut c = JoinCollector::aggregating();
            for &m in range {
                c.push(m);
            }
            c
        };
        let mut left_assoc = fill(&matches[..lo]);
        left_assoc.merge(fill(&matches[lo..hi]));
        left_assoc.merge(fill(&matches[hi..]));
        let mut right_assoc = fill(&matches[..lo]);
        let mut tail = fill(&matches[lo..hi]);
        tail.merge(fill(&matches[hi..]));
        right_assoc.merge(tail);
        prop_assert_eq!(left_assoc.count(), right_assoc.count());
        prop_assert_eq!(left_assoc.checksum(), right_assoc.checksum());
    }
}
