//! Criterion benchmark of the real-thread ring backend: end-to-end cost of
//! circulating envelopes through live receiver/join/transmitter entities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use data_roundabout::{RingConfig, RingDriver};

fn bench_thread_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("thread_ring");
    group.sample_size(10);
    for hosts in [2usize, 4] {
        let fragments_per_host = 8;
        // Each fragment is processed `hosts` times (one visit per host).
        group.throughput(Throughput::Elements(
            (hosts * fragments_per_host * hosts) as u64,
        ));
        group.bench_with_input(BenchmarkId::from_parameter(hosts), &hosts, |b, &hosts| {
            b.iter(|| {
                let fragments: Vec<Vec<Vec<u8>>> = (0..hosts)
                    .map(|_| (0..fragments_per_host).map(|_| vec![0u8; 4096]).collect())
                    .collect();
                RingDriver::new(&RingConfig::paper(hosts))
                    .run(fragments, |_, _| {})
                    .expect("ring should run")
                    .0
                    .fragments_completed
            });
        });
    }
    group.finish();
}

fn bench_buffer_depths(c: &mut Criterion) {
    let mut group = c.benchmark_group("thread_ring_buffers");
    group.sample_size(10);
    for buffers in [1usize, 2, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(buffers),
            &buffers,
            |b, &buffers| {
                b.iter(|| {
                    let fragments: Vec<Vec<Vec<u8>>> = (0..3)
                        .map(|_| (0..8).map(|_| vec![0u8; 1024]).collect())
                        .collect();
                    RingDriver::new(&RingConfig::paper(3).with_buffers(buffers))
                        .run(fragments, |_, _| {})
                        .expect("ring should run")
                        .0
                        .fragments_completed
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_thread_ring, bench_buffer_depths);
criterion_main!(benches);
