//! Criterion microbenchmarks of the local join algorithms: setup and join
//! phases, uniform and skewed keys — the per-host building blocks whose
//! measured costs feed the cyclo-join figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mem_joins::{Algorithm, JoinCollector, JoinPredicate};
use relation::GenSpec;

const TUPLES: usize = 200_000;
const THREADS: usize = 4;

fn bench_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("setup_phase");
    group.throughput(Throughput::Elements(TUPLES as u64));
    group.sample_size(10);
    let s = GenSpec::uniform(TUPLES, 1).generate();
    for alg in [Algorithm::partitioned_hash(), Algorithm::SortMerge] {
        let bits = alg.ring_radix_bits(s.len());
        group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &alg, |b, alg| {
            b.iter(|| alg.setup_stationary(&s, bits, THREADS));
        });
    }
    group.finish();
}

fn bench_join_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_phase");
    group.throughput(Throughput::Elements(TUPLES as u64));
    group.sample_size(10);
    let r = GenSpec::uniform(TUPLES, 2).generate();
    let s = GenSpec::uniform(TUPLES, 3).generate();
    for alg in [Algorithm::partitioned_hash(), Algorithm::SortMerge] {
        let bits = alg.ring_radix_bits(s.len());
        let state = alg.setup_stationary(&s, bits, THREADS);
        let frag = alg.prepare_fragment(&r, bits, THREADS);
        group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &alg, |b, alg| {
            b.iter(|| {
                let mut out = JoinCollector::aggregating();
                alg.join(&state, &frag, &JoinPredicate::Equi, THREADS, &mut out);
                out.count()
            });
        });
    }
    group.finish();
}

fn bench_skewed_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_probe_skew");
    group.sample_size(10);
    for z in [0.0, 0.6, 0.9] {
        let n = 50_000;
        let r = GenSpec::zipf(n, z, 4).generate();
        let s = GenSpec::zipf(n, z, 5).generate();
        let alg = Algorithm::partitioned_hash();
        let bits = alg.ring_radix_bits(s.len());
        let state = alg.setup_stationary(&s, bits, THREADS);
        let frag = alg.prepare_fragment(&r, bits, THREADS);
        group.bench_with_input(BenchmarkId::from_parameter(format!("z={z}")), &z, |b, _| {
            b.iter(|| {
                let mut out = JoinCollector::aggregating();
                alg.join(&state, &frag, &JoinPredicate::Equi, THREADS, &mut out);
                out.count()
            });
        });
    }
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe_thread_scaling");
    group.sample_size(10);
    let r = GenSpec::uniform(TUPLES, 6).generate();
    let s = GenSpec::uniform(TUPLES, 7).generate();
    let alg = Algorithm::partitioned_hash();
    let bits = alg.ring_radix_bits(s.len());
    let state = alg.setup_stationary(&s, bits, 1);
    let frag = alg.prepare_fragment(&r, bits, 1);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let mut out = JoinCollector::aggregating();
                alg.join(&state, &frag, &JoinPredicate::Equi, t, &mut out);
                out.count()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_setup,
    bench_join_phase,
    bench_skewed_probe,
    bench_thread_scaling
);
criterion_main!(benches);
