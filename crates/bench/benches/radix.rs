//! Criterion microbenchmarks of radix partitioning and chained-table
//! probing — the cache-conscious inner machinery of the hash join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mem_joins::hash::{CacheParams, ChainedTable, RadixPartitioned};
use relation::GenSpec;

const TUPLES: usize = 500_000;

fn bench_partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("radix_partition");
    group.throughput(Throughput::Elements(TUPLES as u64));
    group.sample_size(10);
    let rel = GenSpec::uniform(TUPLES, 1).generate();
    for bits in [4u32, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            b.iter(|| RadixPartitioned::new(&rel, bits, &CacheParams::default()).len());
        });
    }
    group.finish();
}

fn bench_multi_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("radix_passes");
    group.sample_size(10);
    let rel = GenSpec::uniform(TUPLES, 2).generate();
    for per_pass in [4u32, 6, 12] {
        let params = CacheParams {
            max_bits_per_pass: per_pass,
            ..CacheParams::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("12bits_{per_pass}per_pass")),
            &params,
            |b, params| {
                b.iter(|| RadixPartitioned::new(&rel, 12, params).len());
            },
        );
    }
    group.finish();
}

fn bench_table_build_and_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("chained_table");
    group.sample_size(10);
    let s = GenSpec::uniform(100_000, 3).generate();
    group.throughput(Throughput::Elements(s.len() as u64));
    group.bench_function("build_100k", |b| {
        b.iter(|| ChainedTable::build(&s).len());
    });
    let table = ChainedTable::build(&s);
    let probes = GenSpec::uniform(100_000, 4).generate();
    group.bench_function("probe_100k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &k in probes.keys() {
                hits += table.probe(k).count() as u64;
            }
            hits
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_partitioning,
    bench_multi_pass,
    bench_table_build_and_probe
);
criterion_main!(benches);
