//! Criterion microbenchmarks of the simulation substrate: event engine
//! throughput, link reservations, and end-to-end simulated ring runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use data_roundabout::{FixedCostApp, RingConfig, SimRing};
use simnet::engine::Simulation;
use simnet::link::{Direction, Link};
use simnet::time::{SimDuration, SimTime};

fn bench_event_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_engine");
    let events = 100_000u64;
    group.throughput(Throughput::Elements(events));
    group.sample_size(20);
    group.bench_function("schedule_and_drain", |b| {
        b.iter(|| {
            let mut sim: Simulation<u64> = Simulation::new();
            for i in 0..events {
                sim.schedule_at(SimTime::from_nanos(i * 7 % 1_000_000), i);
            }
            let mut sum = 0u64;
            sim.run(|_, e| sum += e);
            sum
        });
    });
    group.finish();
}

fn bench_link_reservation(c: &mut Criterion) {
    let mut group = c.benchmark_group("link");
    let n = 10_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("reserve_10k", |b| {
        b.iter(|| {
            let mut link = Link::paper_10gbe();
            let mut last = SimTime::ZERO;
            for _ in 0..n {
                last = link.reserve(last, Direction::Forward, 1 << 20).arrival;
            }
            last
        });
    });
    group.finish();
}

fn bench_sim_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_ring");
    group.sample_size(20);
    for hosts in [2usize, 6, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(hosts), &hosts, |b, &hosts| {
            b.iter(|| {
                let app = FixedCostApp::new(
                    hosts,
                    SimDuration::from_millis(1),
                    SimDuration::from_millis(2),
                );
                let fragments: Vec<Vec<Vec<u8>>> = (0..hosts)
                    .map(|_| (0..4).map(|_| vec![0u8; 1 << 16]).collect())
                    .collect();
                SimRing::new(RingConfig::paper(hosts), fragments, app)
                    .run()
                    .metrics
                    .fragments_completed
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_engine,
    bench_link_reservation,
    bench_sim_ring
);
criterion_main!(benches);
