//! Ablation — does cache-conscious radix partitioning actually matter?
//!
//! The radix join's whole point (§IV-C1, Manegold et al. \[22\]) is that
//! partitioning the build side until each partition + hash table fits in
//! L2 makes every probe a cache hit. This ablation measures **real
//! wall-clock time on this machine**: the same probe workload against
//! tables built with 0 radix bits (one giant table) up to well past the
//! cache-fitting fan-out.
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin ablate_radix_bits
//! ```

use cyclo_bench::{print_table, scale_from_env, write_csv};
use mem_joins::hash::{radix_bits_for, CacheParams, HashJoinState, RadixPartitioned};
use mem_joins::{timed, JoinCollector};
use relation::GenSpec;

fn main() {
    let scale = scale_from_env(0.2);
    let tuples = ((140_000_000.0 * scale) as usize).max(1);
    let params = CacheParams::paper_xeon();
    let auto_bits = radix_bits_for(tuples, &params);
    println!(
        "Ablation — radix fan-out vs real probe time, {tuples} tuples/side \
         (scale {scale}, auto choice: {auto_bits} bits)\n"
    );

    let s = GenSpec::uniform(tuples, 950).generate();
    let r = GenSpec::uniform(tuples, 951).generate();

    let mut rows = Vec::new();
    let mut sweep: Vec<u32> = vec![0, 4, 8, 12];
    if !sweep.contains(&auto_bits) {
        sweep.push(auto_bits);
        sweep.sort_unstable();
    }
    for bits in sweep {
        let (state, build_time) = timed(|| HashJoinState::build_with_bits(&s, bits, &params));
        let (probe_frag, partition_time) = timed(|| RadixPartitioned::new(&r, bits, &params));
        let (matches, probe_time) = timed(|| {
            let mut c = JoinCollector::aggregating();
            state.probe_partitioned(&probe_frag, 1, &mut c);
            c.count()
        });
        let table_kb_per_partition = state.footprint_bytes() / (1usize << bits) / 1024;
        rows.push(vec![
            format!("{bits}{}", if bits == auto_bits { " (auto)" } else { "" }),
            format!("{}", 1u64 << bits),
            format!("{table_kb_per_partition}"),
            format!(
                "{:.3}",
                build_time.as_secs_f64() + partition_time.as_secs_f64()
            ),
            format!("{:.3}", probe_time.as_secs_f64()),
            matches.to_string(),
        ]);
    }
    print_table(
        &[
            "bits",
            "partitions",
            "kB/table",
            "setup [s]",
            "probe [s]",
            "matches",
        ],
        &rows,
    );
    println!("\nshape: partitioning pays once the monolithic table exceeds the CPU's");
    println!("*last-level* cache (the paper's 2008 Xeon had 4 MB; modern server LLCs");
    println!("run to hundreds of MB, so the crossover needs bigger tables today).");
    println!("Past the cache-fitting fan-out, extra partitions only add overhead.");
    write_csv(
        "ablate_radix_bits",
        &[
            "bits",
            "partitions",
            "kb_per_table",
            "setup_s",
            "probe_s",
            "matches",
        ],
        &rows,
    );
}
