//! Ablation — setup amortization (§IV-D), measured end to end.
//!
//! Cyclo-join invokes the setup phase once and ships *reorganized* data
//! (radix-partitioned or sorted fragments) around the ring, so every host
//! reuses the origin's preparation. The counterfactual rotates raw
//! fragments instead: each host re-partitions/re-sorts every fragment at
//! encounter time. Both modes run for real here (same results, verified);
//! only the phase times differ.
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin ablate_setup_amortization
//! ```

use cyclo_bench::{
    compute_mode_from_env, export_trace, print_table, scale_from_env, secs, trace_path_from_args,
    write_csv,
};
use cyclo_join::{Algorithm, CycloJoin, RotateSide};
use relation::paper_uniform_pair;

fn main() {
    let scale = scale_from_env(0.005);
    let compute = compute_mode_from_env();
    let (r, s) = paper_uniform_pair(scale, 17);
    println!(
        "Ablation — setup amortization (§IV-D), {} + {} tuples (scale {scale})\n",
        r.len(),
        s.len()
    );

    let trace = trace_path_from_args();
    let mut traced = None;
    let mut rows = Vec::new();
    for (alg, name) in [
        (Algorithm::partitioned_hash(), "hash"),
        (Algorithm::SortMerge, "sort-merge"),
    ] {
        for hosts in [2usize, 4, 6] {
            let run = |ship_prepared: bool| {
                CycloJoin::new(r.clone(), s.clone())
                    .algorithm(alg)
                    .hosts(hosts)
                    .rotate(RotateSide::R)
                    .compute(compute)
                    .ship_prepared(ship_prepared)
                    .trace(trace.is_some())
                    .run()
                    .expect("plan should run")
            };
            let amortized = run(true);
            let naive = run(false);
            assert_eq!(
                amortized.checksum(),
                naive.checksum(),
                "both shipping modes must produce the same result"
            );
            let amortized_total = amortized.setup_seconds() + amortized.join_window_seconds();
            let naive_total = naive.setup_seconds() + naive.join_window_seconds();
            rows.push(vec![
                name.to_string(),
                hosts.to_string(),
                secs(amortized.setup_seconds()),
                secs(amortized.join_seconds()),
                secs(naive.join_seconds()),
                secs(amortized_total),
                secs(naive_total),
                format!("{:.2}", naive_total / amortized_total.max(1e-9)),
            ]);
            traced = Some(amortized);
        }
    }
    if let (Some(path), Some(report)) = (&trace, &traced) {
        export_trace(path, report);
    }
    print_table(
        &[
            "algorithm",
            "nodes",
            "setup [s]",
            "join shipped [s]",
            "join raw [s]",
            "total shipped [s]",
            "total raw [s]",
            "penalty",
        ],
        &rows,
    );
    println!("\nshape: re-preparing per encounter inflates the join phase by the whole");
    println!("preparation cost × ring size; the penalty grows with the ring (more");
    println!("encounters per revolution) and with setup cost (sort ≫ hash) — exactly");
    println!("why §IV-D ships access structures / reorganized data over the ring.");
    write_csv(
        "ablate_setup_amortization",
        &[
            "algorithm",
            "nodes",
            "setup_s",
            "join_shipped_s",
            "join_raw_s",
            "total_shipped_s",
            "total_raw_s",
            "penalty",
        ],
        &rows,
    );
}
