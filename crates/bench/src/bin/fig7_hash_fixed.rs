//! Figure 7 — hash join: a fixed data set on an increasing ring size.
//!
//! The paper joins two 140 M-row tables (2 × 1.6 GB) on 1–6 hosts with the
//! partitioned hash join. Expected shape: the setup phase shrinks ∝ 1/n
//! (the hash build is distributed), while the join phase stays constant —
//! each host still scans all of R once (Equation ⋆).
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin fig7_hash_fixed
//! CYCLO_SCALE=0.01 cargo run --release -p cyclo-bench --bin fig7_hash_fixed
//! ```

use cyclo_bench::{
    compute_mode_from_env, export_trace, print_table, scale_from_env, secs, trace_path_from_args,
    write_csv,
};
use cyclo_join::{Algorithm, CycloJoin, RotateSide};
use relation::paper_uniform_pair;

fn main() {
    let scale = scale_from_env(0.005);
    let compute = compute_mode_from_env();
    let (r, s) = paper_uniform_pair(scale, 7);
    println!(
        "Figure 7 — partitioned hash join, fixed {} + {} tuples, ring size 1–6 (scale {scale})\n",
        r.len(),
        s.len()
    );

    let trace = trace_path_from_args();
    let mut traced = None;
    let mut rows = Vec::new();
    let mut single_host_total = 0.0;
    for hosts in 1..=6 {
        let report = CycloJoin::new(r.clone(), s.clone())
            .algorithm(Algorithm::partitioned_hash())
            .hosts(hosts)
            .rotate(RotateSide::R)
            .compute(compute)
            .trace(trace.is_some())
            .run()
            .expect("plan should run");
        if hosts == 1 {
            single_host_total = report.setup_seconds() + report.join_seconds();
        }
        rows.push(vec![
            hosts.to_string(),
            secs(report.setup_seconds()),
            secs(report.join_seconds()),
            secs(report.sync_seconds()),
            secs(report.setup_seconds() + report.join_seconds()),
            report.match_count().to_string(),
        ]);
        traced = Some(report);
    }
    if let (Some(path), Some(report)) = (&trace, &traced) {
        export_trace(path, report);
    }
    print_table(
        &[
            "nodes",
            "setup [s]",
            "join [s]",
            "sync [s]",
            "total [s]",
            "matches",
        ],
        &rows,
    );
    println!("\nsingle-host performance line: {single_host_total:.3}s");

    let setup_1: f64 = rows[0][1].parse().unwrap();
    let setup_6: f64 = rows[5][1].parse().unwrap();
    let join_1: f64 = rows[0][2].parse().unwrap();
    let join_6: f64 = rows[5][2].parse().unwrap();
    println!(
        "shape check: setup speedup 1→6 nodes = {:.2}× (paper: ≈6×); join ratio = {:.2} (paper: ≈1)",
        setup_1 / setup_6,
        join_6 / join_1
    );
    write_csv(
        "fig7_hash_fixed",
        &["nodes", "setup_s", "join_s", "sync_s", "total_s", "matches"],
        &rows,
    );
}
