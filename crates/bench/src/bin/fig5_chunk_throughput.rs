//! Figure 5 — RDMA goodput vs transfer-unit size.
//!
//! "RDMA requires a minimum chunk size to saturate the link": each work
//! request carries a fixed cost, so throughput collapses for tiny units
//! and saturates the 10 Gb/s link only for units around 1 MB and larger
//! (knee near 4 kB).
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin fig5_chunk_throughput
//! ```

use cyclo_bench::{print_table, write_csv};
use simnet::throughput::ChunkThroughput;

fn main() {
    let model = ChunkThroughput::paper_10gbe();
    println!("Figure 5 — RDMA goodput vs chunk size over 10 GbE\n");

    let mut rows = Vec::new();
    let mut size: u64 = 1;
    while size <= 1 << 30 {
        let goodput = model.goodput(size);
        rows.push(vec![
            size_label(size),
            format!("{:.3}", goodput.gbit_per_sec()),
            format!("{:.1}", 100.0 * model.utilization(size)),
        ]);
        size *= 4;
    }
    print_table(&["chunk", "goodput Gb/s", "of peak %"], &rows);

    let knee = model.chunk_size_for_utilization(0.5);
    let saturated = model.chunk_size_for_utilization(0.99);
    println!(
        "\n50 % of peak at {} chunks; ≥99 % of peak at {} chunks",
        size_label(knee),
        size_label(saturated)
    );
    println!("paper shape: saturation begins ≳4 kB, full rate from ≈1 MB units.");
    write_csv(
        "fig5_chunk_throughput",
        &["chunk_bytes", "goodput_gbps", "utilization_pct"],
        &rows,
    );
}

fn size_label(bytes: u64) -> String {
    if bytes >= 1 << 30 {
        format!("{} GB", bytes >> 30)
    } else if bytes >= 1 << 20 {
        format!("{} MB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{} kB", bytes >> 10)
    } else {
        format!("{bytes} B")
    }
}
