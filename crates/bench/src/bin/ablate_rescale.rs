//! Ablation — elastic ring membership (planned join/drain) on the Data
//! Roundabout.
//!
//! §VII of the paper argues the ring "can easily be extended with new
//! machines" and that a failing node's role "can be taken over by some
//! other node". This ablation prices the *planned* version of both
//! moves: a standby activating mid-revolution, a member draining out
//! gracefully, and a full migration (one in, one out) — against the
//! fault-free baseline and against the unplanned crash the drain would
//! otherwise become. Every run is verified against the single-host
//! reference join: the "verified" column is the exactly-once handoff
//! guarantee, not a timing.
//!
//! The `model` column is [`predict_rescale`]'s closed-form estimate
//! (and [`predict_degraded`]'s for the crash row), so the table doubles
//! as a calibration exhibit for the rescale pause term. The trailing
//! sweep re-runs the planned drain across ring widths: the pause is one
//! partition rebuild regardless of width, while the baseline shrinks
//! with the ring — wider rings amortize a drain better.
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin ablate_rescale
//! ```

use cyclo_bench::{compute_mode_from_env, print_table, scale_from_env, secs, write_csv};
use cyclo_join::{
    predict_degraded, predict_rescale, reference_join, Algorithm, CostModel, CycloJoin, FaultPlan,
    HostId, JoinPredicate, RescalePlan, RingConfig, RotateSide, Workload,
};
use relation::paper_uniform_pair;
use simnet::time::{SimDuration, SimTime};

fn main() {
    let scale = scale_from_env(0.005);
    let compute = compute_mode_from_env();
    let hosts = 6;
    let (r, s) = paper_uniform_pair(scale, 43);
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);
    let config = RingConfig::paper(hosts).with_ack_timeout(SimDuration::from_millis(2));
    println!(
        "Ablation — elastic membership (planned join/drain) on {hosts} hosts, hash join, \
         {} + {} tuples (scale {scale})\n",
        r.len(),
        s.len()
    );

    // Place the transitions mid-revolution, using a probe run.
    let probe = CycloJoin::new(r.clone(), s.clone())
        .algorithm(Algorithm::partitioned_hash())
        .ring(config)
        .rotate(RotateSide::R)
        .compute(compute)
        .run()
        .expect("probe run");
    let revolution = probe.total_seconds() - probe.setup_seconds();
    let at = |frac: f64| {
        SimTime::ZERO + SimDuration::from_secs_f64(probe.setup_seconds() + frac * revolution)
    };

    let scenarios: Vec<(&str, Option<RescalePlan>, Option<FaultPlan>)> = vec![
        ("baseline (no plan)", None, None),
        (
            "quiet plan (ack transport)",
            Some(RescalePlan::seeded(43)),
            None,
        ),
        (
            "standby joins at 30%",
            Some(RescalePlan::seeded(43).join_host(HostId(5), at(0.3))),
            None,
        ),
        (
            "member drains at 50%",
            Some(RescalePlan::seeded(43).drain_host(HostId(1), at(0.5))),
            None,
        ),
        (
            "migration: join 30%, drain 60%",
            Some(
                RescalePlan::seeded(43)
                    .join_host(HostId(5), at(0.3))
                    .drain_host(HostId(1), at(0.6)),
            ),
            None,
        ),
        (
            "crash at 50% (unplanned exit)",
            None,
            Some(FaultPlan::seeded(43).crash_host(HostId(1), at(0.5))),
        ),
    ];

    let model = CostModel::paper_xeon();
    let workload = Workload::from_data(&r, &s, 4);
    let alg = Algorithm::partitioned_hash();
    let mut rows = Vec::new();
    for (label, rescale, faults) in &scenarios {
        let mut join = CycloJoin::new(r.clone(), s.clone())
            .algorithm(alg)
            .ring(config)
            .rotate(RotateSide::R)
            .compute(compute);
        if let Some(p) = rescale {
            join = join.rescale_plan(p.clone());
        }
        if let Some(p) = faults {
            join = join.fault_plan(p.clone());
        }
        let report = join.run().expect("rescaled run should still complete");
        let verified =
            report.match_count() == reference.count && report.checksum() == reference.checksum;
        let predicted = match (rescale, faults) {
            (Some(p), None) => Some(predict_rescale(&model, &config, &alg, &workload, p)),
            (None, Some(p)) => Some(predict_degraded(&model, &config, &alg, &workload, p)),
            _ => None,
        };
        rows.push(vec![
            label.to_string(),
            hosts.to_string(),
            secs(report.total_seconds()),
            secs(probe.total_seconds()),
            predicted
                .map(|p| secs(p.total().as_secs_f64()))
                .unwrap_or_else(|| "-".into()),
            report.membership_epoch().to_string(),
            report.rescale_joins().to_string(),
            report.rescale_drains().to_string(),
            report.rescale_handoffs().to_string(),
            report.rescale_escalations().to_string(),
            report.heal_events().to_string(),
            if verified { "yes".into() } else { "NO".into() },
        ]);
        assert!(verified, "{label}: join result diverged from the reference");
    }

    // Pause vs ring width: the same mid-revolution drain on 3..=8 hosts.
    for n in [3usize, 4, 6, 8] {
        let cfg = RingConfig::paper(n).with_ack_timeout(SimDuration::from_millis(2));
        let wprobe = CycloJoin::new(r.clone(), s.clone())
            .algorithm(alg)
            .ring(cfg)
            .rotate(RotateSide::R)
            .compute(compute)
            .run()
            .expect("width probe run");
        let mid = SimTime::ZERO
            + SimDuration::from_secs_f64(
                wprobe.setup_seconds() + 0.5 * (wprobe.total_seconds() - wprobe.setup_seconds()),
            );
        let plan = RescalePlan::seeded(43).drain_host(HostId(1), mid);
        let report = CycloJoin::new(r.clone(), s.clone())
            .algorithm(alg)
            .ring(cfg)
            .rotate(RotateSide::R)
            .compute(compute)
            .rescale_plan(plan.clone())
            .run()
            .expect("width drain run");
        let verified =
            report.match_count() == reference.count && report.checksum() == reference.checksum;
        let predicted = predict_rescale(&model, &cfg, &alg, &workload, &plan);
        rows.push(vec![
            format!("drain at 50% of {n} hosts"),
            n.to_string(),
            secs(report.total_seconds()),
            secs(wprobe.total_seconds()),
            secs(predicted.total().as_secs_f64()),
            report.membership_epoch().to_string(),
            report.rescale_joins().to_string(),
            report.rescale_drains().to_string(),
            report.rescale_handoffs().to_string(),
            report.rescale_escalations().to_string(),
            report.heal_events().to_string(),
            if verified { "yes".into() } else { "NO".into() },
        ]);
        assert!(verified, "drain on {n} hosts diverged from the reference");
    }

    let header = [
        "scenario",
        "hosts",
        "total [s]",
        "base [s]",
        "model [s]",
        "epoch",
        "joins",
        "drains",
        "handoffs",
        "escalations",
        "heals",
        "verified",
    ];
    print_table(&header, &rows);

    let drain_total: f64 = rows[3][2].parse().unwrap();
    let crash_total: f64 = rows[5][2].parse().unwrap();
    let base_total: f64 = rows[0][2].parse().unwrap();
    println!(
        "\nshape: every planned transition lands on the exact reference join; the \
         graceful drain costs {:.2}× the fault-free total while the unplanned crash \
         of the same host costs {:.2}× — the difference is the failure-detection \
         ladder the drain never climbs.",
        drain_total / base_total,
        crash_total / base_total
    );
    write_csv(
        "ablate_rescale",
        &[
            "scenario",
            "hosts",
            "total_s",
            "baseline_s",
            "model_total_s",
            "membership_epoch",
            "rescale_joins",
            "rescale_drains",
            "rescale_handoffs",
            "rescale_escalations",
            "heal_events",
            "verified",
        ],
        &rows,
    );
}
