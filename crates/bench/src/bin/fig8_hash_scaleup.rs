//! Figure 8 — hash join scale-up: each node adds 3.2 GB to the data set.
//!
//! The per-host volume stays constant while the ring grows, so the setup
//! phase becomes size-independent and the join phase grows linearly with
//! the total size of the rotating relation — "cyclo-join makes distributed
//! memory available to process joins of arbitrary size".
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin fig8_hash_scaleup
//! ```

use cyclo_bench::{
    compute_mode_from_env, export_trace, print_table, scale_from_env, secs, trace_path_from_args,
    write_csv,
};
use cyclo_join::{Algorithm, CycloJoin, RotateSide};
use relation::GenSpec;

/// The paper's per-node share: 3.2 GB total per node = 1.6 GB ≈ 133 M
/// tuples per relation side.
const TUPLES_PER_NODE_SIDE: usize = 133_000_000;

fn main() {
    let scale = scale_from_env(0.005);
    let compute = compute_mode_from_env();
    let per_node = ((TUPLES_PER_NODE_SIDE as f64 * scale) as usize).max(1);
    println!(
        "Figure 8 — partitioned hash join scale-up, {per_node} tuples/side/node (scale {scale})\n"
    );

    let trace = trace_path_from_args();
    let mut traced = None;
    let mut rows = Vec::new();
    for hosts in 1..=6 {
        let tuples = per_node * hosts;
        let r = GenSpec::uniform(tuples, 80).generate();
        let s = GenSpec::uniform(tuples, 81).generate();
        let volume_gb = (r.byte_volume() + s.byte_volume()) as f64 / 1e9 / scale;
        let report = CycloJoin::new(r, s)
            .algorithm(Algorithm::partitioned_hash())
            .hosts(hosts)
            .rotate(RotateSide::R)
            .compute(compute)
            .trace(trace.is_some())
            .run()
            .expect("plan should run");
        rows.push(vec![
            format!("{volume_gb:.1}"),
            hosts.to_string(),
            secs(report.setup_seconds()),
            secs(report.join_seconds()),
            secs(report.sync_seconds()),
        ]);
        traced = Some(report);
    }
    if let (Some(path), Some(report)) = (&trace, &traced) {
        export_trace(path, report);
    }
    print_table(
        &[
            "paper-scale GB",
            "nodes",
            "setup [s]",
            "join [s]",
            "sync [s]",
        ],
        &rows,
    );

    let setup_1: f64 = rows[0][2].parse().unwrap();
    let setup_6: f64 = rows[5][2].parse().unwrap();
    let join_1: f64 = rows[0][3].parse().unwrap();
    let join_6: f64 = rows[5][3].parse().unwrap();
    println!(
        "\nshape check: setup 6-node/1-node = {:.2} (paper: ≈1, size-independent); \
         join 6-node/1-node = {:.2} (paper: ≈6, linear in |R|)",
        setup_6 / setup_1,
        join_6 / join_1
    );
    write_csv(
        "fig8_hash_scaleup",
        &["paper_scale_gb", "nodes", "setup_s", "join_s", "sync_s"],
        &rows,
    );
}
