//! Ablation — hash vs sort-merge crossover with ring size (§V-E claim).
//!
//! "We expect that [sort-merge join] would overpass [the partitioned hash
//! join] in Data Roundabout configurations of ≈30 nodes upward (i.e., for
//! data volumes ≳100 GB)." The analytic cost model evaluates both
//! algorithms at full paper scale (closed form — nothing is executed) for
//! rings of 1–64 nodes at the paper's per-node volume.
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin ablate_crossover
//! ```

use cyclo_bench::{print_table, secs, write_csv};
use cyclo_join::{crossover_ring_size, predict, Algorithm, CostModel, RingConfig, Workload};

/// 1.6 GB per relation side per node, the Figure 8/11 regime.
const PER_HOST: usize = 133_000_000;

fn main() {
    let model = CostModel::paper_xeon();
    println!("Ablation — hash vs sort-merge total time vs ring size (analytic, paper scale)\n");

    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 6, 8, 12, 16, 24, 32, 40, 48, 64] {
        let config = RingConfig::paper(n);
        let workload = Workload::uniform(PER_HOST * n, PER_HOST * n, PER_HOST * n);
        let hash = predict(&model, &config, &Algorithm::partitioned_hash(), &workload);
        let smj = predict(&model, &config, &Algorithm::SortMerge, &workload);
        let volume_gb = 2.0 * (PER_HOST * n) as f64 * 12.0 / 1e9;
        rows.push(vec![
            n.to_string(),
            format!("{volume_gb:.0}"),
            secs(hash.total().as_secs_f64()),
            secs(smj.total().as_secs_f64()),
            if smj.total() < hash.total() {
                "sort-merge".into()
            } else {
                "hash".into()
            },
        ]);
    }
    print_table(
        &[
            "nodes",
            "volume GB",
            "hash total [s]",
            "smj total [s]",
            "winner",
        ],
        &rows,
    );

    let crossover = crossover_ring_size(&model, &RingConfig::paper(6), PER_HOST, 128);
    match crossover {
        Some(n) => {
            let volume_gb = 2.0 * (PER_HOST * n) as f64 * 12.0 / 1e9;
            println!(
                "\ncrossover at {n} nodes ≈ {volume_gb:.0} GB total \
                 (paper expectation: ≈30 nodes / ≳100 GB)"
            );
        }
        None => println!("\nno crossover up to 128 nodes — model constants need recalibration"),
    }
    write_csv(
        "ablate_crossover",
        &[
            "nodes",
            "volume_gb",
            "hash_total_s",
            "smj_total_s",
            "winner",
        ],
        &rows,
    );
}
