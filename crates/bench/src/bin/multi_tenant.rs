//! Exhibit — multi-tenant multiplexing throughput under faults.
//!
//! One six-host ring carries `k` independent tenants at once: every
//! in-flight fragment is tagged with its query id, per-query credits
//! partition the ring buffers, and the admission queue caps how many
//! queries circulate concurrently. This sweep measures completed
//! queries per second as the tenant count grows — with lossy links
//! switched *on*, so the per-query ack/retransmit ledgers are earning
//! their keep — against running the same tenants one after another.
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin multi_tenant
//! ```

use cyclo_bench::{print_table, scale_from_env, secs, write_csv};
use cyclo_join::multiplex::MultiTenantJoin;
use cyclo_join::{CycloJoin, FaultPlan, HostId, JoinPredicate};
use relation::GenSpec;

const HOSTS: usize = 6;
const LOSS: f64 = 0.03;

/// Lossy dice on every host's outbound link, shared by all tenants.
fn faults(seed: u64) -> FaultPlan {
    (0..HOSTS).fold(FaultPlan::seeded(seed), |plan, h| {
        plan.lossy_link(HostId(h), LOSS)
    })
}

fn main() {
    let scale = scale_from_env(0.002);
    let tuples = ((40_000_000.0 * scale) as usize).max(1);
    println!(
        "Exhibit — multi-tenant multiplexing, {HOSTS} hosts, {tuples} tuples per \
         relation side, {:.0}% loss on every link (scale {scale})\n",
        LOSS * 100.0
    );

    let mut rows = Vec::new();
    for tenants in [1usize, 2, 4, 8] {
        let max_active = tenants.min(4);
        let specs: Vec<_> = (0..tenants)
            .map(|q| {
                let seed = 900 + 2 * q as u64;
                (
                    GenSpec::uniform(tuples, seed).generate(),
                    GenSpec::uniform(tuples, seed + 1).generate(),
                    JoinPredicate::Equi,
                )
            })
            .collect();

        let mut batch = MultiTenantJoin::new()
            .hosts(HOSTS)
            .max_active(max_active)
            .fault_plan(faults(11));
        for (r, s, p) in &specs {
            batch = batch.tenant(r.clone(), s.clone(), p.clone());
        }
        let report = batch.run().expect("multiplexed run");
        assert!(report.all_completed(), "every tenant must complete");

        // Baseline: the same tenants as sequential single-query runs on
        // the same lossy ring.
        let sequential: f64 = specs
            .iter()
            .map(|(r, s, p)| {
                CycloJoin::new(r.clone(), s.clone())
                    .predicate(p.clone())
                    .hosts(HOSTS)
                    .fault_plan(faults(11))
                    .run()
                    .expect("sequential run")
                    .total_seconds()
            })
            .sum();

        rows.push(vec![
            tenants.to_string(),
            max_active.to_string(),
            secs(report.total_seconds()),
            format!("{:.1}", report.queries_per_second()),
            format!("{:.1}", tenants as f64 / sequential),
            report.ring.total_retransmits().to_string(),
        ]);
    }
    print_table(
        &[
            "tenants",
            "max active",
            "multiplexed [s]",
            "multiplexed q/s",
            "sequential q/s",
            "retransmits",
        ],
        &rows,
    );
    println!("\nshape: queries/s grows with the tenant count until the admission bound");
    println!("saturates the ring — extra tenants overlap their hops with each other's");
    println!("compute, so the shared ring beats running the queries back to back even");
    println!("while lossy links keep the per-query retransmit ledgers busy.");
    write_csv(
        "multi_tenant",
        &[
            "tenants",
            "max_active",
            "multiplexed_s",
            "multiplexed_qps",
            "sequential_qps",
            "retransmits",
        ],
        &rows,
    );
}
