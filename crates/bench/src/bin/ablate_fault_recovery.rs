//! Ablation — fault recovery on the Data Roundabout.
//!
//! The paper closes §VII by noting that "any failing node can easily be
//! replaced by another machine (or its role can be taken over by some
//! other node in the ring)". This ablation quantifies that claim: a
//! six-host ring runs the same join under a ladder of injected faults —
//! lossy links, corruption, a straggler, a paused host, and a full
//! mid-revolution crash — and reports what each one costs. Every run is
//! verified against the single-host reference join; the "verified" column
//! is the exactly-once guarantee, not a timing.
//!
//! The `model` column is [`predict_degraded`]'s closed-form estimate of
//! the degraded total, so the table doubles as a cost-model calibration
//! exhibit.
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin ablate_fault_recovery
//! ```

use cyclo_bench::{
    compute_mode_from_env, export_trace, print_table, scale_from_env, secs, trace_path_from_args,
    write_csv,
};
use cyclo_join::{
    predict_degraded, reference_join, Algorithm, CostModel, CycloJoin, FaultPlan, HostId,
    JoinPredicate, RingConfig, RotateSide, Workload,
};
use relation::paper_uniform_pair;
use simnet::time::{SimDuration, SimTime};

fn main() {
    let scale = scale_from_env(0.005);
    let compute = compute_mode_from_env();
    let hosts = 6;
    let (r, s) = paper_uniform_pair(scale, 41);
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);
    let config = RingConfig::paper(hosts).with_ack_timeout(SimDuration::from_millis(2));
    println!(
        "Ablation — fault injection and ring healing on {hosts} hosts, hash join, \
         {} + {} tuples (scale {scale})\n",
        r.len(),
        s.len()
    );

    // Place the crash and the pause mid-revolution, using a probe run.
    let probe = CycloJoin::new(r.clone(), s.clone())
        .algorithm(Algorithm::partitioned_hash())
        .ring(config)
        .rotate(RotateSide::R)
        .compute(compute)
        .run()
        .expect("probe run");
    let mid = probe.setup_seconds() + 0.5 * (probe.total_seconds() - probe.setup_seconds());
    let mid_t = SimTime::ZERO + SimDuration::from_secs_f64(mid);

    let scenarios: Vec<(&str, Option<FaultPlan>)> = vec![
        ("baseline (no plan)", None),
        ("quiet plan (ack transport)", Some(FaultPlan::seeded(61))),
        (
            "lossy link 10%",
            Some(FaultPlan::seeded(61).lossy_link(HostId(1), 0.10)),
        ),
        (
            "lossy link 30%",
            Some(FaultPlan::seeded(61).lossy_link(HostId(1), 0.30)),
        ),
        (
            "corrupt link 10%",
            Some(FaultPlan::seeded(61).corrupt_link(HostId(4), 0.10)),
        ),
        (
            "straggler at half speed",
            Some(FaultPlan::seeded(61).slow_host(HostId(2), 0.5)),
        ),
        (
            "host paused 50 ms",
            Some(FaultPlan::seeded(61).pause_host(HostId(2), mid_t, SimDuration::from_millis(50))),
        ),
        (
            "crash mid-revolution",
            Some(FaultPlan::seeded(61).crash_host(HostId(3), mid_t)),
        ),
    ];

    let model = CostModel::paper_xeon();
    let workload = Workload::from_data(&r, &s, 4);
    let trace = trace_path_from_args();
    let mut traced = None;
    let mut rows = Vec::new();
    for (label, plan) in &scenarios {
        let mut join = CycloJoin::new(r.clone(), s.clone())
            .algorithm(Algorithm::partitioned_hash())
            .ring(config)
            .rotate(RotateSide::R)
            .compute(compute)
            .trace(trace.is_some());
        if let Some(p) = plan {
            join = join.fault_plan(p.clone());
        }
        let report = join.run().expect("faulted run should still complete");
        let verified =
            report.match_count() == reference.count && report.checksum() == reference.checksum;
        let predicted = plan.as_ref().map(|p| {
            predict_degraded(
                &model,
                &config,
                &Algorithm::partitioned_hash(),
                &workload,
                p,
            )
            .total()
            .as_secs_f64()
        });
        rows.push(vec![
            label.to_string(),
            secs(report.total_seconds()),
            predicted.map(secs).unwrap_or_else(|| "-".into()),
            report.retransmits().to_string(),
            report.checksum_mismatches().to_string(),
            report.heal_events().to_string(),
            secs(report.detection_latency_seconds()),
            report.fragments_resent().to_string(),
            if verified { "yes".into() } else { "NO".into() },
        ]);
        assert!(verified, "{label}: join result diverged from the reference");
        traced = Some(report);
    }
    // The last scenario is the mid-revolution crash — the most interesting
    // profile: the exported trace shows the detection ladder, the heal
    // event, and the successor's absorb span.
    if let (Some(path), Some(report)) = (&trace, &traced) {
        export_trace(path, report);
    }
    print_table(
        &[
            "scenario",
            "total [s]",
            "model [s]",
            "retx",
            "corrupt",
            "heals",
            "detect [s]",
            "resent",
            "verified",
        ],
        &rows,
    );

    let crash_total: f64 = rows.last().unwrap()[1].parse().unwrap();
    let base_total: f64 = rows[0][1].parse().unwrap();
    println!(
        "\nshape: every scenario — including the mid-revolution crash — produces \
         the exact reference join result; losing a host costs {:.1}× the fault-free \
         total (detection ladder + takeover + five survivors carrying six roles).",
        crash_total / base_total
    );
    write_csv(
        "ablate_fault_recovery",
        &[
            "scenario",
            "total_s",
            "model_total_s",
            "retransmits",
            "checksum_mismatches",
            "heal_events",
            "detection_s",
            "fragments_resent",
            "verified",
        ],
        &rows,
    );
}
