//! Figure 10 — sort-merge join: a fixed data set on an increasing ring.
//!
//! Sorting costs far more than building hash tables, so small rings pay a
//! heavy setup bill; the investment is amortized over the ring (setup
//! ∝ 1/n) and partially pays off in the faster merge phase.
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin fig10_smj_fixed
//! ```

use cyclo_bench::{
    compute_mode_from_env, export_trace, print_table, scale_from_env, secs, trace_path_from_args,
    write_csv,
};
use cyclo_join::{Algorithm, CycloJoin, RotateSide};
use relation::paper_uniform_pair;

fn main() {
    let scale = scale_from_env(0.005);
    let compute = compute_mode_from_env();
    let (r, s) = paper_uniform_pair(scale, 10);
    println!(
        "Figure 10 — sort-merge join, fixed {} + {} tuples, ring size 1–6 (scale {scale})\n",
        r.len(),
        s.len()
    );

    let trace = trace_path_from_args();
    let mut traced = None;
    let mut rows = Vec::new();
    for hosts in 1..=6 {
        let report = CycloJoin::new(r.clone(), s.clone())
            .algorithm(Algorithm::SortMerge)
            .hosts(hosts)
            .rotate(RotateSide::R)
            .compute(compute)
            .trace(trace.is_some())
            .run()
            .expect("plan should run");
        rows.push(vec![
            hosts.to_string(),
            secs(report.setup_seconds()),
            secs(report.join_seconds()),
            secs(report.sync_seconds()),
            secs(report.setup_seconds() + report.join_window_seconds()),
        ]);
        traced = Some(report);
    }
    if let (Some(path), Some(report)) = (&trace, &traced) {
        export_trace(path, report);
    }
    print_table(
        &["nodes", "setup [s]", "join [s]", "sync [s]", "total [s]"],
        &rows,
    );

    let setup_1: f64 = rows[0][1].parse().unwrap();
    let setup_6: f64 = rows[5][1].parse().unwrap();
    println!(
        "\nshape check: setup dominates small rings and shrinks {:.2}× from 1→6 nodes (paper: ≈6×)",
        setup_1 / setup_6
    );
    write_csv(
        "fig10_smj_fixed",
        &["nodes", "setup_s", "join_s", "sync_s", "total_s"],
        &rows,
    );
}
