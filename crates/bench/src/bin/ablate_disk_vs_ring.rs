//! Ablation — distributed main memory vs local disk (§II-C, footnote 1).
//!
//! The premise of the Data Roundabout: "it is preferable to keep the hot
//! set in distributed main memory rather than on disk since state-of-the-
//! art interconnects not only provide a higher throughput but also a
//! significantly lower latency than hard disks." This ablation joins the
//! same data (a) on one host streaming R from a commodity disk, and
//! (b) on a six-host ring holding everything in distributed RAM.
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin ablate_disk_vs_ring
//! ```

use cyclo_bench::{
    export_trace, print_table, scale_from_env, secs, trace_path_from_args, write_csv,
};
use cyclo_join::{Algorithm, CostModel, CycloJoin, RotateSide};
use relation::{GenSpec, TUPLE_BYTES};
use simnet::disk::DiskModel;

fn main() {
    let scale = scale_from_env(0.005);
    let disk = DiskModel::paper_barracuda();
    let model = CostModel::paper_xeon();
    println!("Ablation — local disk streaming vs distributed-RAM ring (scale {scale})\n");

    let trace = trace_path_from_args();
    let mut traced = None;
    let mut rows = Vec::new();
    for hosts in [2usize, 4, 6] {
        let per_node = ((133_000_000.0 * scale) as usize).max(1);
        let tuples = per_node * hosts;
        let r = GenSpec::uniform(tuples, 900).generate();
        let s = GenSpec::uniform(tuples, 901).generate();
        let r_bytes = r.byte_volume();

        // (a) Single host: S's hash table fits RAM, R streams from disk.
        // The join overlaps with the stream, so the wall time is the max
        // of disk time and compute time — disk wins (badly).
        let compute = model
            .join_duration(
                &Algorithm::partitioned_hash(),
                tuples,
                tuples,
                tuples as u64,
                4,
            )
            .as_secs_f64();
        let disk_stream = disk
            .read_time_chunked(r_bytes, (r_bytes / (16 << 20)).max(1))
            .as_secs_f64();
        let local_disk = disk_stream.max(compute);

        // (b) The ring: everything in distributed memory.
        let ring = CycloJoin::new(r, s)
            .algorithm(Algorithm::partitioned_hash())
            .hosts(hosts)
            .rotate(RotateSide::R)
            .trace(trace.is_some())
            .run()
            .expect("plan should run");
        let ring_total = ring.setup_seconds() + ring.join_window_seconds();

        rows.push(vec![
            hosts.to_string(),
            format!("{:.1}", tuples as f64 * TUPLE_BYTES as f64 * 2.0 / 1e6),
            secs(local_disk),
            secs(ring_total),
            format!("{:.1}", local_disk / ring_total.max(1e-9)),
        ]);
        traced = Some(ring);
    }
    if let (Some(path), Some(report)) = (&trace, &traced) {
        export_trace(path, report);
    }
    print_table(
        &[
            "nodes",
            "volume MB",
            "disk-stream join [s]",
            "ring total [s]",
            "ring advantage",
        ],
        &rows,
    );
    println!("\nshape: the disk tops out at 120 MB/s while each ring link moves");
    println!("~1.1 GB/s and the hosts join in parallel — the gap widens with scale,");
    println!("which is the §II-C case for a distributed main-memory hot set.");
    write_csv(
        "ablate_disk_vs_ring",
        &["nodes", "volume_mb", "disk_s", "ring_s", "advantage"],
        &rows,
    );
}
