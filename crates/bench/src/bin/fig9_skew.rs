//! Figure 9 — join phase on skewed (Zipf) data, local vs cyclo-join.
//!
//! The paper generates 36 M-tuple relations (412 MB each) with Zipf
//! factors up to 0.9 and compares the hash-join phase on one host against
//! a six-host ring. Duplicates pile up hash-chain collisions that degrade
//! the local join toward nested-loops behaviour; cyclo-join's smaller
//! per-host partitions keep chains cache-resident — a five-fold advantage
//! at z = 0.9.
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin fig9_skew
//! ```

use cyclo_bench::{
    compute_mode_from_env, export_trace, print_table, scale_from_env, secs, trace_path_from_args,
    write_csv,
};
use cyclo_join::{Algorithm, CycloJoin, RotateSide};
use relation::paper_skew_pair;

fn main() {
    let scale = scale_from_env(0.002);
    let compute = compute_mode_from_env();
    println!("Figure 9 — hash join phase under Zipf skew, local vs 6-host ring (scale {scale})\n");

    let trace = trace_path_from_args();
    let mut traced = None;
    let mut rows = Vec::new();
    for z in [0.0, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9] {
        let run = |hosts: usize| {
            let (r, s) = paper_skew_pair(z, scale, 9);
            CycloJoin::new(r, s)
                .algorithm(Algorithm::partitioned_hash())
                .hosts(hosts)
                .rotate(RotateSide::R)
                .compute(compute)
                .trace(trace.is_some())
                .run()
                .expect("plan should run")
        };
        let local = run(1);
        let ring = run(6);
        assert_eq!(
            local.match_count(),
            ring.match_count(),
            "results must agree"
        );
        rows.push(vec![
            format!("{z:.2}"),
            secs(local.join_seconds()),
            secs(ring.join_seconds()),
            format!(
                "{:.2}",
                local.join_seconds() / ring.join_seconds().max(1e-9)
            ),
            local.match_count().to_string(),
        ]);
        traced = Some(ring);
    }
    if let (Some(path), Some(report)) = (&trace, &traced) {
        export_trace(path, report);
    }
    print_table(
        &[
            "zipf z",
            "local join [s]",
            "cyclo-join [s]",
            "speedup",
            "matches",
        ],
        &rows,
    );

    let flat: f64 = rows[0][3].parse().unwrap();
    let skewed: f64 = rows[6][3].parse().unwrap();
    println!(
        "\nshape check: speedup grows from {flat:.2}× (uniform — no benefit, per the paper) \
         to {skewed:.2}× at z = 0.9 (paper: ≈5×)"
    );
    write_csv(
        "fig9_skew",
        &[
            "zipf_z",
            "local_join_s",
            "cyclo_join_s",
            "speedup",
            "matches",
        ],
        &rows,
    );
}
