//! Figure 12 — hash join over RDMA vs software TCP, 1–4 join threads.
//!
//! The paper distributes 2 × 160 M tuples (2 × 6.7 GB... sic, 1.9 GB at
//! 12 B/tuple) over six hosts and varies how many cores compute the join,
//! leaving the rest for TCP handling. RDMA wins in every configuration —
//! even with one join thread and three idle cores — because it avoids
//! payload copies *and* the context-switch/cache-pollution disturbance;
//! the gap is widest at 4 threads where TCP competes with the join for
//! every core.
//!
//! Besides the two *modeled* columns (the simulator's RDMA and kernel-TCP
//! cost models), the table carries a *measured* kernel-TCP column: the
//! same join run end to end over real loopback sockets by the TCP ring
//! backend, wall-clock timed. The measured column is not comparable to
//! the modeled ones in absolute terms (loopback has no NIC, and the ring
//! is 6 coordinator-scheduled hosts on one machine), but it pins the
//! exhibit to an actual kernel network stack instead of a model alone.
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin fig12_rdma_vs_tcp
//! ```

use cyclo_bench::{
    compute_mode_from_env, export_trace, print_table, scale_from_env, secs, trace_path_from_args,
    write_csv,
};
use cyclo_join::{Algorithm, CycloJoin, RingConfig, RotateSide};
use relation::GenSpec;

const PAPER_TUPLES: usize = 160_000_000;

fn main() {
    let scale = scale_from_env(0.005);
    let compute = compute_mode_from_env();
    let tuples = ((PAPER_TUPLES as f64 * scale) as usize).max(1);
    println!(
        "Figure 12 — hash join phase, RDMA vs kernel TCP, 6 hosts, {tuples} tuples/side (scale {scale})\n"
    );

    let trace = trace_path_from_args();
    let mut traced = None;
    let mut rows = Vec::new();
    for threads in 1..=4 {
        let mut per_transport = Vec::new();
        for config in [
            RingConfig::paper(6).with_join_threads(threads),
            RingConfig::paper_tcp(6).with_join_threads(threads),
        ] {
            let r = GenSpec::uniform(tuples, 120).generate();
            let s = GenSpec::uniform(tuples, 121).generate();
            let report = CycloJoin::new(r, s)
                .algorithm(Algorithm::partitioned_hash())
                .ring(config)
                .rotate(RotateSide::R)
                .compute(compute)
                .trace(trace.is_some())
                .run()
                .expect("plan should run");
            per_transport.push(report);
        }
        // The measured column: the same join over real loopback TCP
        // sockets (kernel networking, wall-clock compute).
        let r = GenSpec::uniform(tuples, 120).generate();
        let s = GenSpec::uniform(tuples, 121).generate();
        let kernel = CycloJoin::new(r, s)
            .algorithm(Algorithm::partitioned_hash())
            .ring(RingConfig::paper_tcp(6).with_join_threads(threads))
            .rotate(RotateSide::R)
            .run_tcp()
            .expect("tcp backend run");
        let rdma = &per_transport[0];
        let tcp = &per_transport[1];
        rows.push(vec![
            threads.to_string(),
            secs(rdma.join_seconds()),
            secs(rdma.sync_seconds()),
            secs(tcp.join_seconds()),
            secs(tcp.sync_seconds()),
            format!(
                "{:.2}",
                (tcp.join_seconds() + tcp.sync_seconds())
                    / (rdma.join_seconds() + rdma.sync_seconds()).max(1e-9)
            ),
            secs(kernel.join_seconds() + kernel.sync_seconds()),
        ]);
        traced = per_transport.into_iter().next();
    }
    if let (Some(path), Some(report)) = (&trace, &traced) {
        export_trace(path, report);
    }
    print_table(
        &[
            "threads",
            "RDMA join [s]",
            "RDMA sync [s]",
            "TCP join [s]",
            "TCP sync [s]",
            "TCP/RDMA",
            "kernel TCP (measured) [s]",
        ],
        &rows,
    );

    let gap_1: f64 = rows[0][5].parse().unwrap();
    let gap_4: f64 = rows[3][5].parse().unwrap();
    println!(
        "\nshape check: TCP is slower at every thread count (1 thread: {gap_1:.2}×), \
         and the gap is widest at 4 threads ({gap_4:.2}×), as in the paper"
    );
    write_csv(
        "fig12_rdma_vs_tcp",
        &[
            "threads",
            "rdma_join_s",
            "rdma_sync_s",
            "tcp_join_s",
            "tcp_sync_s",
            "tcp_over_rdma",
            "kernel_tcp_measured_s",
        ],
        &rows,
    );
}
