//! Figure 11 — sort-merge join scale-up: sync time becomes visible.
//!
//! With the fast merge phase, "the join phase has become too fast to
//! fully hide the cost of network communication": join threads wait for
//! the roundabout (light-gray *sync* bars), and the achieved per-link
//! throughput approaches the physical 10 Gb/s ceiling (§V-F measures
//! 1.1 GB/s against the 1.25 GB/s maximum).
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin fig11_smj_scaleup
//! ```

use cyclo_bench::{
    compute_mode_from_env, export_trace, print_table, scale_from_env, secs, trace_path_from_args,
    write_csv,
};
use cyclo_join::{Algorithm, CycloJoin, RotateSide};
use relation::GenSpec;

const TUPLES_PER_NODE_SIDE: usize = 133_000_000;

fn main() {
    let scale = scale_from_env(0.005);
    let compute = compute_mode_from_env();
    let per_node = ((TUPLES_PER_NODE_SIDE as f64 * scale) as usize).max(1);
    println!("Figure 11 — sort-merge join scale-up, {per_node} tuples/side/node (scale {scale})\n");

    let trace = trace_path_from_args();
    let mut traced = None;
    let mut rows = Vec::new();
    for hosts in 1..=6 {
        let tuples = per_node * hosts;
        let r = GenSpec::uniform(tuples, 110).generate();
        let s = GenSpec::uniform(tuples, 111).generate();
        let volume_gb = (r.byte_volume() + s.byte_volume()) as f64 / 1e9 / scale;
        let report = CycloJoin::new(r, s)
            .algorithm(Algorithm::SortMerge)
            .hosts(hosts)
            .rotate(RotateSide::R)
            .compute(compute)
            .trace(trace.is_some())
            .run()
            .expect("plan should run");
        rows.push(vec![
            format!("{volume_gb:.1}"),
            hosts.to_string(),
            secs(report.setup_seconds()),
            secs(report.join_seconds()),
            secs(report.sync_seconds()),
            format!("{:.2}", report.link_throughput() / 1e9),
        ]);
        traced = Some(report);
    }
    if let (Some(path), Some(report)) = (&trace, &traced) {
        export_trace(path, report);
    }
    print_table(
        &[
            "paper-scale GB",
            "nodes",
            "setup [s]",
            "join [s]",
            "sync [s]",
            "link GB/s",
        ],
        &rows,
    );

    let sync_6: f64 = rows[5][4].parse().unwrap();
    let link_6: f64 = rows[5][5].parse().unwrap();
    println!(
        "\nshape check: sync is nonzero at 6 nodes ({sync_6:.3}s) and the link runs at \
         {link_6:.2} GB/s — near the 1.25 GB/s ceiling, as in §V-F"
    );
    write_csv(
        "fig11_smj_scaleup",
        &[
            "paper_scale_gb",
            "nodes",
            "setup_s",
            "join_s",
            "sync_s",
            "link_gbps",
        ],
        &rows,
    );
}
