//! Ablation — shared rotation (Data Cyclotron) vs sequential revolutions.
//!
//! `k` joins against the same hot relation can run as `k` separate
//! cyclo-join revolutions or share a single revolution (§I's "queries
//! pick necessary pieces of data as they flow by"). The batch trades
//! per-revolution fragment preparation amortization for a `k×` cut in
//! network volume — this sweep shows where each wins.
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin ablate_shared_rotation
//! ```

use cyclo_bench::{
    export_trace, print_table, scale_from_env, secs, trace_path_from_args, write_csv,
};
use cyclo_join::concurrent::ConcurrentJoins;
use cyclo_join::{CycloJoin, JoinPredicate, RotateSide};
use relation::GenSpec;

fn main() {
    let scale = scale_from_env(0.002);
    let hot_tuples = ((140_000_000.0 * scale) as usize).max(1);
    let stat_tuples = hot_tuples / 2;
    println!(
        "Ablation — shared rotation vs sequential, hot = {hot_tuples} tuples, \
         each query's stationary = {stat_tuples} tuples, 6 hosts (scale {scale})\n"
    );

    let hot = GenSpec::uniform(hot_tuples, 700).generate();
    let trace = trace_path_from_args();
    let mut traced = None;
    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8] {
        let stationaries: Vec<_> = (0..k)
            .map(|i| GenSpec::uniform(stat_tuples, 710 + i as u64).generate())
            .collect();

        let batch = {
            let mut b = ConcurrentJoins::new(hot.clone()).hosts(6);
            for s in &stationaries {
                b = b.query(s.clone(), JoinPredicate::Equi);
            }
            b.run().expect("batch should run")
        };

        let (seq_seconds, seq_bytes) = stationaries
            .iter()
            .map(|s| {
                let r = CycloJoin::new(hot.clone(), s.clone())
                    .hosts(6)
                    .rotate(RotateSide::R)
                    .trace(trace.is_some())
                    .run()
                    .expect("plan should run");
                let totals = (r.total_seconds(), r.ring.total_bytes_forwarded());
                traced = Some(r);
                totals
            })
            .fold((0.0, 0u64), |(ts, tb), (s, b)| (ts + s, tb + b));

        rows.push(vec![
            k.to_string(),
            secs(batch.total_seconds()),
            secs(seq_seconds),
            format!("{:.1}", batch.bytes_forwarded() as f64 / 1e6),
            format!("{:.1}", seq_bytes as f64 / 1e6),
            format!(
                "{:.2}",
                seq_bytes as f64 / batch.bytes_forwarded().max(1) as f64
            ),
        ]);
    }
    if let (Some(path), Some(report)) = (&trace, &traced) {
        export_trace(path, report);
    }
    print_table(
        &[
            "queries",
            "batch [s]",
            "sequential [s]",
            "batch MB",
            "sequential MB",
            "network saving",
        ],
        &rows,
    );
    println!("\nshape: network volume saved ∝ k (one revolution instead of k); compute");
    println!("totals are similar (every query still joins all of R), so the batch wins");
    println!("whenever the ring — not the CPU — is the bottleneck.");
    write_csv(
        "ablate_shared_rotation",
        &[
            "queries",
            "batch_s",
            "sequential_s",
            "batch_mb",
            "sequential_mb",
            "network_saving",
        ],
        &rows,
    );
}
