//! Exhibit — wide loopback rings on the reactor backend.
//!
//! The blocking TCP driver dedicates roughly four OS threads to every
//! host (a reader and writer per mesh connection, a join worker, a
//! timer), so ring width buys threads before it buys bandwidth — the
//! resource-dedication anti-pattern the shared-nothing multicore paper
//! warns against. The reactor driver owns every socket from one event
//! loop and runs join work on a worker pool sized to the machine's
//! cores, so its thread count is bounded *independently of ring width*.
//!
//! This exhibit runs a full classic revolution at increasing widths on
//! the reactor (up to 64 hosts, plus a 256-host smoke row), with the
//! blocking TCP driver alongside at the small widths it can reach, and
//! records the peak process thread count (`Threads:` from
//! `/proc/self/status`, sampled from inside the join visits where it
//! peaks) next to the revolution throughput. The `threads` column is the
//! whole point: it grows with width on the blocking driver and stays
//! flat on the reactor.
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin wide_ring_reactor
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use cyclo_bench::{print_table, secs, write_csv};
use data_roundabout::{HostId, ReactorRingDriver, RingConfig, TcpRingDriver};

/// The process's current thread count, from `/proc/self/status`; 0 when
/// the proc filesystem is unavailable (non-Linux).
fn current_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

fn payloads(hosts: usize, per_host: usize, bytes: usize) -> Vec<Vec<Vec<u8>>> {
    (0..hosts)
        .map(|_| (0..per_host).map(|_| vec![0u8; bytes]).collect())
        .collect()
}

/// One classic revolution on `backend`, returning the exhibit row.
fn run_width(backend: &str, hosts: usize, per_host: usize, bytes: usize) -> Vec<String> {
    let config = RingConfig::paper(hosts);
    let peak = AtomicUsize::new(current_threads());
    let visits = AtomicUsize::new(0);
    // Sample the thread count sparsely from inside the visits, where
    // every driver thread is alive; the baseline read above catches the
    // quiescent count.
    let visit = |_h: HostId, _p: &Vec<u8>| {
        if visits.fetch_add(1, Ordering::Relaxed).is_multiple_of(16) {
            peak.fetch_max(current_threads(), Ordering::Relaxed);
        }
    };
    let started = Instant::now();
    let outcome = match backend {
        "reactor" => ReactorRingDriver::new(&config).run(payloads(hosts, per_host, bytes), visit),
        _ => TcpRingDriver::new(&config).run(payloads(hosts, per_host, bytes), visit),
    };
    let wall = started.elapsed().as_secs_f64();
    let (completed, fragments) = match &outcome {
        Ok((metrics, _)) => (
            metrics.fragments_completed == hosts * per_host,
            metrics.fragments_completed,
        ),
        Err(e) => {
            eprintln!("{backend} @ {hosts} hosts failed: {e}");
            (false, 0)
        }
    };
    vec![
        backend.to_string(),
        hosts.to_string(),
        fragments.to_string(),
        format!("{bytes}"),
        secs(wall),
        format!("{:.1}", fragments as f64 / wall.max(1e-9)),
        peak.load(Ordering::Relaxed).to_string(),
        if completed { "yes".into() } else { "NO".into() },
    ]
}

fn main() {
    println!(
        "Exhibit — wide loopback rings: one event loop vs four blocking threads per host \
         (baseline process threads: {})\n",
        current_threads()
    );

    let mut rows = Vec::new();
    // Head-to-head at the widths the blocking driver reaches comfortably.
    for hosts in [4usize, 8, 16] {
        rows.push(run_width("tcp", hosts, 2, 1024));
        rows.push(run_width("reactor", hosts, 2, 1024));
    }
    // Widths only the reactor is expected to take in stride: the blocking
    // driver would need ~4 threads per host here.
    for hosts in [32usize, 64] {
        rows.push(run_width("reactor", hosts, 2, 1024));
    }
    // 256-host smoke: one tiny fragment per host, neighbor-only mesh.
    rows.push(run_width("reactor", 256, 1, 64));

    let header = [
        "backend",
        "hosts",
        "fragments",
        "bytes/frag",
        "wall [s]",
        "rev/s",
        "peak threads",
        "completed",
    ];
    print_table(&header, &rows);

    let widest_reactor = rows
        .iter()
        .filter(|r| r[0] == "reactor" && r[1] == "64")
        .map(|r| r[6].clone())
        .next()
        .unwrap_or_default();
    println!(
        "\nshape: the reactor's peak thread count ({widest_reactor} at 64 hosts) is the \
         event loop plus a core-bounded worker pool — it does not grow with ring width, \
         while the blocking driver adds roughly four threads per host."
    );

    write_csv(
        "wide_ring_reactor",
        &[
            "backend",
            "hosts",
            "fragments_completed",
            "bytes_per_fragment",
            "wall_s",
            "revolutions_per_s",
            "peak_threads",
            "completed",
        ],
        &rows,
    );

    assert!(
        rows.iter().all(|r| r[7] == "yes"),
        "every width must complete its revolution"
    );
}
