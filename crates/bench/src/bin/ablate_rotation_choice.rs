//! Ablation — which relation should rotate? (§IV-B)
//!
//! "Depending on the shape of the input data, [keeping the join entity
//! busy] may be easier to achieve if the smaller of the two input
//! relations is chosen as the one that is kept rotating." With a 4:1 size
//! asymmetry, rotating the small side moves 4× less data per revolution.
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin ablate_rotation_choice
//! ```

use cyclo_bench::{
    compute_mode_from_env, export_trace, print_table, scale_from_env, secs, trace_path_from_args,
    write_csv,
};
use cyclo_join::{Algorithm, CycloJoin, RotateSide};
use relation::GenSpec;

fn main() {
    let scale = scale_from_env(0.005);
    let compute = compute_mode_from_env();
    let big = ((560_000_000.0 * scale) as usize).max(4);
    let small = big / 4;
    println!(
        "Ablation — rotation choice with |R| = {big} (big), |S| = {small} (small), \
         sort-merge on 6 hosts (scale {scale})\n"
    );

    let trace = trace_path_from_args();
    let mut traced = None;
    let mut rows = Vec::new();
    for (label, rotate) in [
        ("rotate big (R)", RotateSide::R),
        ("rotate small (S)", RotateSide::S),
        ("auto", RotateSide::Auto),
    ] {
        let r = GenSpec::uniform(big, 310).generate();
        let s = GenSpec::uniform(small, 311).generate();
        let report = CycloJoin::new(r, s)
            .algorithm(Algorithm::SortMerge)
            .hosts(6)
            .rotate(rotate)
            .compute(compute)
            .trace(trace.is_some())
            .run()
            .expect("plan should run");
        rows.push(vec![
            label.to_string(),
            if report.swapped {
                "S".into()
            } else {
                "R".into()
            },
            secs(report.setup_seconds()),
            secs(report.join_seconds()),
            secs(report.sync_seconds()),
            secs(report.total_seconds()),
            report.match_count().to_string(),
        ]);
        traced = Some(report);
    }
    if let (Some(path), Some(report)) = (&trace, &traced) {
        export_trace(path, report);
    }
    print_table(
        &[
            "policy",
            "rotating",
            "setup [s]",
            "join [s]",
            "sync [s]",
            "total [s]",
            "matches",
        ],
        &rows,
    );

    assert_eq!(
        rows[0][6], rows[1][6],
        "both rotations must produce the same result"
    );
    let big_total: f64 = rows[0][5].parse().unwrap();
    let small_total: f64 = rows[1][5].parse().unwrap();
    println!(
        "\nshape: rotating the smaller side is {:.2}× faster end-to-end, and `auto` picks it",
        big_total / small_total.max(1e-9)
    );
    write_csv(
        "ablate_rotation_choice",
        &[
            "policy", "rotating", "setup_s", "join_s", "sync_s", "total_s", "matches",
        ],
        &rows,
    );
}
