//! Figure 3 — CPU overhead of high-speed communication, by transport.
//!
//! "Only RDMA is able to significantly reduce the local communication
//! overhead induced at high-speed data transfers." The stacked bars show
//! where host CPU cycles go when moving 1 GB of payload in 1 MB transfer
//! units: kernel TCP (everything on the CPU), TOE (network stack on the
//! NIC), and RDMA.
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin fig3_cpu_breakdown
//! ```

use cyclo_bench::{print_table, write_csv};
use simnet::cpu::{CostCategory, CpuSpec};
use simnet::transport::TransportModel;

fn main() {
    let spec = CpuSpec::paper_xeon();
    let payload: u64 = 1 << 30; // 1 GB
    let chunk: u64 = 1 << 20; // 1 MB transfer units
    let messages = payload / chunk;

    let transports = [
        ("Everything on CPU", TransportModel::kernel_tcp()),
        ("Network stack on NIC", TransportModel::toe()),
        ("RDMA", TransportModel::rdma()),
    ];
    let categories = [
        CostCategory::DataCopy,
        CostCategory::ContextSwitch,
        CostCategory::NetworkStack,
        CostCategory::Driver,
    ];

    // Normalize to the kernel-TCP total, as the figure's y-axis does.
    let baseline = TransportModel::kernel_tcp()
        .comm_cpu(spec, payload, messages)
        .total_busy()
        .as_secs_f64();

    println!("Figure 3 — I/O overhead by transport (1 GB payload in 1 MB units)");
    println!("values are % of the kernel-TCP total CPU cost\n");

    let mut rows = Vec::new();
    for (label, transport) in &transports {
        let account = transport.comm_cpu(spec, payload, messages);
        let mut row = vec![label.to_string()];
        for cat in categories {
            let pct = 100.0 * account.busy(cat).as_secs_f64() / baseline;
            row.push(format!("{pct:.1}"));
        }
        let total = 100.0 * account.total_busy().as_secs_f64() / baseline;
        row.push(format!("{total:.1}"));
        rows.push(row);
    }
    print_table(
        &[
            "transport",
            "data copy %",
            "ctx switch %",
            "net stack %",
            "driver %",
            "total %",
        ],
        &rows,
    );

    let rdma_ms = TransportModel::rdma()
        .comm_cpu(spec, payload, messages)
        .total_busy()
        .as_secs_f64()
        * 1e3;
    println!(
        "\nabsolute: kernel TCP burns {baseline:.2} s of CPU for this gigabyte; \
         RDMA burns {rdma_ms:.2} ms (work-request posting only)"
    );
    println!("paper shape: copying ≈ 50 % of TCP cost; TOE only removes the stack;");
    println!("RDMA reduces the total by orders of magnitude.");
    write_csv(
        "fig3_cpu_breakdown",
        &[
            "transport",
            "data_copy_pct",
            "ctx_switch_pct",
            "net_stack_pct",
            "driver_pct",
            "total_pct",
        ],
        &rows,
    );
}
