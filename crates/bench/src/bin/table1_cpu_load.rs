//! Table I — CPU load during the hash join phase, TCP vs RDMA.
//!
//! "100 % refers to all four cores being completely busy." TCP's load
//! plateaus around 86 % at four join threads — communication and join
//! threads fight for cores, pollute caches and context-switch, so adding
//! CPUs would not help — while RDMA's load matches the number of join
//! threads exactly and reaches full utilization at four.
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin table1_cpu_load
//! ```

use cyclo_bench::{
    compute_mode_from_env, export_trace, print_table, scale_from_env, trace_path_from_args,
    write_csv,
};
use cyclo_join::{Algorithm, CycloJoin, RingConfig, RotateSide};
use relation::GenSpec;

const PAPER_TUPLES: usize = 160_000_000;

/// The paper's reported loads, for side-by-side comparison.
const PAPER_TCP: [u32; 4] = [31, 59, 84, 86];
const PAPER_RDMA: [u32; 4] = [25, 50, 76, 100];

fn main() {
    let scale = scale_from_env(0.005);
    let compute = compute_mode_from_env();
    let tuples = ((PAPER_TUPLES as f64 * scale) as usize).max(1);
    println!("Table I — CPU load during the join phase (6 hosts, {tuples} tuples/side)\n");

    let trace = trace_path_from_args();
    let mut traced = None;
    let mut rows = Vec::new();
    for threads in 1..=4 {
        let mut loads = Vec::new();
        for config in [
            RingConfig::paper_tcp(6).with_join_threads(threads),
            RingConfig::paper(6).with_join_threads(threads),
        ] {
            let r = GenSpec::uniform(tuples, 130).generate();
            let s = GenSpec::uniform(tuples, 131).generate();
            let report = CycloJoin::new(r, s)
                .algorithm(Algorithm::partitioned_hash())
                .ring(config)
                .rotate(RotateSide::R)
                .compute(compute)
                .trace(trace.is_some())
                .run()
                .expect("plan should run");
            loads.push(report.join_phase_cpu_load() * 100.0);
            traced = Some(report);
        }
        rows.push(vec![
            format!("{threads} thread{}", if threads > 1 { "s" } else { "" }),
            format!("{:.0} %", loads[0]),
            format!("({} %)", PAPER_TCP[threads - 1]),
            format!("{:.0} %", loads[1]),
            format!("({} %)", PAPER_RDMA[threads - 1]),
        ]);
    }
    if let (Some(path), Some(report)) = (&trace, &traced) {
        export_trace(path, report);
    }
    print_table(
        &["", "cpu load TCP", "paper", "cpu load RDMA", "paper"],
        &rows,
    );

    println!("\nshape check: RDMA load ∝ join threads, reaching ~100 % at 4;");
    println!("TCP carries communication overhead at low thread counts and");
    println!("plateaus below full utilization at 4 (cache pollution + switches).");
    write_csv(
        "table1_cpu_load",
        &[
            "threads",
            "tcp_load_pct",
            "paper_tcp_pct",
            "rdma_load_pct",
            "paper_rdma_pct",
        ],
        &rows,
    );
}
