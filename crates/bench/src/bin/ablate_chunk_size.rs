//! Ablation — rotation-unit (fragment) size vs the Figure 5 curve.
//!
//! "As RDMA works best on large buffers, we always transfer a whole ring
//! buffer element and not a single tuple" (§III-D). Cutting each host's
//! share of R into more, smaller fragments pays the per-work-request
//! overhead more often and slides down the chunk-size/goodput curve;
//! too few fragments reduce pipelining granularity. The sweep exposes
//! both ends.
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin ablate_chunk_size
//! ```

use cyclo_bench::{
    compute_mode_from_env, export_trace, print_table, scale_from_env, secs, trace_path_from_args,
    write_csv,
};
use cyclo_join::{Algorithm, CycloJoin, RotateSide};
use relation::paper_uniform_pair;

fn main() {
    let scale = scale_from_env(0.002);
    let compute = compute_mode_from_env();
    let (r, s) = paper_uniform_pair(scale, 29);
    let per_host = r.len() / 6;
    println!(
        "Ablation — fragments per host (rotation-unit size), sort-merge on 6 hosts, \
         {} tuples/host rotating (scale {scale})\n",
        per_host
    );

    let trace = trace_path_from_args();
    let mut traced = None;
    let mut rows = Vec::new();
    for fragments in [1usize, 2, 4, 16, 64, 256] {
        let frag_bytes = (per_host / fragments).max(1) * 12;
        let report = CycloJoin::new(r.clone(), s.clone())
            .algorithm(Algorithm::SortMerge)
            .hosts(6)
            .fragments_per_host(fragments)
            .rotate(RotateSide::R)
            .compute(compute)
            .trace(trace.is_some())
            .run()
            .expect("plan should run");
        rows.push(vec![
            fragments.to_string(),
            size_label(frag_bytes as u64),
            secs(report.join_seconds()),
            secs(report.sync_seconds()),
            secs(report.join_window_seconds()),
        ]);
        traced = Some(report);
    }
    if let (Some(path), Some(report)) = (&trace, &traced) {
        export_trace(path, report);
    }
    print_table(
        &[
            "fragments/host",
            "unit size",
            "join [s]",
            "sync [s]",
            "window [s]",
        ],
        &rows,
    );
    println!("\nshape: very small units pay the per-message overhead (Figure 5's left");
    println!("side) and inflate sync; moderate unit counts overlap best.");
    write_csv(
        "ablate_chunk_size",
        &[
            "fragments_per_host",
            "unit_bytes",
            "join_s",
            "sync_s",
            "window_s",
        ],
        &rows,
    );
}

fn size_label(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1} MB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1} kB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}
