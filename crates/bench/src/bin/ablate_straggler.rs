//! Ablation — straggler absorption through ring buffering (§V-D).
//!
//! "A host that is stuck in a chunk of data with a high number of
//! duplicates will not immediately slow down the remainder of the ring.
//! A follower in the Data Roundabout will only have to start waiting once
//! it has fully consumed all data in its ring buffer." This ablation makes
//! one host slower than the rest and sweeps the buffer depth: deeper
//! pools keep the fast hosts fed longer, converting the straggler's delay
//! from a ring-wide stall into local slack.
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin ablate_straggler
//! ```

use cyclo_bench::{
    compute_mode_from_env, export_trace, print_table, scale_from_env, secs, trace_path_from_args,
    write_csv,
};
use cyclo_join::{Algorithm, CycloJoin, RingConfig, RotateSide};
use relation::paper_uniform_pair;

fn main() {
    let scale = scale_from_env(0.005);
    let compute = compute_mode_from_env();
    let hosts = 6;
    let (r, s) = paper_uniform_pair(scale, 37);
    println!(
        "Ablation — one straggler at half speed among {hosts} hosts, hash join, \
         {} + {} tuples (scale {scale})\n",
        r.len(),
        s.len()
    );

    // Host 2 runs at a fraction of nominal speed.
    let speeds = |slow: f64| {
        let mut v = vec![1.0; hosts];
        v[2] = slow;
        v
    };

    let trace = trace_path_from_args();
    let mut traced = None;
    let mut rows = Vec::new();
    for (label, slow, buffers) in [
        ("homogeneous", 1.0, 2usize),
        ("straggler, 1 buffer", 0.5, 1),
        ("straggler, 2 buffers", 0.5, 2),
        ("straggler, 4 buffers", 0.5, 4),
        ("straggler, 8 buffers", 0.5, 8),
    ] {
        let report = CycloJoin::new(r.clone(), s.clone())
            .algorithm(Algorithm::partitioned_hash())
            .ring(RingConfig::paper(hosts).with_buffers(buffers))
            .rotate(RotateSide::R)
            .compute(compute)
            .host_speeds(speeds(slow))
            .trace(trace.is_some())
            .run()
            .expect("plan should run");
        // How long do the FAST hosts sit idle because of the straggler?
        let fast_sync = report
            .ring
            .hosts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, h)| h.sync.as_secs_f64())
            .fold(0.0, f64::max);
        rows.push(vec![
            label.to_string(),
            buffers.to_string(),
            secs(report.join_window_seconds()),
            secs(fast_sync),
            secs(report.total_seconds()),
        ]);
        traced = Some(report);
    }
    if let (Some(path), Some(report)) = (&trace, &traced) {
        export_trace(path, report);
    }
    print_table(
        &[
            "configuration",
            "buffers",
            "join window [s]",
            "fast-host sync [s]",
            "total [s]",
        ],
        &rows,
    );

    let stall_1: f64 = rows[1][3].parse().unwrap();
    let stall_4: f64 = rows[3][3].parse().unwrap();
    println!(
        "\nshape: with 1 buffer the fast hosts stall behind the straggler \
         ({stall_1:.3}s of waiting); deeper pools absorb the speed difference \
         ({stall_4:.3}s at 4 buffers) — §V-D's ring-buffer balancing in action."
    );
    write_csv(
        "ablate_straggler",
        &[
            "configuration",
            "buffers",
            "join_window_s",
            "fast_sync_s",
            "total_s",
        ],
        &rows,
    );
}
