//! Ablation — ring-buffer depth and communication/computation overlap.
//!
//! "Overlapping communication and computation is a key part of the Data
//! Roundabout architecture" (§III-D). With a single buffer element per
//! host the join entity and the transport strictly alternate; two or more
//! elements let the receiver fill one element while the join entity works
//! on another. This ablation sweeps the pool depth on a network-bound
//! sort-merge workload and reports the sync time that overlap removes.
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin ablate_buffer_depth
//! ```

use cyclo_bench::{
    compute_mode_from_env, export_trace, print_table, scale_from_env, secs, trace_path_from_args,
    write_csv,
};
use cyclo_join::{Algorithm, CycloJoin, RingConfig, RotateSide};
use relation::paper_uniform_pair;

fn main() {
    let scale = scale_from_env(0.005);
    let compute = compute_mode_from_env();
    let (r, s) = paper_uniform_pair(scale, 23);
    println!(
        "Ablation — buffer-pool depth, sort-merge join on 6 hosts, {} + {} tuples (scale {scale})\n",
        r.len(),
        s.len()
    );

    let trace = trace_path_from_args();
    let mut traced = None;
    let mut rows = Vec::new();
    for buffers in [1usize, 2, 3, 4, 8] {
        let report = CycloJoin::new(r.clone(), s.clone())
            .algorithm(Algorithm::SortMerge)
            .ring(RingConfig::paper(6).with_buffers(buffers))
            .rotate(RotateSide::R)
            .compute(compute)
            .trace(trace.is_some())
            .run()
            .expect("plan should run");
        rows.push(vec![
            buffers.to_string(),
            secs(report.join_seconds()),
            secs(report.sync_seconds()),
            secs(report.join_window_seconds()),
        ]);
        traced = Some(report);
    }
    if let (Some(path), Some(report)) = (&trace, &traced) {
        export_trace(path, report);
    }
    print_table(
        &["buffers/host", "join [s]", "sync [s]", "join window [s]"],
        &rows,
    );

    let window_1: f64 = rows[0][3].parse().unwrap();
    let window_2: f64 = rows[1][3].parse().unwrap();
    println!(
        "\nshape: going from 1 to 2 buffers shortens the join window {:.2}× — \
         that delta is exactly the overlap the paper's design buys; \
         beyond the bandwidth-delay product, extra depth adds little.",
        window_1 / window_2.max(1e-9)
    );
    write_csv(
        "ablate_buffer_depth",
        &["buffers_per_host", "join_s", "sync_s", "window_s"],
        &rows,
    );
}
