//! Extension — Data Cyclotron query latency vs offered load.
//!
//! The operational mode the paper's project is named for (§I, §VII): the
//! hot set spins continuously and queries board the rotation as they
//! arrive. An unloaded ring answers a query in about one revolution; as
//! more concurrent queries ride the same rotation, each buffer visit
//! carries more join work, the revolution stretches, and latency climbs —
//! the load/latency curve of a shared-scan system.
//!
//! ```text
//! cargo run --release -p cyclo-bench --bin ext_cyclotron
//! ```

use cyclo_bench::{print_table, scale_from_env, secs, write_csv};
use cyclo_join::cyclotron::{DataCyclotron, QueryArrival};
use data_roundabout::HostId;
use relation::GenSpec;
use simnet::time::SimDuration;

fn main() {
    let scale = scale_from_env(0.002);
    let hot_tuples = ((140_000_000.0 * scale) as usize).max(1);
    let query_tuples = hot_tuples / 4;
    let hosts = 6;
    println!(
        "Extension — cyclotron latency vs load, hot = {hot_tuples} tuples on {hosts} hosts, \
         queries of {query_tuples} tuples (scale {scale})\n"
    );

    let hot = GenSpec::uniform(hot_tuples, 990).generate();
    let mut rows = Vec::new();
    for concurrent in [1usize, 2, 4, 8, 16] {
        let mut cyclotron = DataCyclotron::new(hot.clone()).hosts(hosts);
        for i in 0..concurrent {
            let s = GenSpec::uniform(query_tuples, 991 + i as u64).generate();
            // All queries arrive within the first few milliseconds, spread
            // over the hosts — maximum concurrency on one rotation.
            cyclotron = cyclotron.submit(QueryArrival::equi(
                SimDuration::from_micros(200 * i as u64),
                HostId(i % hosts),
                s,
            ));
        }
        let report = cyclotron.run().expect("cyclotron should run");
        rows.push(vec![
            concurrent.to_string(),
            secs(report.mean_latency()),
            secs(report.max_latency()),
            format!("{:.2}", report.ring.wall_clock.as_secs_f64()),
            report.fragment_count.to_string(),
        ]);
    }
    print_table(
        &[
            "concurrent queries",
            "mean latency [s]",
            "max latency [s]",
            "rotation [s]",
            "fragments",
        ],
        &rows,
    );

    let unloaded: f64 = rows[0][1].parse().unwrap();
    let loaded: f64 = rows[4][1].parse().unwrap();
    println!(
        "\nshape: latency is ≈1 revolution when unloaded ({unloaded:.3}s) and grows \
         with load ({loaded:.3}s at 16 queries) as every buffer visit carries more \
         join work — the shared-scan trade-off of the Data Cyclotron."
    );
    write_csv(
        "ext_cyclotron",
        &[
            "concurrent_queries",
            "mean_latency_s",
            "max_latency_s",
            "rotation_s",
            "fragments",
        ],
        &rows,
    );
}
