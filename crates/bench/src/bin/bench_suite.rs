//! The measured perf baseline: `cargo xtask bench` runs this binary.
//!
//! ```text
//! bench_suite [--smoke] [--out <path>]
//! ```
//!
//! Runs the kernel / codec / e2e suites plus the hot-path before/after
//! deltas (see `cyclo_bench::suite`), prints a summary table, and writes
//! the schema-checked JSON report to `--out` (default: stdout only).
//! `--smoke` shrinks sizes and budgets to CI scale; the JSON shape is
//! identical, so the same validator gates both.

use std::path::PathBuf;

use cyclo_bench::print_table;
use cyclo_bench::suite::run_suite;

fn main() {
    let mut smoke = false;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
                out = Some(PathBuf::from(path));
            }
            other => {
                eprintln!("unknown flag {other:?}; usage: bench_suite [--smoke] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let mode = if smoke { "smoke" } else { "full" };
    println!("== cyclo-join bench suite ({mode}) ==\n");
    let report = run_suite(smoke);

    let rows: Vec<Vec<String>> = report
        .entries
        .iter()
        .map(|e| {
            vec![
                e.name.clone(),
                e.group.to_string(),
                e.iters.to_string(),
                format!("{:.0}", e.ns_per_iter),
                format!("{:.3e}", e.throughput),
                e.throughput_unit.to_string(),
            ]
        })
        .collect();
    print_table(
        &["name", "group", "iters", "ns/iter", "throughput", "unit"],
        &rows,
    );

    println!();
    let rows: Vec<Vec<String>> = report
        .deltas
        .iter()
        .map(|d| {
            vec![
                d.name.clone(),
                format!("{:.0}", d.before_ns),
                format!("{:.0}", d.after_ns),
                format!("{:.2}x", d.speedup),
            ]
        })
        .collect();
    print_table(&["hot path", "before ns", "after ns", "speedup"], &rows);

    if let Some(path) = out {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                eprintln!("cannot create {}: {e}", dir.display());
                std::process::exit(1);
            });
        }
        std::fs::write(&path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("\n[json] {}", path.display());
    }
}
