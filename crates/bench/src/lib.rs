//! Shared utilities for the cyclo-join benchmark harness.
//!
//! Every table and figure of the paper's evaluation has a dedicated binary
//! under `src/bin/` (see DESIGN.md for the exhibit → binary index). The
//! binaries print the exhibit's rows to stdout and write a CSV next to the
//! crate under `results/`.
//!
//! Environment knobs shared by all binaries:
//!
//! * `CYCLO_SCALE` — volume scale factor relative to the paper's workloads
//!   (each binary has a sensible default; `1.0` regenerates full-size
//!   inputs if you have the memory and patience);
//! * `CYCLO_MEASURED=1` — price compute by wall-clock-measuring the real
//!   join execution instead of the deterministic calibrated cost model.

use std::fs;
use std::path::{Path, PathBuf};

use cyclo_join::{ComputeMode, CycloJoinReport};

pub mod report;
pub mod suite;
pub mod timing;

/// Reads the volume scale factor, with a per-binary default.
pub fn scale_from_env(default: f64) -> f64 {
    match std::env::var("CYCLO_SCALE") {
        Ok(v) => v
            .parse::<f64>()
            .ok()
            .filter(|s| s.is_finite() && *s > 0.0)
            .unwrap_or_else(|| panic!("CYCLO_SCALE must be a positive number, got {v:?}")),
        Err(_) => default,
    }
}

/// Reads the compute mode: deterministic model by default, measured if
/// `CYCLO_MEASURED=1`.
pub fn compute_mode_from_env() -> ComputeMode {
    if std::env::var("CYCLO_MEASURED")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        ComputeMode::Measured
    } else {
        ComputeMode::modeled()
    }
}

/// Parses `--trace <PATH>` from this binary's command line.
///
/// Exhibit binaries accept `--trace <path>`: span tracing is enabled on the
/// exhibit's plans and the Chrome trace-event JSON profile of a
/// representative run is written to the path (open it in `chrome://tracing`
/// or <https://ui.perfetto.dev>). Returns `None` when the flag is absent.
pub fn trace_path_from_args() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            let path = args
                .next()
                .unwrap_or_else(|| panic!("--trace requires a path"));
            return Some(PathBuf::from(path));
        }
    }
    None
}

/// Writes `report`'s Chrome trace-event JSON profile to `path`.
pub fn export_trace(path: &Path, report: &CycloJoinReport) {
    fs::write(path, report.chrome_trace()).expect("could not write trace file");
    println!("[trace] {}", path.display());
}

/// Where result CSVs go: `crates/bench/results/`.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results");
    fs::create_dir_all(&dir).expect("could not create results directory");
    dir
}

/// Writes one exhibit's rows as CSV and reports the path on stdout.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let path = results_dir().join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    fs::write(&path, out).expect("could not write CSV");
    println!("\n[csv] {}", path.display());
}

/// Renders a simple aligned table to stdout.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        s
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    println!("{}", line(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", line(row));
    }
}

/// Format seconds with millisecond resolution.
pub fn secs(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_applies_without_env() {
        std::env::remove_var("CYCLO_SCALE");
        assert_eq!(scale_from_env(0.01), 0.01);
    }

    #[test]
    fn results_dir_exists() {
        assert!(results_dir().is_dir());
    }

    #[test]
    fn csv_is_written() {
        write_csv(
            "unit_test_exhibit",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        );
        let content = std::fs::read_to_string(results_dir().join("unit_test_exhibit.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(1.23456), "1.235");
    }
}
