//! A hand-rolled measurement loop — no external bench framework.
//!
//! The harness follows the classic two-phase shape: a warmup phase runs
//! the routine until the code and its data are hot (JIT-free Rust still
//! wants warm caches, resolved lazy statics and a trained branch
//! predictor), then a measurement phase runs it until both a minimum
//! iteration count and a minimum wall-time are met, so fast routines get
//! statistics and slow routines finish in bounded time.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Measured iterations (excluding warmup).
    pub iters: u64,
    /// Total wall time across the measured iterations.
    pub total: Duration,
}

impl Sample {
    /// Mean nanoseconds per iteration.
    pub fn ns_per_iter(&self) -> f64 {
        self.total.as_nanos() as f64 / self.iters.max(1) as f64
    }

    /// Items per second, given `items` processed per iteration.
    pub fn per_second(&self, items: f64) -> f64 {
        items * 1e9 / self.ns_per_iter().max(1e-9)
    }
}

/// Measurement budget: how long to warm up and how much to measure.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Wall time spent warming the routine before measuring.
    pub warmup: Duration,
    /// Measure at least this many iterations...
    pub min_iters: u64,
    /// ...and at least this much wall time, whichever takes longer.
    pub min_time: Duration,
}

impl Budget {
    /// The default budget for full runs.
    pub fn full() -> Self {
        Budget {
            warmup: Duration::from_millis(150),
            min_iters: 10,
            min_time: Duration::from_millis(400),
        }
    }

    /// A minimal budget for smoke runs: enough to exercise every code
    /// path and produce valid (if noisy) numbers, fast enough for CI.
    pub fn smoke() -> Self {
        Budget {
            warmup: Duration::from_millis(5),
            min_iters: 3,
            min_time: Duration::from_millis(20),
        }
    }
}

/// Measures `routine` under `budget`. The routine's result is passed
/// through [`black_box`] so the optimizer cannot delete the work.
pub fn bench<R>(budget: Budget, mut routine: impl FnMut() -> R) -> Sample {
    let warm_until = Instant::now() + budget.warmup;
    while Instant::now() < warm_until {
        black_box(routine());
    }
    let mut iters = 0u64;
    let started = Instant::now();
    loop {
        black_box(routine());
        iters += 1;
        let total = started.elapsed();
        if iters >= budget.min_iters && total >= budget.min_time {
            return Sample { iters, total };
        }
    }
}

/// Like [`bench`], but with a per-iteration `setup` whose cost is
/// excluded from the measurement — for routines that consume their input
/// (an owned hash-table build) or mutate it in place. Timing brackets
/// only the routine, so the setup's allocations and copies never pollute
/// the number.
pub fn bench_with_setup<T, R>(
    budget: Budget,
    mut setup: impl FnMut() -> T,
    mut routine: impl FnMut(T) -> R,
) -> Sample {
    let warm_until = Instant::now() + budget.warmup;
    while Instant::now() < warm_until {
        black_box(routine(setup()));
    }
    let mut iters = 0u64;
    let mut total = Duration::ZERO;
    loop {
        let input = setup();
        let started = Instant::now();
        black_box(routine(input));
        total += started.elapsed();
        iters += 1;
        if iters >= budget.min_iters && total >= budget.min_time {
            return Sample { iters, total };
        }
    }
}

/// Measures an A/B pair fairly: two rounds per side, in A-B-B-A order so
/// slow drift (frequency scaling, a noisy neighbour) hits both sides, and
/// the faster round wins per side. Sequential single measurements showed
/// up to 30% round-to-round drift on shared hardware; this keeps a
/// before/after delta honest.
pub fn bench_ab<RA, RB>(
    budget: Budget,
    mut a: impl FnMut() -> RA,
    mut b: impl FnMut() -> RB,
) -> (Sample, Sample) {
    let a1 = bench(budget, &mut a);
    let b1 = bench(budget, &mut b);
    let b2 = bench(budget, &mut b);
    let a2 = bench(budget, &mut a);
    (faster(a1, a2), faster(b1, b2))
}

/// [`bench_ab`] with a per-iteration setup excluded from timing on both
/// sides (see [`bench_with_setup`]).
pub fn bench_ab_with_setup<T, RA, RB>(
    budget: Budget,
    mut setup: impl FnMut() -> T,
    mut a: impl FnMut(T) -> RA,
    mut b: impl FnMut(T) -> RB,
) -> (Sample, Sample) {
    let a1 = bench_with_setup(budget, &mut setup, &mut a);
    let b1 = bench_with_setup(budget, &mut setup, &mut b);
    let b2 = bench_with_setup(budget, &mut setup, &mut b);
    let a2 = bench_with_setup(budget, &mut setup, &mut a);
    (faster(a1, a2), faster(b1, b2))
}

fn faster(x: Sample, y: Sample) -> Sample {
    if x.ns_per_iter() <= y.ns_per_iter() {
        x
    } else {
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_math() {
        let s = Sample {
            iters: 4,
            total: Duration::from_nanos(400),
        };
        assert_eq!(s.ns_per_iter(), 100.0);
        assert_eq!(s.per_second(50.0), 50.0 * 1e9 / 100.0);
    }

    #[test]
    fn bench_meets_the_budget() {
        let budget = Budget {
            warmup: Duration::ZERO,
            min_iters: 5,
            min_time: Duration::from_millis(1),
        };
        let mut calls = 0u64;
        let s = bench(budget, || calls += 1);
        assert!(s.iters >= 5);
        assert!(s.total >= Duration::from_millis(1));
        assert_eq!(calls, s.iters);
    }

    #[test]
    fn ab_runs_both_sides_and_keeps_the_faster_round() {
        let budget = Budget {
            warmup: Duration::ZERO,
            min_iters: 2,
            min_time: Duration::ZERO,
        };
        let (mut a_calls, mut b_calls) = (0u64, 0u64);
        let (a, b) = bench_ab(budget, || a_calls += 1, || b_calls += 1);
        // Two rounds of at least two iterations each ran per side...
        assert!(a_calls >= 4 && b_calls >= 4);
        // ...and the reported sample is one round, not the sum.
        assert!(a.iters < a_calls && b.iters < b_calls);
    }

    #[test]
    fn setup_cost_is_excluded() {
        let budget = Budget {
            warmup: Duration::ZERO,
            min_iters: 3,
            min_time: Duration::ZERO,
        };
        // A deliberately slow setup and an instant routine: the measured
        // per-iteration time must reflect the routine, not the setup.
        let s = bench_with_setup(
            budget,
            || std::thread::sleep(Duration::from_millis(2)),
            |_| 1u8,
        );
        assert!(
            s.ns_per_iter() < 1_000_000.0,
            "setup leaked into the measurement: {} ns/iter",
            s.ns_per_iter()
        );
    }
}
