//! The measured bench suite behind `cargo xtask bench`.
//!
//! Three entry groups (the repo's standing perf baseline) plus the
//! hot-path deltas:
//!
//! * **kernel** — the local join kernels at 2–3 scales: radix
//!   partitioning, chained-hash build and probe, sort and merge.
//! * **codec** — `relation::wire` encode/decode and the TCP envelope
//!   frame codec, in bytes/s.
//! * **e2e** — a fixed seeded cyclo-join plan run to completion on each
//!   backend (sim, threads, tcp, reactor), in revolutions/s (fragments
//!   completing a full ring revolution per wall-clock second).
//!
//! Each delta re-measures one *fixed* copy-amplification bug: the
//! "before" is a bench-local reimplementation of the removed code path,
//! run in the same process on the same input as the shipped "after"
//! path, so the pair differs only by the fix.

use data_roundabout::tcp_backend::{
    encode_envelope, encode_envelope_into, write_frames_vectored, KIND_ENVELOPE,
};
use data_roundabout::{Envelope, FragmentId, FrameDecoder, WirePayload};
use mem_joins::hash::{radix_bits_for, ChainedTable};
use mem_joins::{CacheParams, HashJoinState, JoinCollector, RadixPartitioned};
use mem_joins::{SortMergeState, SortedRun};
use relation::{GenSpec, Relation};
use simnet::topology::HostId;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use crate::report::{Delta, Report};
use crate::timing::{bench, bench_ab, bench_ab_with_setup, Budget};
use cyclo_join::CycloJoin;

/// Runs the whole suite. `smoke` shrinks sizes and budgets to CI scale.
pub fn run_suite(smoke: bool) -> Report {
    let budget = if smoke {
        Budget::smoke()
    } else {
        Budget::full()
    };
    let mut report = Report {
        smoke,
        ..Report::default()
    };
    kernel_group(&mut report, budget, smoke);
    codec_group(&mut report, budget, smoke);
    e2e_group(&mut report, smoke);
    delta_group(&mut report, budget, smoke);
    report
}

/// Human tag for a tuple count: `4k`, `64k`, `1m`.
fn size_tag(n: usize) -> String {
    if n >= 1 << 20 && n.is_multiple_of(1 << 20) {
        format!("{}m", n >> 20)
    } else {
        format!("{}k", n >> 10)
    }
}

fn kernel_scales(smoke: bool) -> Vec<usize> {
    if smoke {
        vec![4 << 10, 16 << 10]
    } else {
        vec![64 << 10, 256 << 10, 1 << 20]
    }
}

fn kernel_group(report: &mut Report, budget: Budget, smoke: bool) {
    let params = CacheParams::paper_xeon();
    for n in kernel_scales(smoke) {
        let tag = size_tag(n);
        let rel = GenSpec::uniform(n, 11).generate();
        let probe_rel = GenSpec::uniform(n, 13).generate();
        // Partition on enough bits to exercise the multi-pass scatter at
        // every scale (radix_bits_for returns 0 below L2 capacity).
        let bits = radix_bits_for(n, &params).max(4);

        let s = bench(budget, || RadixPartitioned::new(&rel, bits, &params));
        let tput = s.per_second(n as f64);
        report.push_entry(
            &format!("radix_partition_{tag}"),
            "kernel",
            s,
            tput,
            "tuples/s",
        );

        let s = bench(budget, || {
            HashJoinState::build_with_bits(&rel, bits, &params)
        });
        let tput = s.per_second(n as f64);
        report.push_entry(&format!("hash_build_{tag}"), "kernel", s, tput, "tuples/s");

        let state = HashJoinState::build_with_bits(&rel, bits, &params);
        let partitioned = state.partition_probe(&probe_rel, &params);
        let s = bench(budget, || {
            let mut collector = JoinCollector::aggregating();
            state.probe_partitioned(&partitioned, 1, &mut collector);
            collector.count()
        });
        let tput = s.per_second(n as f64);
        report.push_entry(&format!("hash_probe_{tag}"), "kernel", s, tput, "tuples/s");

        let s = bench(budget, || SortedRun::sort(&rel, 1));
        let tput = s.per_second(n as f64);
        report.push_entry(&format!("sort_run_{tag}"), "kernel", s, tput, "tuples/s");

        let merge_state = SortMergeState::build(&rel, 1);
        let probe_run = SortedRun::sort(&probe_rel, 1);
        let s = bench(budget, || {
            let mut collector = JoinCollector::aggregating();
            merge_state.merge(&probe_run, 0, 1, &mut collector);
            collector.count()
        });
        let tput = s.per_second(n as f64);
        report.push_entry(&format!("merge_join_{tag}"), "kernel", s, tput, "tuples/s");
    }
}

fn codec_group(report: &mut Report, budget: Budget, smoke: bool) {
    let n = if smoke { 16 << 10 } else { 256 << 10 };
    let tag = size_tag(n);
    let rel = GenSpec::uniform(n, 17).generate();
    let wire_bytes = relation::wire::encoded_len(n) as f64;

    let s = bench(budget, || relation::wire::encode(&rel));
    let tput = s.per_second(wire_bytes);
    report.push_entry(&format!("wire_encode_{tag}"), "codec", s, tput, "bytes/s");

    let encoded = relation::wire::encode(&rel);
    let s = bench(budget, || relation::wire::decode(&encoded));
    let tput = s.per_second(wire_bytes);
    report.push_entry(&format!("wire_decode_{tag}"), "codec", s, tput, "bytes/s");

    let env = Envelope::new(FragmentId(1), HostId(0), 4, rel);
    let frame_bytes = (5 + 48) as f64 + env.payload.payload_wire_len() as f64;
    let mut buf = Vec::new();
    let s = bench(budget, || {
        encode_envelope_into(7, &env, &mut buf).map(|()| buf.len())
    });
    let tput = s.per_second(frame_bytes);
    report.push_entry(&format!("frame_encode_{tag}"), "codec", s, tput, "bytes/s");

    let frame = encode_envelope(7, &env).unwrap_or_default();
    let s = bench(budget, || {
        let mut decoder = FrameDecoder::new();
        decoder.feed(&frame);
        decoder.next_frame::<Relation>()
    });
    let tput = s.per_second(frame_bytes);
    report.push_entry(&format!("frame_decode_{tag}"), "codec", s, tput, "bytes/s");
}

/// One fixed seeded plan, run to completion per backend. Revolutions/s
/// counts fragments finishing a full ring revolution per wall second —
/// the transport-level number the paper's "join at wire speed" claim is
/// about.
fn e2e_group(report: &mut Report, smoke: bool) {
    let n = if smoke { 4 << 10 } else { 64 << 10 };
    let hosts = 4;
    let budget = Budget {
        warmup: std::time::Duration::ZERO,
        min_iters: if smoke { 1 } else { 3 },
        min_time: std::time::Duration::ZERO,
    };
    let r = GenSpec::uniform(n, 23).generate();
    let s_rel = GenSpec::uniform(n, 29).generate();
    let plan = CycloJoin::new(r, s_rel).hosts(hosts).fragments_per_host(2);
    let revolutions = (hosts * 2) as f64; // every fragment completes one

    for (backend, runner) in [
        (
            "sim",
            Box::new(|| plan.run().ok().map(|r| r.match_count())) as Box<dyn Fn() -> Option<u64>>,
        ),
        (
            "threads",
            Box::new(|| plan.run_threaded().ok().map(|r| r.match_count())),
        ),
        (
            "tcp",
            Box::new(|| plan.run_tcp().ok().map(|r| r.match_count())),
        ),
        (
            "reactor",
            Box::new(|| plan.run_reactor().ok().map(|r| r.match_count())),
        ),
    ] {
        let sample = bench(budget, &runner);
        let tput = sample.per_second(revolutions);
        report.push_entry(
            &format!("e2e_{backend}"),
            "e2e",
            sample,
            tput,
            "revolutions/s",
        );
    }
}

/// Before/after measurements of the fixed hot paths: three removed
/// copy-amplification bugs plus the writer's per-frame write syscalls.
/// Every "before" reimplements the removed code path locally; a one-time
/// equivalence assertion keeps the reimplementation honest.
fn delta_group(report: &mut Report, budget: Budget, smoke: bool) {
    // Full mode measures at 1m tuples (12 MiB of columns) so the removed
    // copies hit DRAM; at cache-resident sizes the "before" clone warms
    // lines for the pass that follows and masks its own cost.
    let n = if smoke { 16 << 10 } else { 1 << 20 };
    let params = CacheParams::paper_xeon();
    let rel = GenSpec::uniform(n, 31).generate();
    let bits = radix_bits_for(n, &params).max(4);

    // --- radix.rs: whole-relation clone seeding the first scatter pass.
    let (before, after) = bench_ab(
        budget,
        || {
            let seed = rel.clone(); // the removed pre-pass copy
            RadixPartitioned::new(&seed, bits, &params)
        },
        || RadixPartitioned::new(&rel, bits, &params),
    );
    report.deltas.push(Delta::from_samples(
        "radix_partition_input_clone",
        before,
        after,
    ));

    // --- table.rs: keys().to_vec() + payloads().to_vec() on every build.
    // `build_with_shift` still performs the old double copy for borrowed
    // callers; `build_owned` is the fix the join's build path now takes.
    // The per-iteration partition clone is setup, excluded from timing on
    // both sides.
    let partition = RadixPartitioned::new(&rel, bits, &params)
        .into_partitions()
        .into_iter()
        .max_by_key(Relation::len)
        .unwrap_or_default();
    let (before, after) = bench_ab_with_setup(
        budget,
        || partition.clone(),
        |p| ChainedTable::build_with_shift(&p, bits),
        |p| ChainedTable::build_owned(p, bits),
    );
    report.deltas.push(Delta::from_samples(
        "table_build_column_copy",
        before,
        after,
    ));

    // --- tcp_backend.rs: fresh undersized per-envelope Vec + body staging.
    let env = Envelope::new(FragmentId(3), HostId(1), 4, rel.clone());
    let old = old_encode_envelope(9, &env);
    let new = encode_envelope(9, &env).unwrap_or_default();
    assert_eq!(old, new, "the old-path reimplementation must be byte-exact");
    let mut buf = Vec::new();
    let (before, after) = bench_ab(
        budget,
        || old_encode_envelope(9, &env),
        || encode_envelope_into(9, &env, &mut buf).map(|()| buf.len()),
    );
    report
        .deltas
        .push(Delta::from_samples("envelope_encode_buffer", before, after));

    // --- tcp_backend.rs: one write syscall per frame on the writer hot
    // path. The batching writer now submits queued frames as a single
    // vectored write; the "before" is the removed loop of per-frame
    // `write_all` calls. Byte-equivalence is asserted through an
    // in-memory sink first (the vectored path is generic over `Write`),
    // then both sides are measured over a real loopback connection with
    // a drain thread on the far end, so the syscall count per batch is
    // the only difference between them. If loopback sockets are
    // unavailable the A/B degrades to the in-memory sink — still the
    // same code paths, minus the kernel boundary. Frames are kept small
    // (they are acks, heartbeats and modest envelopes on the real
    // writer) so the measured difference is the per-frame syscall, not
    // the shared memcpy of large payloads.
    let frame_tuples = if smoke { 16 } else { 64 };
    let frames: Vec<Vec<u8>> = (0..16u64)
        .map(|i| {
            let payload = GenSpec::uniform(frame_tuples, 37 + i).generate();
            let env = Envelope::new(FragmentId(i as usize), HostId(0), 4, payload);
            encode_envelope(i, &env).unwrap_or_default()
        })
        .collect();
    let mut vectored_sink = Vec::new();
    let _ = write_frames_vectored(&mut vectored_sink, &frames);
    let mut sequential_sink = Vec::new();
    for f in &frames {
        let _ = Write::write_all(&mut sequential_sink, f);
    }
    assert_eq!(
        vectored_sink, sequential_sink,
        "the vectored writer must put the same bytes on the wire"
    );
    let (before, after) =
        if let (Some(mut seq_tx), Some(mut vec_tx)) = (drained_loopback(), drained_loopback()) {
            bench_ab(
                budget,
                || {
                    for f in &frames {
                        if seq_tx.write_all(f).is_err() {
                            return false;
                        }
                    }
                    true
                },
                || write_frames_vectored(&mut vec_tx, &frames).is_ok(),
            )
        } else {
            bench_ab(
                budget,
                || {
                    let mut sink = Vec::new();
                    for f in &frames {
                        let _ = Write::write_all(&mut sink, f);
                    }
                    sink.len()
                },
                || {
                    let mut sink = Vec::new();
                    let _ = write_frames_vectored(&mut sink, &frames);
                    sink.len()
                },
            )
        };
    report.deltas.push(Delta::from_samples(
        "writer_per_frame_syscalls",
        before,
        after,
    ));
}

/// A connected loopback TCP stream whose far end is drained by a
/// detached reader thread, so writes in the benchmark above never block
/// on a full socket buffer for longer than the kernel takes to wake the
/// reader. The drain thread exits at EOF when the write end drops.
fn drained_loopback() -> Option<TcpStream> {
    let listener = TcpListener::bind("127.0.0.1:0").ok()?;
    let addr = listener.local_addr().ok()?;
    let tx = TcpStream::connect(addr).ok()?;
    let (rx, _) = listener.accept().ok()?;
    std::thread::spawn(move || {
        let mut rx = rx;
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match Read::read(&mut rx, &mut chunk) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
        }
    });
    Some(tx)
}

/// The envelope encoder as it was before the fix: a fresh body `Vec`
/// with a fixed small capacity hint (reallocating on every real
/// payload), then a second fresh `Vec` for the frame, copying the
/// whole body behind the header. Kept in step with the current wire
/// layout (the query-id tail field included) so the byte-exactness
/// assertion pins the *allocation* difference, not the format.
fn old_encode_envelope(tid: u64, env: &Envelope<Relation>) -> Vec<u8> {
    let mut body = Vec::with_capacity(52 + 64);
    body.extend_from_slice(&tid.to_le_bytes());
    body.extend_from_slice(&(env.id.0 as u64).to_le_bytes());
    body.extend_from_slice(&(env.origin.0 as u32).to_le_bytes());
    body.extend_from_slice(&(env.hops_remaining as u32).to_le_bytes());
    body.extend_from_slice(&env.seq.to_le_bytes());
    body.extend_from_slice(&env.checksum.to_le_bytes());
    body.extend_from_slice(&env.visited.to_le_bytes());
    body.extend_from_slice(&env.query.to_le_bytes());
    env.payload.encode_payload(&mut body);
    let mut out = Vec::with_capacity(5 + body.len());
    out.push(KIND_ENVELOPE);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole suite in smoke mode: every group present, every number
    /// finite and positive, deltas well-formed. This is the same
    /// configuration `scripts/tier1.sh` gates on.
    #[test]
    fn smoke_suite_produces_a_complete_report() {
        let report = run_suite(true);
        assert!(report.smoke);
        for group in ["kernel", "codec", "e2e"] {
            assert!(
                report.entries.iter().any(|e| e.group == group),
                "missing group {group}"
            );
        }
        for backend in ["sim", "threads", "tcp", "reactor"] {
            assert!(
                report
                    .entries
                    .iter()
                    .any(|e| e.name == format!("e2e_{backend}")),
                "missing backend {backend}"
            );
        }
        for e in &report.entries {
            assert!(e.iters > 0, "{}: zero iterations", e.name);
            assert!(
                e.ns_per_iter.is_finite() && e.ns_per_iter > 0.0,
                "{}: bad ns_per_iter",
                e.name
            );
            assert!(
                e.throughput.is_finite() && e.throughput > 0.0,
                "{}: bad throughput",
                e.name
            );
        }
        assert_eq!(report.deltas.len(), 4, "one delta per fixed hot path");
        for d in &report.deltas {
            assert!(d.before_ns > 0.0 && d.after_ns > 0.0 && d.speedup > 0.0);
            let ratio = d.before_ns / d.after_ns;
            assert!(
                (d.speedup - ratio).abs() < 1e-6,
                "{}: speedup must equal before/after",
                d.name
            );
        }
    }

    #[test]
    fn size_tags() {
        assert_eq!(size_tag(4 << 10), "4k");
        assert_eq!(size_tag(256 << 10), "256k");
        assert_eq!(size_tag(1 << 20), "1m");
    }
}
