//! The `BENCH_<n>.json` report shape and its hand-rolled serializer.
//!
//! Schema (version 1) — validated by `cargo xtask bench --check`:
//!
//! ```json
//! {
//!   "version": 1,
//!   "mode": "full" | "smoke",
//!   "entries": [
//!     { "name": "radix_partition_64k", "group": "kernel",
//!       "iters": 42, "ns_per_iter": 123456.7,
//!       "throughput": 5.3e8, "throughput_unit": "tuples/s" }
//!   ],
//!   "deltas": [
//!     { "name": "envelope_encode_buffer",
//!       "before_ns": 2000.0, "after_ns": 1000.0, "speedup": 2.0 }
//!   ]
//! }
//! ```
//!
//! `entries` must cover the groups `kernel`, `codec` and `e2e`, and the
//! `e2e` group must have one entry per backend (`sim`, `threads`, `tcp`).
//! Each `deltas` row is a before/after measurement of one fixed hot path,
//! taken in the same process on the same input (the "before" is a bench-
//! local reimplementation of the removed code path).

use crate::timing::Sample;

/// Schema version written into every report.
pub const SCHEMA_VERSION: u64 = 1;

/// One measured benchmark entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Unique name, e.g. `radix_partition_64k`.
    pub name: String,
    /// `kernel`, `codec` or `e2e`.
    pub group: &'static str,
    /// Measured iterations.
    pub iters: u64,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Work per second in `throughput_unit`s.
    pub throughput: f64,
    /// `tuples/s`, `bytes/s` or `revolutions/s`.
    pub throughput_unit: &'static str,
}

/// One before/after hot-path measurement.
#[derive(Debug, Clone)]
pub struct Delta {
    /// The fixed hot path, e.g. `table_build_column_copy`.
    pub name: String,
    /// ns/iter of the pre-fix code path (bench-local reimplementation).
    pub before_ns: f64,
    /// ns/iter of the shipped code path.
    pub after_ns: f64,
    /// `before_ns / after_ns`.
    pub speedup: f64,
}

impl Delta {
    /// Builds a delta from two samples over identical work.
    pub fn from_samples(name: &str, before: Sample, after: Sample) -> Self {
        let before_ns = before.ns_per_iter();
        let after_ns = after.ns_per_iter();
        Delta {
            name: name.to_string(),
            before_ns,
            after_ns,
            speedup: before_ns / after_ns.max(1e-9),
        }
    }
}

/// A complete bench report.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// True for `--smoke` runs (tiny sizes, minimal budget).
    pub smoke: bool,
    /// Measured entries, in run order.
    pub entries: Vec<Entry>,
    /// Hot-path before/after deltas.
    pub deltas: Vec<Delta>,
}

impl Report {
    /// Records one measured entry.
    pub fn push_entry(
        &mut self,
        name: &str,
        group: &'static str,
        sample: Sample,
        throughput: f64,
        unit: &'static str,
    ) {
        self.entries.push(Entry {
            name: name.to_string(),
            group,
            iters: sample.iters,
            ns_per_iter: sample.ns_per_iter(),
            throughput,
            throughput_unit: unit,
        });
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!(
            "  \"mode\": \"{}\",\n",
            if self.smoke { "smoke" } else { "full" }
        ));
        out.push_str("  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{ \"name\": {}, \"group\": \"{}\", \"iters\": {}, \
                 \"ns_per_iter\": {}, \"throughput\": {}, \"throughput_unit\": \"{}\" }}",
                json_string(&e.name),
                e.group,
                e.iters,
                json_number(e.ns_per_iter),
                json_number(e.throughput),
                e.throughput_unit,
            ));
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"deltas\": [");
        for (i, d) in self.deltas.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{ \"name\": {}, \"before_ns\": {}, \"after_ns\": {}, \"speedup\": {} }}",
                json_string(&d.name),
                json_number(d.before_ns),
                json_number(d.after_ns),
                json_number(d.speedup),
            ));
        }
        out.push_str("\n  ]\n");
        out.push_str("}\n");
        out
    }
}

/// Escapes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite float as a JSON number (no NaN/Inf — those are not
/// JSON; measurement code guards against producing them).
fn json_number(x: f64) -> String {
    if x.is_finite() {
        // Three decimals: enough for a speedup ratio, trim for big counts.
        let rounded = (x * 1000.0).round() / 1000.0;
        if rounded == rounded.trunc() && rounded.abs() < 1e15 {
            format!("{:.1}", rounded)
        } else {
            format!("{rounded}")
        }
    } else {
        "0.0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn json_shape_is_stable() {
        let mut report = Report {
            smoke: true,
            ..Report::default()
        };
        report.push_entry(
            "radix_partition_4k",
            "kernel",
            Sample {
                iters: 10,
                total: Duration::from_nanos(1000),
            },
            4.0e7,
            "tuples/s",
        );
        report.deltas.push(Delta {
            name: "x".into(),
            before_ns: 200.0,
            after_ns: 100.0,
            speedup: 2.0,
        });
        let json = report.to_json();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"mode\": \"smoke\""));
        assert!(json.contains("\"group\": \"kernel\""));
        assert!(json.contains("\"speedup\": 2.0"));
        assert!(json.contains("\"ns_per_iter\": 100.0"));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn numbers_are_finite_json() {
        assert_eq!(json_number(f64::NAN), "0.0");
        assert_eq!(json_number(2.0), "2.0");
        assert_eq!(json_number(123.456), "123.456");
        assert_eq!(json_number(123.45678), "123.457");
    }

    #[test]
    fn delta_from_samples() {
        let before = Sample {
            iters: 1,
            total: Duration::from_nanos(300),
        };
        let after = Sample {
            iters: 1,
            total: Duration::from_nanos(100),
        };
        let d = Delta::from_samples("p", before, after);
        assert_eq!(d.speedup, 3.0);
    }
}
