//! Structured span/event tracing with a Chrome trace-event exporter.
//!
//! The plain [`crate::trace::Tracer`] records free-text protocol lines; this
//! module records *structured* spans (named intervals with a host, a track
//! and a duration), instant events, and a unified counter registry shared by
//! both ring backends. A [`SpanTracer`] can be exported as Chrome
//! trace-event JSON ([`SpanTracer::to_chrome_trace`]) and opened directly in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev), giving every
//! run a per-host, per-entity timeline: setup, each join window, sync gaps,
//! wire occupancy, retransmissions and ring-heal events.
//!
//! Span durations are bookkept in virtual [`SimTime`]/[`SimDuration`] even
//! for the real-thread backend (which converts wall-clock offsets), so span
//! totals reconcile exactly with the end-of-run `RingMetrics` phases.
//!
//! ```
//! use simnet::span::{SpanKind, SpanTracer, Track};
//! use simnet::time::{SimDuration, SimTime};
//!
//! let mut spans = SpanTracer::enabled();
//! spans.span(0, SpanKind::Join, "join F0", SimTime::from_nanos(10), SimDuration::from_nanos(5));
//! spans.event(Some(0), Track::Receiver, "recv F0", SimTime::from_nanos(10));
//! spans.count("envelopes_received", 1);
//! let json = spans.to_chrome_trace();
//! assert!(json.starts_with("{\"traceEvents\":["));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::time::{SimDuration, SimTime};

/// Well-known counter names shared by the simulated and threaded backends.
///
/// Both backends report protocol activity through the same registry keys so
/// that trace consumers (and the round-trip tests) can reconcile either
/// backend against `RingMetrics` without backend-specific glue.
pub mod counter {
    /// Envelopes put on the wire by transmitter entities (excl. retransmits).
    pub const ENVELOPES_SENT: &str = "envelopes_sent";
    /// Envelopes accepted by receiver entities into the local pool.
    pub const ENVELOPES_RECEIVED: &str = "envelopes_received";
    /// Fragments that completed their final hop and left the ring.
    pub const FRAGMENTS_RETIRED: &str = "fragments_retired";
    /// Retransmissions performed by the reliable hop protocol.
    pub const RETRANSMITS: &str = "retransmits";
    /// Envelopes rejected because their checksum did not verify.
    pub const CHECKSUM_MISMATCHES: &str = "checksum_mismatches";
    /// Mid-revolution ring heals (a successor absorbed a dead host's role).
    pub const HEAL_EVENTS: &str = "heal_events";
    /// Fragments re-sent from their origin after a heal.
    pub const FRAGMENTS_RESENT: &str = "fragments_resent";
    /// Planned host activations (a standby joined the ring).
    pub const RESCALE_JOINS: &str = "rescale_joins";
    /// Graceful host drains completed (the drainee departed the ring).
    pub const RESCALE_DRAINS: &str = "rescale_drains";
    /// Stationary partitions moved by planned rescale handoffs.
    pub const RESCALE_HANDOFFS: &str = "rescale_handoffs";
    /// Multi-tenant queries admitted onto the shared ring.
    pub const QUERIES_ADMITTED: &str = "queries_admitted";
    /// Multi-tenant queries whose every fragment completed its revolution.
    pub const QUERIES_COMPLETED: &str = "queries_completed";
}

/// The per-host entity (or pseudo-entity) a span or event belongs to.
///
/// Maps to a Chrome trace `tid` so each host renders as a process with one
/// lane per ring entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// The receiver entity (envelope arrivals).
    Receiver,
    /// The join entity (setup, join windows, sync gaps).
    Join,
    /// The transmitter entity (wire occupancy, retransmissions).
    Transmitter,
    /// Ring-level control events (crashes, heals, role absorption).
    Control,
}

impl Track {
    /// Stable Chrome trace thread id for this track.
    pub const fn tid(self) -> u64 {
        match self {
            Track::Receiver => 0,
            Track::Join => 1,
            Track::Transmitter => 2,
            Track::Control => 3,
        }
    }

    /// Human-readable lane name used in trace metadata.
    pub const fn lane_name(self) -> &'static str {
        match self {
            Track::Receiver => "receiver",
            Track::Join => "join entity",
            Track::Transmitter => "transmitter",
            Track::Control => "control",
        }
    }
}

/// What a span measures; doubles as the Chrome trace category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Local setup work (partition/sort/build of the stationary relation).
    Setup,
    /// One join window: probing a visiting fragment against local state.
    Join,
    /// Idle time waiting for the next fragment to arrive.
    Sync,
    /// Wire occupancy while forwarding an envelope to the successor.
    Send,
    /// Absorbing a dead predecessor's role during a mid-revolution heal.
    Absorb,
}

impl SpanKind {
    /// The Chrome trace category string for this kind.
    pub const fn category(self) -> &'static str {
        match self {
            SpanKind::Setup => "setup",
            SpanKind::Join => "join",
            SpanKind::Sync => "sync",
            SpanKind::Send => "send",
            SpanKind::Absorb => "absorb",
        }
    }

    /// The track this kind of work runs on.
    pub const fn track(self) -> Track {
        match self {
            SpanKind::Setup | SpanKind::Join | SpanKind::Sync | SpanKind::Absorb => Track::Join,
            SpanKind::Send => Track::Transmitter,
        }
    }
}

/// A named interval of work on one host's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Host the work ran on.
    pub host: usize,
    /// What the interval measures.
    pub kind: SpanKind,
    /// Display name, e.g. `"join F3"`.
    pub name: String,
    /// Start of the interval on the (virtual) clock.
    pub start: SimTime,
    /// Length of the interval.
    pub duration: SimDuration,
    /// Ring hop index of the fragment being worked on, if applicable
    /// (0 = the fragment's origin host, `n-1` = last stop of a revolution).
    pub hop: Option<usize>,
}

/// A zero-duration event pinned to an instant on some host's timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Host the event happened on; `None` for ring-global events.
    pub host: Option<usize>,
    /// Lane the event belongs to.
    pub track: Track,
    /// Display name, e.g. `"retransmit F2 attempt 1"`.
    pub name: String,
    /// When it happened.
    pub at: SimTime,
}

/// A unified named-counter registry shared by both ring backends.
///
/// Counters are monotonically increasing `u64`s keyed by name (see
/// [`counter`] for the well-known keys). The registry is ordered so exports
/// and debug output are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterRegistry {
    counts: BTreeMap<String, u64>,
}

impl CounterRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        if delta == 0 && !self.counts.contains_key(name) {
            // Still materialise the key so "observed zero" is visible.
            self.counts.insert(name.to_string(), 0);
            return;
        }
        *self.counts.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// True if no counter was ever touched.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Folds another registry into this one.
    pub fn merge(&mut self, other: &CounterRegistry) {
        for (name, value) in other.iter() {
            self.add(name, value);
        }
    }
}

/// A structured span/event recorder with a Chrome trace-event exporter.
///
/// Like [`crate::trace::Tracer`], a disabled tracer is free: every recording
/// call is a no-op. Both ring backends thread one of these through their
/// entities; `core::exec` stitches the per-phase pieces together and the
/// `cyclo` CLI (and bench binaries) export it with `--trace <path>`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanTracer {
    enabled: bool,
    spans: Vec<Span>,
    events: Vec<TraceEvent>,
    counters: CounterRegistry,
}

impl SpanTracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A tracer that records spans, events and counters.
    pub fn enabled() -> Self {
        SpanTracer {
            enabled: true,
            ..Self::default()
        }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a span of `duration` starting at `start` on `host`.
    pub fn span(
        &mut self,
        host: usize,
        kind: SpanKind,
        name: impl Into<String>,
        start: SimTime,
        duration: SimDuration,
    ) {
        self.span_with_hop(host, kind, name, start, duration, None);
    }

    /// Records a span annotated with the fragment's ring hop index.
    pub fn span_with_hop(
        &mut self,
        host: usize,
        kind: SpanKind,
        name: impl Into<String>,
        start: SimTime,
        duration: SimDuration,
        hop: Option<usize>,
    ) {
        if !self.enabled {
            return;
        }
        self.spans.push(Span {
            host,
            kind,
            name: name.into(),
            start,
            duration,
            hop,
        });
    }

    /// Records an instant event at `at` on `host` (or ring-global if `None`).
    pub fn event(
        &mut self,
        host: Option<usize>,
        track: Track,
        name: impl Into<String>,
        at: SimTime,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            host,
            track,
            name: name.into(),
            at,
        });
    }

    /// Adds `delta` to the unified counter `name`.
    pub fn count(&mut self, name: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        self.counters.add(name, delta);
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All recorded instant events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The unified counter registry.
    pub fn counters(&self) -> &CounterRegistry {
        &self.counters
    }

    /// Total recorded span time of `kind` on `host`.
    pub fn total(&self, host: usize, kind: SpanKind) -> SimDuration {
        self.spans
            .iter()
            .filter(|s| s.host == host && s.kind == kind)
            .map(|s| s.duration)
            .fold(SimDuration::ZERO, SimDuration::saturating_add)
    }

    /// Total join-entity busy time on `host`: join plus role-absorb spans.
    ///
    /// This is the quantity `RingMetrics` reports as `join_busy`.
    pub fn busy_total(&self, host: usize) -> SimDuration {
        self.total(host, SpanKind::Join)
            .saturating_add(self.total(host, SpanKind::Absorb))
    }

    /// Number of events whose name starts with `prefix`.
    pub fn count_events(&self, prefix: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.name.starts_with(prefix))
            .count()
    }

    /// Shifts every span start and event instant forward by `delta`.
    ///
    /// The threaded backend measures ring time from its own epoch; shifting
    /// by the setup phase length places its spans after the setup spans on
    /// one common timeline.
    pub fn shift(&mut self, delta: SimDuration) {
        for span in &mut self.spans {
            span.start += delta;
        }
        for event in &mut self.events {
            event.at += delta;
        }
    }

    /// Appends another tracer's spans, events and counters to this one.
    ///
    /// Enables recording if `other` recorded anything, so stitched tracers
    /// survive the merge even when `self` started out disabled.
    pub fn merge(&mut self, other: SpanTracer) {
        self.enabled |= other.enabled;
        self.spans.extend(other.spans);
        self.events.extend(other.events);
        self.counters.merge(&other.counters);
    }

    /// Exports the recording as Chrome trace-event JSON.
    ///
    /// The output is a complete `{"traceEvents": [...]}` document using
    /// `"X"` (complete) events for spans, `"i"` (instant) events, `"C"`
    /// (counter) samples for the registry, and `"M"` metadata naming each
    /// host (process) and entity lane (thread). Timestamps are microseconds,
    /// as the format requires. Load the file in `chrome://tracing` or
    /// <https://ui.perfetto.dev>.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(256 + 128 * (self.spans.len() + self.events.len()));
        out.push_str("{\"traceEvents\":[");
        let mut first = true;

        // Metadata: name every (host, lane) pair that carries data.
        let mut lanes: BTreeMap<usize, Vec<Track>> = BTreeMap::new();
        for span in &self.spans {
            let tracks = lanes.entry(span.host).or_default();
            if !tracks.contains(&span.kind.track()) {
                tracks.push(span.kind.track());
            }
        }
        for event in &self.events {
            let host = event.host.unwrap_or(usize::MAX);
            let tracks = lanes.entry(host).or_default();
            if !tracks.contains(&event.track) {
                tracks.push(event.track);
            }
        }
        for (host, tracks) in &lanes {
            let pid = *host;
            let pname = if pid == usize::MAX {
                "ring".to_string()
            } else {
                format!("host {pid}")
            };
            emit_sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":{}}}}}",
                chrome_pid(pid),
                json_string(&pname)
            );
            for track in tracks {
                emit_sep(&mut out, &mut first);
                let _ = write!(
                    out,
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":{}}}}}",
                    chrome_pid(pid),
                    track.tid(),
                    json_string(track.lane_name())
                );
            }
        }

        for span in &self.spans {
            emit_sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}",
                json_string(&span.name),
                span.kind.category(),
                micros(span.start.as_nanos()),
                micros(span.duration.as_nanos()),
                chrome_pid(span.host),
                span.kind.track().tid()
            );
            if let Some(hop) = span.hop {
                let _ = write!(out, ",\"args\":{{\"hop\":{hop}}}");
            }
            out.push('}');
        }

        for event in &self.events {
            emit_sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":\"event\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\"tid\":{},\"s\":\"t\"}}",
                json_string(&event.name),
                micros(event.at.as_nanos()),
                chrome_pid(event.host.unwrap_or(usize::MAX)),
                event.track.tid()
            );
        }

        // Counter samples: one "C" event per counter at the end of the run,
        // attributed to a ring-global pid so Perfetto draws one counter track.
        let end = self.end_time();
        for (name, value) in self.counters.iter() {
            emit_sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":{},\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{\"value\":{}}}}}",
                json_string(name),
                micros(end.as_nanos()),
                chrome_pid(usize::MAX),
                Track::Control.tid(),
                value
            );
        }

        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// The latest instant touched by any span or event.
    pub fn end_time(&self) -> SimTime {
        let span_end = self
            .spans
            .iter()
            .map(|s| s.start + s.duration)
            .max()
            .unwrap_or(SimTime::ZERO);
        let event_end = self
            .events
            .iter()
            .map(|e| e.at)
            .max()
            .unwrap_or(SimTime::ZERO);
        span_end.max(event_end)
    }
}

fn emit_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

/// Ring-global records use `usize::MAX` internally; Chrome wants a small pid.
fn chrome_pid(host: usize) -> u64 {
    if host == usize::MAX {
        9_999
    } else {
        host as u64
    }
}

/// Nanoseconds → microseconds with three decimals (trace-event `ts` unit).
fn micros(nanos: u64) -> String {
    let whole = nanos / 1_000;
    let frac = nanos % 1_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        format!("{whole}.{frac:03}")
    }
}

/// Escapes a string for embedding in JSON (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut spans = SpanTracer::disabled();
        spans.span(
            0,
            SpanKind::Join,
            "join F0",
            SimTime::ZERO,
            SimDuration::from_nanos(5),
        );
        spans.event(Some(0), Track::Receiver, "recv", SimTime::ZERO);
        spans.count(counter::ENVELOPES_SENT, 3);
        assert!(spans.spans().is_empty());
        assert!(spans.events().is_empty());
        assert_eq!(spans.counters().get(counter::ENVELOPES_SENT), 0);
    }

    #[test]
    fn totals_sum_per_host_and_kind() {
        let mut spans = SpanTracer::enabled();
        spans.span(
            0,
            SpanKind::Join,
            "join F0",
            SimTime::from_nanos(10),
            SimDuration::from_nanos(5),
        );
        spans.span(
            0,
            SpanKind::Join,
            "join F1",
            SimTime::from_nanos(20),
            SimDuration::from_nanos(7),
        );
        spans.span(
            0,
            SpanKind::Absorb,
            "absorb S1",
            SimTime::from_nanos(30),
            SimDuration::from_nanos(2),
        );
        spans.span(
            1,
            SpanKind::Join,
            "join F2",
            SimTime::from_nanos(10),
            SimDuration::from_nanos(9),
        );
        assert_eq!(spans.total(0, SpanKind::Join), SimDuration::from_nanos(12));
        assert_eq!(spans.busy_total(0), SimDuration::from_nanos(14));
        assert_eq!(spans.total(1, SpanKind::Join), SimDuration::from_nanos(9));
        assert_eq!(spans.total(1, SpanKind::Setup), SimDuration::ZERO);
    }

    #[test]
    fn shift_moves_spans_and_events() {
        let mut spans = SpanTracer::enabled();
        spans.span(
            0,
            SpanKind::Join,
            "join",
            SimTime::from_nanos(10),
            SimDuration::from_nanos(5),
        );
        spans.event(Some(0), Track::Receiver, "recv", SimTime::from_nanos(3));
        spans.shift(SimDuration::from_nanos(100));
        assert_eq!(spans.spans()[0].start, SimTime::from_nanos(110));
        assert_eq!(spans.events()[0].at, SimTime::from_nanos(103));
    }

    #[test]
    fn merge_combines_counters_and_enables() {
        let mut a = SpanTracer::disabled();
        let mut b = SpanTracer::enabled();
        b.count(counter::RETRANSMITS, 2);
        b.span(
            1,
            SpanKind::Send,
            "send F0",
            SimTime::ZERO,
            SimDuration::from_nanos(1),
        );
        a.merge(b);
        assert!(a.is_enabled());
        assert_eq!(a.counters().get(counter::RETRANSMITS), 2);
        assert_eq!(a.spans().len(), 1);
    }

    #[test]
    fn counter_registry_materialises_zero_observations() {
        let mut counters = CounterRegistry::new();
        counters.add(counter::HEAL_EVENTS, 0);
        assert_eq!(counters.get(counter::HEAL_EVENTS), 0);
        assert_eq!(counters.iter().count(), 1);
    }

    #[test]
    fn chrome_trace_is_wellformed_and_complete() {
        let mut spans = SpanTracer::enabled();
        spans.span(
            0,
            SpanKind::Setup,
            "setup",
            SimTime::ZERO,
            SimDuration::from_micros(2),
        );
        spans.span_with_hop(
            0,
            SpanKind::Join,
            "join \"F0\"",
            SimTime::from_nanos(2_000),
            SimDuration::from_nanos(1_500),
            Some(3),
        );
        spans.event(
            Some(0),
            Track::Transmitter,
            "retransmit F0",
            SimTime::from_nanos(4_000),
        );
        spans.count(counter::RETRANSMITS, 1);
        let json = spans.to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
        // Escaped name, fractional microseconds, hop args, counter sample.
        assert!(json.contains("join \\\"F0\\\""));
        assert!(json.contains("\"dur\":1.500"));
        assert!(json.contains("\"args\":{\"hop\":3}"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"M\""));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn end_time_covers_spans_and_events() {
        let mut spans = SpanTracer::enabled();
        spans.span(
            0,
            SpanKind::Join,
            "join",
            SimTime::from_nanos(10),
            SimDuration::from_nanos(5),
        );
        spans.event(None, Track::Control, "heal", SimTime::from_nanos(40));
        assert_eq!(spans.end_time(), SimTime::from_nanos(40));
    }
}
