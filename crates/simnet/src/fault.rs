//! Deterministic fault injection for simulated runs.
//!
//! A [`FaultPlan`] is a *schedule* of adversity attached to a simulation:
//! host crashes and pause/resume windows pinned to virtual instants,
//! per-link drop / corruption / delay-spike probabilities, and straggler
//! slowdown factors. Everything is seeded: link-level decisions are pure
//! functions of `(seed, link, sequence number, attempt)`, so two runs with
//! the same plan and inputs inject byte-identical faults regardless of how
//! the backend orders its events — the property that makes chaos tests
//! reproducible and bisectable.
//!
//! The plan only *describes* faults. Interpreting them — dropping an
//! envelope, wiping a host's buffers, healing the ring — is the transport
//! layer's job (see `data_roundabout`).

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};
use crate::topology::HostId;

/// A host crash pinned to a virtual instant. The host stops processing,
/// acknowledging and transmitting; everything in its buffers is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashFault {
    /// The host that dies.
    pub host: HostId,
    /// Virtual time of death.
    pub at: SimTime,
}

/// A pause/resume window: the host's *software* freezes (no joins, no
/// forwarding) but its NIC keeps acknowledging and buffering arrivals, so
/// neighbors see backpressure rather than death.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PauseFault {
    /// The host that freezes.
    pub host: HostId,
    /// Virtual time the freeze begins.
    pub at: SimTime,
    /// Length of the freeze.
    pub duration: SimDuration,
}

/// Stochastic misbehavior of the link *out of* one host, evaluated
/// independently per transfer attempt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    /// Source host of the link.
    pub from: HostId,
    /// Probability a transfer is silently lost.
    pub drop_probability: f64,
    /// Probability a transfer arrives with a corrupted payload (detected
    /// by the receiver's checksum verification).
    pub corrupt_probability: f64,
    /// Probability a transfer suffers an additional delay spike.
    pub delay_probability: f64,
    /// Extra latency added when a delay spike hits.
    pub delay_spike: SimDuration,
}

impl LinkFault {
    fn quiet(from: HostId) -> Self {
        LinkFault {
            from,
            drop_probability: 0.0,
            corrupt_probability: 0.0,
            delay_probability: 0.0,
            delay_spike: SimDuration::ZERO,
        }
    }
}

/// A deterministic schedule of faults for one simulated run.
///
/// ```
/// use simnet::fault::FaultPlan;
/// use simnet::time::{SimDuration, SimTime};
/// use simnet::topology::HostId;
///
/// let plan = FaultPlan::seeded(42)
///     .crash_host(HostId(2), SimTime::from_nanos(5_000_000))
///     .lossy_link(HostId(0), 0.1)
///     .slow_host(HostId(1), 0.5);
/// assert_eq!(plan.crash_time(HostId(2)), Some(SimTime::from_nanos(5_000_000)));
/// assert!(plan.slowdown(HostId(1)) < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    crashes: Vec<CrashFault>,
    pauses: Vec<PauseFault>,
    links: Vec<LinkFault>,
    /// `(host, factor)`: the host joins at `factor ×` nominal speed.
    slowdowns: Vec<(HostId, f64)>,
}

impl FaultPlan {
    /// An empty plan with the given seed. Attaching an empty plan enables
    /// the reliable (acknowledged) transport without injecting any faults.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Schedules a hard crash of `host` at virtual time `at`.
    pub fn crash_host(mut self, host: HostId, at: SimTime) -> Self {
        self.crashes.push(CrashFault { host, at });
        self
    }

    /// Schedules a pause of `host` at `at`, resumed after `duration`.
    pub fn pause_host(mut self, host: HostId, at: SimTime, duration: SimDuration) -> Self {
        self.pauses.push(PauseFault { host, at, duration });
        self
    }

    /// Makes the link out of `from` drop each transfer with probability `p`.
    pub fn lossy_link(mut self, from: HostId, p: f64) -> Self {
        self.link_mut(from).drop_probability = clamp_probability(p);
        self
    }

    /// Makes the link out of `from` corrupt each transfer with probability
    /// `p` (detected by the receiver's checksum and treated as a loss).
    pub fn corrupt_link(mut self, from: HostId, p: f64) -> Self {
        self.link_mut(from).corrupt_probability = clamp_probability(p);
        self
    }

    /// Adds `extra` latency to each transfer out of `from` with
    /// probability `p` — the tail-latency spikes that provoke spurious
    /// retransmissions.
    pub fn delay_spikes(mut self, from: HostId, p: f64, extra: SimDuration) -> Self {
        let link = self.link_mut(from);
        link.delay_probability = clamp_probability(p);
        link.delay_spike = extra;
        self
    }

    /// Makes `host` a straggler joining at `factor ×` nominal speed
    /// (`0.5` = half speed). Factors must be finite and positive.
    pub fn slow_host(mut self, host: HostId, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "slowdown factor must be finite and positive, got {factor}"
        );
        self.slowdowns.push((host, factor));
        self
    }

    /// The seed link-level decisions are derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Virtual time `host` crashes, if scheduled.
    pub fn crash_time(&self, host: HostId) -> Option<SimTime> {
        self.crashes
            .iter()
            .filter(|c| c.host == host)
            .map(|c| c.at)
            .min()
    }

    /// All scheduled crashes.
    pub fn crashes(&self) -> &[CrashFault] {
        &self.crashes
    }

    /// All scheduled pause windows.
    pub fn pauses(&self) -> &[PauseFault] {
        &self.pauses
    }

    /// The slowdown factor of `host` (1.0 when not a straggler; factors
    /// multiply if the host appears more than once).
    pub fn slowdown(&self, host: HostId) -> f64 {
        self.slowdowns
            .iter()
            .filter(|(h, _)| *h == host)
            .map(|(_, f)| f)
            .product()
    }

    /// True if the plan schedules no faults at all (attaching it still
    /// switches the transport into reliable mode).
    pub fn is_quiet(&self) -> bool {
        self.crashes.is_empty()
            && self.pauses.is_empty()
            && self.slowdowns.is_empty()
            && self.links.iter().all(|l| {
                l.drop_probability == 0.0
                    && l.corrupt_probability == 0.0
                    && l.delay_probability == 0.0
            })
    }

    /// Whether transfer attempt `attempt` of sequence `seq` on the link out
    /// of `from` is dropped. Pure in `(seed, from, seq, attempt)`.
    pub fn should_drop(&self, from: HostId, seq: u64, attempt: u32) -> bool {
        match self.link(from) {
            Some(l) if l.drop_probability > 0.0 => {
                unit_f64(self.decision(from, seq, attempt, Channel::Drop)) < l.drop_probability
            }
            _ => false,
        }
    }

    /// Whether the transfer arrives corrupted (mutually exclusive channels:
    /// a dropped transfer is never also reported corrupted).
    pub fn should_corrupt(&self, from: HostId, seq: u64, attempt: u32) -> bool {
        match self.link(from) {
            Some(l) if l.corrupt_probability > 0.0 => {
                unit_f64(self.decision(from, seq, attempt, Channel::Corrupt))
                    < l.corrupt_probability
            }
            _ => false,
        }
    }

    /// Extra delay the transfer suffers (zero when no spike hits).
    pub fn delay_spike(&self, from: HostId, seq: u64, attempt: u32) -> SimDuration {
        match self.link(from) {
            Some(l) if l.delay_probability > 0.0 => {
                if unit_f64(self.decision(from, seq, attempt, Channel::Delay)) < l.delay_probability
                {
                    l.delay_spike
                } else {
                    SimDuration::ZERO
                }
            }
            _ => SimDuration::ZERO,
        }
    }

    fn link(&self, from: HostId) -> Option<&LinkFault> {
        self.links.iter().find(|l| l.from == from)
    }

    fn link_mut(&mut self, from: HostId) -> &mut LinkFault {
        if let Some(i) = self.links.iter().position(|l| l.from == from) {
            &mut self.links[i]
        } else {
            self.links.push(LinkFault::quiet(from));
            self.links.last_mut().expect("just pushed")
        }
    }

    /// One deterministic 64-bit decision word per (link, seq, attempt,
    /// channel) tuple: a splitmix64 finalizer over the packed inputs.
    fn decision(&self, from: HostId, seq: u64, attempt: u32, channel: Channel) -> u64 {
        let mut x = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((from.0 as u64) << 48)
            .wrapping_add(seq.wrapping_mul(0x2545_f491_4f6c_dd1d))
            .wrapping_add((attempt as u64) << 8)
            .wrapping_add(channel as u64);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x
    }
}

/// A planned host activation pinned to a virtual instant: the standby
/// host enters the ring and rendezvous hashing assigns it stationary
/// roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinEvent {
    /// The standby host that joins the ring.
    pub host: HostId,
    /// Virtual time the join is requested.
    pub at: SimTime,
}

/// A planned graceful drain pinned to a virtual instant: the host hands
/// its stationary roles off and leaves the ring once quiescent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrainEvent {
    /// The host that drains out of the ring.
    pub host: HostId,
    /// Virtual time the drain is requested.
    pub at: SimTime,
}

/// A deterministic schedule of *planned* membership changes — the elastic
/// counterpart of [`FaultPlan`]. Where a fault plan schedules adversity
/// (crashes, losses), a rescale plan schedules cooperation: standby hosts
/// joining the ring and members draining out gracefully, each pinned to a
/// virtual instant. Role placement itself is seedless (rendezvous
/// hashing), so the same plan produces byte-identical membership epochs
/// and handoff counts on every backend.
///
/// ```
/// use simnet::fault::RescalePlan;
/// use simnet::time::SimTime;
/// use simnet::topology::HostId;
///
/// let plan = RescalePlan::seeded(42)
///     .join_host(HostId(3), SimTime::from_nanos(2_000_000))
///     .drain_host(HostId(1), SimTime::from_nanos(8_000_000));
/// assert_eq!(plan.standby_mask(), 0b1000);
/// assert_eq!(plan.joins().len(), 1);
/// assert_eq!(plan.drains().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RescalePlan {
    seed: u64,
    joins: Vec<JoinEvent>,
    drains: Vec<DrainEvent>,
}

impl RescalePlan {
    /// An empty plan with the given seed. Attaching even an empty plan
    /// switches the transport into its reliable mode (handoff fragments
    /// ride the acknowledged hop protocol).
    pub fn seeded(seed: u64) -> Self {
        RescalePlan {
            seed,
            ..RescalePlan::default()
        }
    }

    /// Schedules standby `host` to join the ring at virtual time `at`.
    /// Hosts scheduled to join start *outside* the ring (see
    /// [`RescalePlan::standby_mask`]).
    pub fn join_host(mut self, host: HostId, at: SimTime) -> Self {
        self.joins.push(JoinEvent { host, at });
        self
    }

    /// Schedules `host` to drain out of the ring at virtual time `at`.
    pub fn drain_host(mut self, host: HostId, at: SimTime) -> Self {
        self.drains.push(DrainEvent { host, at });
        self
    }

    /// The seed (reserved for seeded schedule generators; placement is
    /// seedless rendezvous hashing).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All scheduled joins.
    pub fn joins(&self) -> &[JoinEvent] {
        &self.joins
    }

    /// All scheduled drains.
    pub fn drains(&self) -> &[DrainEvent] {
        &self.drains
    }

    /// True if the plan schedules no membership change at all.
    pub fn is_quiet(&self) -> bool {
        self.joins.is_empty() && self.drains.is_empty()
    }

    /// Bitmask of hosts that start as provisioned standbys: every host
    /// with a scheduled join begins outside the ring and owns no
    /// stationary role until activated.
    pub fn standby_mask(&self) -> u64 {
        self.joins
            .iter()
            .filter(|j| j.host.0 < 64)
            .fold(0u64, |m, j| m | (1u64 << j.host.0))
    }
}

/// Independent decision channels per transfer attempt.
#[derive(Clone, Copy)]
enum Channel {
    Drop = 1,
    Corrupt = 2,
    Delay = 3,
}

fn clamp_probability(p: f64) -> f64 {
    assert!(p.is_finite(), "probability must be finite, got {p}");
    p.clamp(0.0, 1.0)
}

/// Maps a 64-bit word to a uniform float in `[0, 1)` (53 high bits).
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_quiet_and_injects_nothing() {
        let plan = FaultPlan::seeded(7);
        assert!(plan.is_quiet());
        assert_eq!(plan.crash_time(HostId(0)), None);
        assert_eq!(plan.slowdown(HostId(0)), 1.0);
        for seq in 0..100 {
            assert!(!plan.should_drop(HostId(0), seq, 1));
            assert!(!plan.should_corrupt(HostId(0), seq, 1));
            assert_eq!(plan.delay_spike(HostId(0), seq, 1), SimDuration::ZERO);
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(1).lossy_link(HostId(0), 0.5);
        let b = FaultPlan::seeded(1).lossy_link(HostId(0), 0.5);
        let c = FaultPlan::seeded(2).lossy_link(HostId(0), 0.5);
        let pattern = |p: &FaultPlan| -> Vec<bool> {
            (0..256).map(|s| p.should_drop(HostId(0), s, 1)).collect()
        };
        assert_eq!(pattern(&a), pattern(&b));
        assert_ne!(pattern(&a), pattern(&c));
    }

    #[test]
    fn drop_rate_approximates_probability() {
        let plan = FaultPlan::seeded(11).lossy_link(HostId(1), 0.3);
        let drops = (0..10_000)
            .filter(|&s| plan.should_drop(HostId(1), s, 1))
            .count();
        let rate = drops as f64 / 10_000.0;
        assert!((0.25..0.35).contains(&rate), "got {rate}");
    }

    #[test]
    fn channels_are_independent() {
        let plan = FaultPlan::seeded(3)
            .lossy_link(HostId(0), 0.5)
            .corrupt_link(HostId(0), 0.5);
        let drops: Vec<bool> = (0..128)
            .map(|s| plan.should_drop(HostId(0), s, 1))
            .collect();
        let corrupts: Vec<bool> = (0..128)
            .map(|s| plan.should_corrupt(HostId(0), s, 1))
            .collect();
        assert_ne!(drops, corrupts, "channels must not mirror each other");
    }

    #[test]
    fn attempts_reroll_the_dice() {
        // A transfer dropped on attempt 1 must not be doomed forever:
        // retransmissions get fresh decisions.
        let plan = FaultPlan::seeded(5).lossy_link(HostId(0), 0.5);
        let survives = (0..64)
            .any(|seq| plan.should_drop(HostId(0), seq, 1) && !plan.should_drop(HostId(0), seq, 2));
        assert!(survives, "some retransmission must get through");
    }

    #[test]
    fn crash_and_pause_schedules_are_queryable() {
        let t = SimTime::from_nanos(1_000);
        let plan = FaultPlan::seeded(0).crash_host(HostId(3), t).pause_host(
            HostId(1),
            t,
            SimDuration::from_millis(2),
        );
        assert_eq!(plan.crash_time(HostId(3)), Some(t));
        assert_eq!(plan.crash_time(HostId(1)), None);
        assert_eq!(plan.crashes().len(), 1);
        assert_eq!(plan.pauses().len(), 1);
        assert!(!plan.is_quiet());
    }

    #[test]
    fn slowdowns_multiply() {
        let plan = FaultPlan::seeded(0)
            .slow_host(HostId(2), 0.5)
            .slow_host(HostId(2), 0.5);
        assert!((plan.slowdown(HostId(2)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn delay_spikes_return_the_configured_extra() {
        let extra = SimDuration::from_micros(500);
        let plan = FaultPlan::seeded(9).delay_spikes(HostId(0), 1.0, extra);
        assert_eq!(plan.delay_spike(HostId(0), 0, 1), extra);
        let quiet = FaultPlan::seeded(9).delay_spikes(HostId(0), 0.0, extra);
        assert_eq!(quiet.delay_spike(HostId(0), 0, 1), SimDuration::ZERO);
    }

    #[test]
    fn probabilities_are_clamped() {
        let plan = FaultPlan::seeded(0).lossy_link(HostId(0), 2.0);
        assert!(plan.should_drop(HostId(0), 0, 1), "p=1 drops everything");
    }

    #[test]
    fn rescale_plan_derives_its_standby_mask_from_joins() {
        let t = SimTime::from_nanos(1_000);
        let plan = RescalePlan::seeded(0)
            .join_host(HostId(4), t)
            .join_host(HostId(6), t)
            .drain_host(HostId(1), t);
        assert_eq!(plan.standby_mask(), 0b101_0000);
        assert_eq!(plan.joins().len(), 2);
        assert_eq!(plan.drains().len(), 1);
        assert!(!plan.is_quiet());
        assert!(RescalePlan::seeded(3).is_quiet());
    }

    #[test]
    fn rescale_plan_ignores_out_of_range_hosts_in_the_mask() {
        let plan = RescalePlan::seeded(0).join_host(HostId(64), SimTime::from_nanos(1));
        assert_eq!(plan.standby_mask(), 0, "bit 64 would overflow the mask");
    }
}
