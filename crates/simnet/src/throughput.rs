//! Bandwidth and the chunk-size→goodput model (paper Figure 5).
//!
//! RDMA transfers only saturate the physical link once transfer units are
//! large enough: every work request carries a fixed per-message cost (WR
//! posting, RNIC processing, headers), so the achievable goodput for a chunk
//! of `s` bytes over a link of peak bandwidth `B` is
//!
//! ```text
//! goodput(s) = s / (s / B + o)
//! ```
//!
//! with `o` the per-message overhead. The paper measured saturation starting
//! around 4 kB and full rate for units of 1 MB and larger over 10 GbE
//! (Figure 5); the default model constants reproduce that curve.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// A transfer rate in bytes per second.
///
/// Stored as `f64` since rates are model parameters, not clock values; all
/// *times* derived from a `Bandwidth` are rounded to integer nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Creates a rate of `bytes_per_sec` bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and strictly positive.
    pub fn from_bytes_per_sec(bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "Bandwidth must be finite and positive, got {bytes_per_sec}"
        );
        Bandwidth(bytes_per_sec)
    }

    /// Creates a rate of `gbit` gigabits per second (decimal: 1 Gb/s = 125 MB/s).
    pub fn from_gbit_per_sec(gbit: f64) -> Self {
        Bandwidth::from_bytes_per_sec(gbit * 1e9 / 8.0)
    }

    /// Creates a rate of `mb` megabytes per second (decimal).
    pub fn from_mb_per_sec(mb: f64) -> Self {
        Bandwidth::from_bytes_per_sec(mb * 1e6)
    }

    /// The rate in bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// The rate in gigabits per second (decimal).
    pub fn gbit_per_sec(self) -> f64 {
        self.0 * 8.0 / 1e9
    }

    /// Time to move `bytes` at this rate, with no per-message overhead.
    pub fn transfer_time(self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.0)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} Gb/s", self.gbit_per_sec())
    }
}

/// The chunk-size-dependent goodput model of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkThroughput {
    /// Peak (saturated) link bandwidth.
    peak: Bandwidth,
    /// Fixed cost charged once per message, independent of its size.
    per_message_overhead: SimDuration,
}

impl ChunkThroughput {
    /// A model with explicit peak bandwidth and per-message overhead.
    pub fn new(peak: Bandwidth, per_message_overhead: SimDuration) -> Self {
        ChunkThroughput {
            peak,
            per_message_overhead,
        }
    }

    /// The model calibrated to the paper's testbed: 10 Gb/s Ethernet with
    /// iWARP RNICs, ~3 µs of fixed per-work-request cost. This yields ~50 %
    /// of peak at 4 kB chunks and ≥ 99 % of peak at 1 MB chunks, matching
    /// the shape of Figure 5.
    pub fn paper_10gbe() -> Self {
        ChunkThroughput::new(
            Bandwidth::from_gbit_per_sec(10.0),
            SimDuration::from_nanos(3_300),
        )
    }

    /// Peak (saturated) bandwidth of the underlying link.
    pub fn peak(self) -> Bandwidth {
        self.peak
    }

    /// Fixed per-message overhead.
    pub fn per_message_overhead(self) -> SimDuration {
        self.per_message_overhead
    }

    /// Wall time occupied on the link by one message of `bytes` payload.
    pub fn transfer_time(self, bytes: u64) -> SimDuration {
        self.per_message_overhead + self.peak.transfer_time(bytes)
    }

    /// Effective goodput when sending back-to-back messages of `bytes` each.
    ///
    /// Approaches [`ChunkThroughput::peak`] as `bytes` grows; collapses for
    /// tiny chunks where the per-message overhead dominates.
    pub fn goodput(self, bytes: u64) -> Bandwidth {
        let t = self.transfer_time(bytes).as_secs_f64();
        // A zero-byte message still occupies the overhead slot; report an
        // epsilon goodput rather than panicking in Bandwidth's validator.
        Bandwidth::from_bytes_per_sec((bytes as f64 / t).max(f64::MIN_POSITIVE))
    }

    /// Fraction of peak bandwidth achieved at the given chunk size, in `0..=1`.
    pub fn utilization(self, bytes: u64) -> f64 {
        self.goodput(bytes).bytes_per_sec() / self.peak.bytes_per_sec()
    }

    /// Smallest power-of-two chunk size achieving `fraction` of peak
    /// bandwidth. Useful for sizing ring-buffer elements.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1`.
    pub fn chunk_size_for_utilization(self, fraction: f64) -> u64 {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0, 1), got {fraction}"
        );
        let mut size = 1u64;
        while self.utilization(size) < fraction {
            size = size
                .checked_mul(2)
                .expect("no chunk size reaches the requested utilization");
        }
        size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_units_convert() {
        let b = Bandwidth::from_gbit_per_sec(10.0);
        assert!((b.bytes_per_sec() - 1.25e9).abs() < 1.0);
        assert!((b.gbit_per_sec() - 10.0).abs() < 1e-9);
        let m = Bandwidth::from_mb_per_sec(120.0);
        assert!((m.bytes_per_sec() - 1.2e8).abs() < 1.0);
    }

    #[test]
    fn plain_transfer_time_is_linear() {
        let b = Bandwidth::from_bytes_per_sec(1e9);
        assert_eq!(b.transfer_time(1_000_000), SimDuration::from_millis(1));
        assert_eq!(b.transfer_time(2_000_000), SimDuration::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_bandwidth_rejected() {
        let _ = Bandwidth::from_bytes_per_sec(0.0);
    }

    #[test]
    fn goodput_increases_with_chunk_size() {
        let model = ChunkThroughput::paper_10gbe();
        let sizes = [1u64, 1 << 10, 4 << 10, 64 << 10, 1 << 20, 1 << 30];
        let goodputs: Vec<f64> = sizes
            .iter()
            .map(|&s| model.goodput(s).bytes_per_sec())
            .collect();
        for w in goodputs.windows(2) {
            assert!(
                w[0] < w[1],
                "goodput must be strictly increasing in chunk size"
            );
        }
    }

    #[test]
    fn paper_curve_shape_holds() {
        // Figure 5: tiny chunks crawl, ~4 kB chunks are on the saturation
        // knee, ≥ 1 MB chunks saturate the 10 Gb/s link.
        let model = ChunkThroughput::paper_10gbe();
        assert!(
            model.utilization(1) < 0.01,
            "1 B chunks must be far from peak"
        );
        let at_4k = model.utilization(4 << 10);
        assert!(
            (0.3..0.8).contains(&at_4k),
            "4 kB should sit on the knee of the curve, got {at_4k}"
        );
        assert!(
            model.utilization(1 << 20) > 0.99,
            "1 MB chunks must saturate"
        );
    }

    #[test]
    fn chunk_size_for_utilization_is_consistent() {
        let model = ChunkThroughput::paper_10gbe();
        let s = model.chunk_size_for_utilization(0.95);
        assert!(model.utilization(s) >= 0.95);
        assert!(model.utilization(s / 2) < 0.95);
    }

    #[test]
    fn transfer_time_includes_overhead_once() {
        let model = ChunkThroughput::new(
            Bandwidth::from_bytes_per_sec(1e9),
            SimDuration::from_micros(5),
        );
        let t = model.transfer_time(1_000_000);
        assert_eq!(t, SimDuration::from_millis(1) + SimDuration::from_micros(5));
    }
}
