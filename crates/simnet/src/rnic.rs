//! RDMA-enabled NIC (RNIC) model.
//!
//! The model exposes the interface contract that shapes Data Roundabout's
//! design (paper §III):
//!
//! * **Memory registration is expensive** — buffers must be registered
//!   (pinned, translated) before any transfer; registration cost makes
//!   on-demand allocation infeasible, which is why the ring-buffer pool is
//!   allocated and registered once up front.
//! * **Asynchronous work-request operation** — transfers are initiated by
//!   posting [`WorkRequest`]s to a [`QueuePair`]; the RNIC processes them
//!   autonomously and signals [`Completion`]s through a completion queue.
//!   Posting costs a small, fixed amount of host CPU (the only host cost).
//! * **Zero copy** — payload crosses the memory bus exactly once per host;
//!   no host CPU cycles are spent on the payload itself.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::cpu::{CostCategory, CpuAccount, CpuSpec};
use crate::link::{Direction, Link, Reservation};
use crate::time::{SimDuration, SimTime};

/// Static cost parameters of an RNIC.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RnicConfig {
    /// Fixed cost of registering a memory region (syscalls, setup).
    pub registration_base: SimDuration,
    /// Additional registration cost per page (pinning, address translation).
    pub registration_per_page: SimDuration,
    /// Page size used for the per-page registration cost.
    pub page_size: u64,
    /// Host CPU cost of posting one work request.
    pub post_overhead: SimDuration,
    /// Host CPU cost charged per completion reaped from the CQ.
    pub completion_overhead: SimDuration,
    /// Memory-bus crossings per payload byte (1 with direct data placement).
    pub bus_crossings: u32,
}

impl RnicConfig {
    /// Model of the paper's Chelsio T3 iWARP RNIC.
    pub fn paper_t3() -> Self {
        RnicConfig {
            registration_base: SimDuration::from_micros(30),
            registration_per_page: SimDuration::from_nanos(300),
            page_size: 4096,
            post_overhead: SimDuration::from_nanos(300),
            completion_overhead: SimDuration::from_nanos(200),
            bus_crossings: 1,
        }
    }

    /// Host CPU time to register a region of `bytes`.
    pub fn registration_cost(&self, bytes: u64) -> SimDuration {
        let pages = bytes.div_ceil(self.page_size);
        self.registration_base + self.registration_per_page * pages
    }
}

impl Default for RnicConfig {
    fn default() -> Self {
        RnicConfig::paper_t3()
    }
}

/// Handle to a registered memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryRegionId(u64);

/// A registered memory region: the RNIC may DMA into/out of it without any
/// operating-system involvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryRegion {
    /// Identity of the region.
    pub id: MemoryRegionId,
    /// Length in bytes.
    pub len: u64,
    /// When registration finished.
    pub registered_at: SimTime,
}

/// A work request: "transfer `bytes` out of region `region`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkRequest {
    /// Caller-chosen identifier, echoed in the matching [`Completion`].
    pub wr_id: u64,
    /// Source region for the transfer.
    pub region: MemoryRegionId,
    /// Payload size.
    pub bytes: u64,
}

/// Signalled when a work request has fully executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// The `wr_id` of the completed request.
    pub wr_id: u64,
    /// Payload size of the completed transfer.
    pub bytes: u64,
    /// Virtual time at which the last byte arrived at the peer.
    pub completed_at: SimTime,
}

/// An RNIC attached to a host: owns registered regions and accounts the
/// (small) host CPU cost of driving it.
#[derive(Debug, Clone)]
pub struct Rnic {
    config: RnicConfig,
    next_region: u64,
    regions: Vec<MemoryRegion>,
    /// Host CPU spent on registration (setup-time cost).
    registration_cpu: SimDuration,
}

impl Rnic {
    /// Creates an RNIC with the given cost parameters.
    pub fn new(config: RnicConfig) -> Self {
        Rnic {
            config,
            next_region: 0,
            regions: Vec::new(),
            registration_cpu: SimDuration::ZERO,
        }
    }

    /// The RNIC's cost parameters.
    pub fn config(&self) -> &RnicConfig {
        &self.config
    }

    /// Registers a memory region of `bytes`, returning the region handle and
    /// the host CPU time the registration consumed.
    pub fn register(&mut self, now: SimTime, bytes: u64) -> (MemoryRegion, SimDuration) {
        let cost = self.config.registration_cost(bytes);
        self.registration_cpu += cost;
        let region = MemoryRegion {
            id: MemoryRegionId(self.next_region),
            len: bytes,
            registered_at: now + cost,
        };
        self.next_region += 1;
        self.regions.push(region);
        (region, cost)
    }

    /// Looks up a registered region.
    pub fn region(&self, id: MemoryRegionId) -> Option<&MemoryRegion> {
        self.regions.iter().find(|r| r.id == id)
    }

    /// Number of currently registered regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Total host CPU time spent registering memory so far.
    pub fn registration_cpu(&self) -> SimDuration {
        self.registration_cpu
    }
}

/// One side of an RDMA connection: a send queue bound to one direction of a
/// link, plus its completion queue.
///
/// The queue pair is an analytic resource in the same style as
/// [`Link`]: posting returns the completion time, and the caller schedules
/// its own event. Completions are also retained in an internal CQ so tests
/// can poll them in order.
#[derive(Debug, Clone, Default)]
pub struct QueuePair {
    outstanding: u64,
    completions: VecDeque<Completion>,
    posted: u64,
    bytes_posted: u64,
}

/// The outcome of posting a work request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostOutcome {
    /// Host CPU consumed by the post itself (charge to [`CostCategory::Driver`]).
    pub post_cpu: SimDuration,
    /// The link reservation backing the transfer.
    pub reservation: Reservation,
    /// The completion that will be signalled at `reservation.arrival`.
    pub completion: Completion,
}

impl QueuePair {
    /// Creates an idle queue pair.
    pub fn new() -> Self {
        QueuePair::default()
    }

    /// Posts `wr` for transmission over `link` in direction `dir` at `now`.
    ///
    /// Returns the host CPU cost of posting and the reservation; the caller
    /// must call [`QueuePair::complete`] when the arrival time is reached
    /// (i.e. when its completion event fires).
    ///
    /// # Panics
    ///
    /// Panics if `wr.bytes` exceeds the registered region's length — an
    /// RNIC refuses DMA outside registered memory.
    pub fn post_send(
        &mut self,
        rnic: &Rnic,
        link: &mut Link,
        now: SimTime,
        dir: Direction,
        wr: WorkRequest,
    ) -> PostOutcome {
        let region = rnic
            .region(wr.region)
            .expect("post_send: unknown memory region");
        assert!(
            wr.bytes <= region.len,
            "post_send: work request of {} bytes exceeds region of {} bytes",
            wr.bytes,
            region.len
        );
        let reservation = link.reserve(now, dir, wr.bytes);
        self.outstanding += 1;
        self.posted += 1;
        self.bytes_posted += wr.bytes;
        PostOutcome {
            post_cpu: rnic.config().post_overhead,
            reservation,
            completion: Completion {
                wr_id: wr.wr_id,
                bytes: wr.bytes,
                completed_at: reservation.arrival,
            },
        }
    }

    /// Records `completion` in the CQ (called when its event fires).
    pub fn complete(&mut self, completion: Completion) {
        assert!(
            self.outstanding > 0,
            "complete: completion without an outstanding work request"
        );
        self.outstanding -= 1;
        self.completions.push_back(completion);
    }

    /// Polls the completion queue, FIFO.
    pub fn poll_cq(&mut self) -> Option<Completion> {
        self.completions.pop_front()
    }

    /// Work requests posted but not yet completed.
    pub fn outstanding(&self) -> u64 {
        self.outstanding
    }

    /// Total work requests posted over the queue pair's lifetime.
    pub fn posted(&self) -> u64 {
        self.posted
    }

    /// Total payload bytes posted.
    pub fn bytes_posted(&self) -> u64 {
        self.bytes_posted
    }
}

/// Per-transfer host-CPU account for RDMA: a tiny driver charge per work
/// request and nothing per byte. Compare [`TcpModel::breakdown`].
///
/// [`TcpModel::breakdown`]: crate::tcp::TcpModel::breakdown
pub fn rdma_transfer_account(config: &RnicConfig, work_requests: u64) -> CpuAccount {
    let mut acc = CpuAccount::new();
    acc.charge(
        CostCategory::Driver,
        (config.post_overhead + config.completion_overhead) * work_requests,
    );
    acc
}

/// RDMA's per-byte CPU cost expressed against a CPU spec, for comparison
/// with the TCP rule of thumb. Depends on the message size: bigger chunks
/// amortize the posting cost over more bytes.
pub fn rdma_cycles_per_byte(config: &RnicConfig, spec: CpuSpec, chunk: u64) -> f64 {
    let per_wr = (config.post_overhead + config.completion_overhead).as_secs_f64();
    per_wr * spec.ghz * 1e9 / chunk as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::throughput::{Bandwidth, ChunkThroughput};

    fn test_link() -> Link {
        Link::new(
            ChunkThroughput::new(Bandwidth::from_bytes_per_sec(1e9), SimDuration::ZERO),
            SimDuration::from_micros(1),
        )
    }

    #[test]
    fn registration_cost_scales_with_pages() {
        let cfg = RnicConfig::paper_t3();
        let one_page = cfg.registration_cost(1);
        let many_pages = cfg.registration_cost(100 * 4096);
        assert_eq!(one_page, cfg.registration_base + cfg.registration_per_page);
        assert_eq!(
            many_pages,
            cfg.registration_base + cfg.registration_per_page * 100
        );
    }

    #[test]
    fn register_accumulates_cpu_and_regions() {
        let mut rnic = Rnic::new(RnicConfig::paper_t3());
        let (r1, c1) = rnic.register(SimTime::ZERO, 1 << 20);
        let (r2, c2) = rnic.register(SimTime::ZERO, 1 << 20);
        assert_ne!(r1.id, r2.id);
        assert_eq!(rnic.region_count(), 2);
        assert_eq!(rnic.registration_cpu(), c1 + c2);
        assert!(rnic.region(r1.id).is_some());
    }

    #[test]
    fn post_send_reserves_link_and_completes() {
        let mut rnic = Rnic::new(RnicConfig::paper_t3());
        let mut link = test_link();
        let mut qp = QueuePair::new();
        let (region, _) = rnic.register(SimTime::ZERO, 1 << 20);
        let wr = WorkRequest {
            wr_id: 7,
            region: region.id,
            bytes: 1_000_000,
        };
        let out = qp.post_send(&rnic, &mut link, SimTime::ZERO, Direction::Forward, wr);
        assert_eq!(out.post_cpu, rnic.config().post_overhead);
        assert_eq!(qp.outstanding(), 1);
        assert_eq!(out.completion.wr_id, 7);
        assert_eq!(out.completion.completed_at, out.reservation.arrival);

        qp.complete(out.completion);
        assert_eq!(qp.outstanding(), 0);
        assert_eq!(qp.poll_cq().unwrap().wr_id, 7);
        assert!(qp.poll_cq().is_none());
    }

    #[test]
    #[should_panic(expected = "exceeds region")]
    fn oversized_work_request_rejected() {
        let mut rnic = Rnic::new(RnicConfig::paper_t3());
        let mut link = test_link();
        let mut qp = QueuePair::new();
        let (region, _) = rnic.register(SimTime::ZERO, 1024);
        let wr = WorkRequest {
            wr_id: 0,
            region: region.id,
            bytes: 2048,
        };
        qp.post_send(&rnic, &mut link, SimTime::ZERO, Direction::Forward, wr);
    }

    #[test]
    fn rdma_account_is_driver_only_and_tiny() {
        let cfg = RnicConfig::paper_t3();
        let acc = rdma_transfer_account(&cfg, 10);
        assert_eq!(acc.busy(CostCategory::DataCopy), SimDuration::ZERO);
        assert_eq!(acc.busy(CostCategory::NetworkStack), SimDuration::ZERO);
        assert!(acc.busy(CostCategory::Driver) > SimDuration::ZERO);
        // Ten 1 MB messages cost 5 µs of CPU; kernel TCP would cost ~30 ms.
        assert!(acc.total_busy() < SimDuration::from_micros(10));
    }

    #[test]
    fn rdma_cycles_per_byte_amortize_with_chunk_size() {
        let cfg = RnicConfig::paper_t3();
        let spec = CpuSpec::paper_xeon();
        let small = rdma_cycles_per_byte(&cfg, spec, 4 << 10);
        let big = rdma_cycles_per_byte(&cfg, spec, 1 << 20);
        assert!(big < small);
        // At 1 MB chunks RDMA costs well under 0.01 cycles/byte vs TCP's 8.
        assert!(big < 0.01, "got {big}");
    }

    #[test]
    fn queue_pair_statistics() {
        let mut rnic = Rnic::new(RnicConfig::paper_t3());
        let mut link = test_link();
        let mut qp = QueuePair::new();
        let (region, _) = rnic.register(SimTime::ZERO, 1 << 20);
        for i in 0..3 {
            let out = qp.post_send(
                &rnic,
                &mut link,
                SimTime::ZERO,
                Direction::Forward,
                WorkRequest {
                    wr_id: i,
                    region: region.id,
                    bytes: 100,
                },
            );
            qp.complete(out.completion);
        }
        assert_eq!(qp.posted(), 3);
        assert_eq!(qp.bytes_posted(), 300);
    }
}
