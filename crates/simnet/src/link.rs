//! Point-to-point link model with FIFO occupancy.
//!
//! A [`Link`] is a full-duplex pipe between two hosts. Each direction
//! serializes messages one after another (a message occupies the wire for
//! its serialization time), then the message propagates for a fixed latency.
//! Callers *reserve* capacity: [`Link::reserve`] returns when the transfer
//! starts and when the last byte arrives at the receiver, and advances the
//! link's internal busy-until marker. The caller is responsible for
//! scheduling its own completion event at the returned arrival time — the
//! link itself is a passive analytic resource, which keeps the event count
//! (and thus simulation cost) at one event per transfer.

use serde::{Deserialize, Serialize};

use crate::throughput::ChunkThroughput;
use crate::time::{SimDuration, SimTime};

/// Direction of travel over a full-duplex link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// From the link's A endpoint to its B endpoint.
    Forward,
    /// From the link's B endpoint to its A endpoint.
    Backward,
}

/// The outcome of reserving link capacity for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// When the first byte enters the wire (≥ the requested time if queued).
    pub start: SimTime,
    /// When the sender-side NIC is done serializing and can accept the next
    /// message in this direction.
    pub wire_free: SimTime,
    /// When the last byte has arrived at the receiver.
    pub arrival: SimTime,
}

impl Reservation {
    /// Total time from request to arrival at the receiver.
    pub fn total_from(&self, requested: SimTime) -> SimDuration {
        self.arrival.saturating_duration_since(requested)
    }
}

/// A full-duplex point-to-point link with per-direction FIFO serialization.
///
/// ```
/// use simnet::link::{Direction, Link};
/// use simnet::time::SimTime;
///
/// let mut link = Link::paper_10gbe();
/// let r = link.reserve(SimTime::ZERO, Direction::Forward, 16 << 20);
/// // 16 MB at ~1.25 GB/s arrives after ≈13.4 ms.
/// assert!((0.012..0.015).contains(&r.arrival.as_secs_f64()));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    throughput: ChunkThroughput,
    latency: SimDuration,
    busy_until_fwd: SimTime,
    busy_until_bwd: SimTime,
    bytes_fwd: u64,
    bytes_bwd: u64,
    messages: u64,
}

impl Link {
    /// Creates an idle link with the given goodput model and propagation latency.
    pub fn new(throughput: ChunkThroughput, latency: SimDuration) -> Self {
        Link {
            throughput,
            latency,
            busy_until_fwd: SimTime::ZERO,
            busy_until_bwd: SimTime::ZERO,
            bytes_fwd: 0,
            bytes_bwd: 0,
            messages: 0,
        }
    }

    /// The paper's testbed link: 10 GbE with a few microseconds of latency.
    pub fn paper_10gbe() -> Self {
        Link::new(ChunkThroughput::paper_10gbe(), SimDuration::from_micros(5))
    }

    /// The goodput model in force on this link.
    pub fn throughput(&self) -> ChunkThroughput {
        self.throughput
    }

    /// One-way propagation latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Total payload bytes that have crossed the link in `dir`.
    pub fn bytes_transferred(&self, dir: Direction) -> u64 {
        match dir {
            Direction::Forward => self.bytes_fwd,
            Direction::Backward => self.bytes_bwd,
        }
    }

    /// Total messages reserved across both directions.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// When the wire in `dir` becomes free for a new message.
    pub fn busy_until(&self, dir: Direction) -> SimTime {
        match dir {
            Direction::Forward => self.busy_until_fwd,
            Direction::Backward => self.busy_until_bwd,
        }
    }

    /// Reserves the wire in `dir` for a message of `bytes`, requested at `now`.
    ///
    /// The message starts when the wire frees up (FIFO behind earlier
    /// reservations), occupies it for its serialization time, and arrives a
    /// propagation latency after the last byte left.
    pub fn reserve(&mut self, now: SimTime, dir: Direction, bytes: u64) -> Reservation {
        let busy_until = match dir {
            Direction::Forward => &mut self.busy_until_fwd,
            Direction::Backward => &mut self.busy_until_bwd,
        };
        let start = if *busy_until > now { *busy_until } else { now };
        let wire_free = start + self.throughput.transfer_time(bytes);
        *busy_until = wire_free;
        match dir {
            Direction::Forward => self.bytes_fwd += bytes,
            Direction::Backward => self.bytes_bwd += bytes,
        }
        self.messages += 1;
        Reservation {
            start,
            wire_free,
            arrival: wire_free + self.latency,
        }
    }

    /// Achieved goodput in `dir` over the window ending at `now`, assuming
    /// the link has been in use since `since`.
    pub fn achieved_goodput(&self, dir: Direction, since: SimTime, now: SimTime) -> f64 {
        let window = now.saturating_duration_since(since).as_secs_f64();
        if window == 0.0 {
            return 0.0;
        }
        self.bytes_transferred(dir) as f64 / window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::throughput::Bandwidth;

    fn test_link() -> Link {
        // 1 GB/s, zero per-message overhead, 1 µs latency: easy arithmetic.
        Link::new(
            ChunkThroughput::new(Bandwidth::from_bytes_per_sec(1e9), SimDuration::ZERO),
            SimDuration::from_micros(1),
        )
    }

    #[test]
    fn idle_link_starts_immediately() {
        let mut link = test_link();
        let r = link.reserve(SimTime::from_nanos(500), Direction::Forward, 1_000);
        assert_eq!(r.start, SimTime::from_nanos(500));
        // 1000 B at 1 GB/s = 1 µs serialization.
        assert_eq!(r.wire_free, SimTime::from_nanos(1_500));
        assert_eq!(r.arrival, SimTime::from_nanos(2_500));
    }

    #[test]
    fn back_to_back_messages_queue_fifo() {
        let mut link = test_link();
        let r1 = link.reserve(SimTime::ZERO, Direction::Forward, 1_000);
        let r2 = link.reserve(SimTime::ZERO, Direction::Forward, 1_000);
        assert_eq!(r2.start, r1.wire_free);
        assert_eq!(r2.arrival, r1.arrival + SimDuration::from_micros(1));
    }

    #[test]
    fn directions_are_independent() {
        let mut link = test_link();
        let fwd = link.reserve(SimTime::ZERO, Direction::Forward, 1_000_000);
        let bwd = link.reserve(SimTime::ZERO, Direction::Backward, 1_000);
        assert_eq!(
            bwd.start,
            SimTime::ZERO,
            "backward dir must not queue behind forward"
        );
        assert!(bwd.arrival < fwd.arrival);
    }

    #[test]
    fn byte_and_message_accounting() {
        let mut link = test_link();
        link.reserve(SimTime::ZERO, Direction::Forward, 100);
        link.reserve(SimTime::ZERO, Direction::Forward, 200);
        link.reserve(SimTime::ZERO, Direction::Backward, 50);
        assert_eq!(link.bytes_transferred(Direction::Forward), 300);
        assert_eq!(link.bytes_transferred(Direction::Backward), 50);
        assert_eq!(link.messages(), 3);
    }

    #[test]
    fn reservation_total_from_includes_queueing() {
        let mut link = test_link();
        link.reserve(SimTime::ZERO, Direction::Forward, 2_000);
        let r = link.reserve(SimTime::ZERO, Direction::Forward, 1_000);
        // Queued 2 µs, serialized 1 µs, latency 1 µs.
        assert_eq!(r.total_from(SimTime::ZERO), SimDuration::from_micros(4));
    }

    #[test]
    fn late_request_on_idle_wire_does_not_wait() {
        let mut link = test_link();
        link.reserve(SimTime::ZERO, Direction::Forward, 1_000);
        let r = link.reserve(SimTime::from_nanos(100_000), Direction::Forward, 1_000);
        assert_eq!(r.start, SimTime::from_nanos(100_000));
    }

    #[test]
    fn achieved_goodput_reflects_transfers() {
        let mut link = test_link();
        let r = link.reserve(SimTime::ZERO, Direction::Forward, 1_000_000);
        let g = link.achieved_goodput(Direction::Forward, SimTime::ZERO, r.wire_free);
        assert!((g - 1e9).abs() / 1e9 < 0.01);
    }
}
