//! The discrete-event simulation engine.
//!
//! A [`Simulation`] owns a virtual clock and an [`EventQueue`]. Client code
//! (e.g. the Data Roundabout simulation backend) defines its own event type
//! `E`, seeds the queue, and drives the simulation with a handler that may
//! schedule further events:
//!
//! ```
//! use simnet::engine::Simulation;
//! use simnet::time::SimDuration;
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32), Done }
//!
//! let mut sim = Simulation::new();
//! sim.schedule_in(SimDuration::ZERO, Ev::Ping(0));
//! sim.run(|sim, ev| match ev {
//!     Ev::Ping(n) if n < 3 => {
//!         sim.schedule_in(SimDuration::from_micros(10), Ev::Ping(n + 1));
//!     }
//!     Ev::Ping(_) => sim.schedule_in(SimDuration::ZERO, Ev::Done),
//!     Ev::Done => {}
//! });
//! assert_eq!(sim.now().as_nanos(), 30_000);
//! ```
//!
//! The run loop is single-threaded and deterministic; see
//! [`EventQueue`] for the ordering guarantees.

use crate::event::EventQueue;
use crate::time::{SimDuration, SimTime};

/// A discrete-event simulation over a client-defined event type `E`.
#[derive(Debug)]
pub struct Simulation<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
    limit: Option<u64>,
}

impl<E> Simulation<E> {
    /// Creates a simulation with the clock at [`SimTime::ZERO`] and no events.
    pub fn new() -> Self {
        Simulation {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
            limit: None,
        }
    }

    /// Caps the total number of events processed by [`Simulation::run`].
    ///
    /// Exceeding the cap makes `run` panic — this is a guard against
    /// accidentally non-terminating event cascades in tests, not a
    /// production control knob.
    pub fn with_event_limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at the absolute virtual time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the simulated past (`at < self.now()`);
    /// scheduling *at* the current instant is allowed.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "schedule_at: cannot schedule into the past ({} < {})",
            at,
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Removes and returns the next event, advancing the clock to its due time.
    pub fn step(&mut self) -> Option<E> {
        let (time, event) = self.queue.pop()?;
        debug_assert!(
            time >= self.now,
            "event queue produced an out-of-order event"
        );
        self.now = time;
        self.processed += 1;
        if let Some(limit) = self.limit {
            assert!(
                self.processed <= limit,
                "simulation exceeded its event limit of {limit} events — \
                 likely a non-terminating event cascade"
            );
        }
        Some(event)
    }

    /// Runs the simulation to quiescence: pops events in order, advancing the
    /// clock, and hands each to `handler` (which may schedule more events).
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Simulation<E>, E),
    {
        while let Some(event) = self.step() {
            handler(self, event);
        }
    }

    /// Like [`Simulation::run`] but stops (without processing further events)
    /// once the clock would pass `deadline`. Events due exactly at the
    /// deadline are still processed. Returns `true` if the queue drained
    /// before the deadline.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F) -> bool
    where
        F: FnMut(&mut Simulation<E>, E),
    {
        loop {
            match self.queue.peek_time() {
                None => return true,
                Some(t) if t > deadline => return false,
                Some(_) => {
                    let event = self.step().expect("peeked event must pop");
                    handler(self, event);
                }
            }
        }
    }
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Simulation::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_to_event_times() {
        let mut sim: Simulation<u32> = Simulation::new();
        sim.schedule_at(SimTime::from_nanos(100), 1);
        sim.schedule_at(SimTime::from_nanos(50), 2);
        assert_eq!(sim.step(), Some(2));
        assert_eq!(sim.now(), SimTime::from_nanos(50));
        assert_eq!(sim.step(), Some(1));
        assert_eq!(sim.now(), SimTime::from_nanos(100));
        assert_eq!(sim.step(), None);
    }

    #[test]
    fn handler_can_schedule_followups() {
        let mut sim: Simulation<u32> = Simulation::new();
        sim.schedule_in(SimDuration::from_nanos(1), 0);
        let mut seen = Vec::new();
        sim.run(|sim, n| {
            seen.push((sim.now().as_nanos(), n));
            if n < 4 {
                sim.schedule_in(SimDuration::from_nanos(10), n + 1);
            }
        });
        assert_eq!(seen, vec![(1, 0), (11, 1), (21, 2), (31, 3), (41, 4)]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim: Simulation<()> = Simulation::new();
        sim.schedule_at(SimTime::from_nanos(10), ());
        sim.step();
        sim.schedule_at(SimTime::from_nanos(5), ());
    }

    #[test]
    fn zero_delay_events_run_at_current_instant() {
        let mut sim: Simulation<&str> = Simulation::new();
        sim.schedule_at(SimTime::from_nanos(10), "first");
        let mut order = Vec::new();
        sim.run(|sim, ev| {
            order.push(ev);
            if ev == "first" {
                sim.schedule_in(SimDuration::ZERO, "second");
            }
        });
        assert_eq!(order, vec!["first", "second"]);
        assert_eq!(sim.now(), SimTime::from_nanos(10));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim: Simulation<u64> = Simulation::new();
        for t in [10u64, 20, 30, 40] {
            sim.schedule_at(SimTime::from_nanos(t), t);
        }
        let mut seen = Vec::new();
        let drained = sim.run_until(SimTime::from_nanos(20), |_, e| seen.push(e));
        assert!(!drained);
        assert_eq!(seen, vec![10, 20]);
        assert_eq!(sim.pending(), 2);
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_runaway_cascades() {
        let mut sim: Simulation<()> = Simulation::new().with_event_limit(100);
        sim.schedule_in(SimDuration::from_nanos(1), ());
        sim.run(|sim, ()| sim.schedule_in(SimDuration::from_nanos(1), ()));
    }

    #[test]
    fn events_processed_counts() {
        let mut sim: Simulation<u8> = Simulation::new();
        for _ in 0..5 {
            sim.schedule_in(SimDuration::ZERO, 0);
        }
        sim.run(|_, _| {});
        assert_eq!(sim.events_processed(), 5);
    }
}
