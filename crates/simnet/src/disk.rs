//! Commodity hard-disk model — the baseline the Data Roundabout replaces.
//!
//! The paper's footnote 1 (§II-C): "The latest Seagate Barracuda drive
//! offers up to 120 MB/s at a latency of a few milliseconds. A 10 Gigabit
//! Ethernet, on the other hand, provides about 1200 MB/s with a latency
//! in the order of a few microseconds." Keeping the hot set in distributed
//! main memory is preferable to local disk because the interconnect beats
//! the disk by an order of magnitude in throughput and by three in
//! latency — this module prices that baseline so benchmarks can show it.

use serde::{Deserialize, Serialize};

use crate::throughput::Bandwidth;
use crate::time::SimDuration;

/// A sequential-access commodity disk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskModel {
    /// Sustained sequential bandwidth.
    pub bandwidth: Bandwidth,
    /// Access (seek + rotational) latency paid once per request.
    pub access_latency: SimDuration,
}

impl DiskModel {
    /// The paper's reference drive: 120 MB/s, a few milliseconds of latency.
    pub fn paper_barracuda() -> Self {
        DiskModel {
            bandwidth: Bandwidth::from_mb_per_sec(120.0),
            access_latency: SimDuration::from_millis(4),
        }
    }

    /// Time to read `bytes` sequentially in one request.
    pub fn read_time(&self, bytes: u64) -> SimDuration {
        self.access_latency + self.bandwidth.transfer_time(bytes)
    }

    /// Time to read `bytes` split into `requests` separate accesses
    /// (each pays the access latency).
    pub fn read_time_chunked(&self, bytes: u64, requests: u64) -> SimDuration {
        let requests = requests.max(1);
        self.bandwidth.transfer_time(bytes) + self.access_latency * requests
    }

    /// Effective throughput when reading in chunks of `chunk` bytes.
    pub fn effective_bandwidth(&self, chunk: u64) -> Bandwidth {
        let t = self.read_time(chunk).as_secs_f64();
        Bandwidth::from_bytes_per_sec((chunk as f64 / t).max(f64::MIN_POSITIVE))
    }
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel::paper_barracuda()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_read_time() {
        let disk = DiskModel::paper_barracuda();
        // 120 MB at 120 MB/s ≈ 1 s + 4 ms seek.
        let t = disk.read_time(120_000_000).as_secs_f64();
        assert!((t - 1.004).abs() < 1e-6, "got {t}");
    }

    #[test]
    fn chunked_reads_pay_latency_per_request() {
        let disk = DiskModel::paper_barracuda();
        let whole = disk.read_time_chunked(120_000_000, 1);
        let chopped = disk.read_time_chunked(120_000_000, 1000);
        assert!(chopped.as_secs_f64() - whole.as_secs_f64() > 3.9);
    }

    #[test]
    fn paper_footnote_comparison_holds() {
        // 10 GbE beats the disk ≈10× in throughput and ≫100× in latency.
        let disk = DiskModel::paper_barracuda();
        let net = Bandwidth::from_gbit_per_sec(10.0);
        let ratio = net.bytes_per_sec() / disk.bandwidth.bytes_per_sec();
        assert!((9.0..12.0).contains(&ratio), "throughput ratio {ratio}");
        assert!(disk.access_latency > SimDuration::from_micros(500));
    }

    #[test]
    fn small_random_reads_collapse_throughput() {
        let disk = DiskModel::paper_barracuda();
        let eff = disk.effective_bandwidth(4096);
        assert!(
            eff.bytes_per_sec() < 2e6,
            "4 kB random reads should crawl, got {} B/s",
            eff.bytes_per_sec()
        );
    }
}
