//! Deterministic event queue for the discrete-event engine.
//!
//! Events are ordered by `(time, sequence number)`: ties in virtual time are
//! broken by insertion order, so a simulation is a pure function of its
//! inputs — no hash-map iteration order or thread scheduling can leak in.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled entry in the queue: an event of type `E` due at `time`.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of future events, ordered by time with FIFO tie-breaking.
///
/// ```
/// use simnet::event::EventQueue;
/// use simnet::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(20), "late");
/// q.push(SimTime::from_nanos(10), "early");
/// q.push(SimTime::from_nanos(10), "early-second");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute virtual time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, together with its due time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The due time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[30u64, 10, 20, 5, 25] {
            q.push(SimTime::from_nanos(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, vec![5, 10, 20, 25, 30]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(42);
        for i in 0..100 {
            q.push(t, i);
        }
        let mut out = Vec::new();
        while let Some((_, e)) = q.pop() {
            out.push(e);
        }
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(7), ());
        q.push(SimTime::from_nanos(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.push(SimTime::from_nanos(1), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "a");
    }
}
