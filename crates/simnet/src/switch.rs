//! The physical star: a switch fabric carrying the logical ring.
//!
//! The Data Roundabout is a *logical* ring "currently implemented using a
//! star-shaped physical network" (§II-C) — every host connects to one
//! switch (the paper's Nortel 10 GbE switch module), and each ring hop is
//! an uplink into the fabric plus a downlink out of it. With a
//! non-blocking fabric this is indistinguishable from dedicated
//! point-to-point links (which is why the rest of the simulator models
//! hops directly); with an oversubscribed backplane, hops contend — this
//! module makes that distinction testable.

use crate::link::Reservation;
use crate::throughput::{Bandwidth, ChunkThroughput};
use crate::time::{SimDuration, SimTime};
use crate::topology::HostId;

/// A switch fabric with per-port links and an aggregate backplane budget.
#[derive(Debug, Clone)]
pub struct SwitchFabric {
    ports: usize,
    port_model: ChunkThroughput,
    latency: SimDuration,
    /// Aggregate fabric capacity in bytes/second. A non-blocking switch
    /// has `ports × port-rate`; oversubscribed fabrics have less.
    backplane: Bandwidth,
    /// Per-port wire occupancy (uplink of the sending host).
    uplink_busy: Vec<SimTime>,
    /// Per-port wire occupancy (downlink of the receiving host).
    downlink_busy: Vec<SimTime>,
    /// Fabric-wide serialization point for the backplane budget.
    backplane_busy: SimTime,
    bytes_switched: u64,
}

impl SwitchFabric {
    /// A fabric of `ports` ports, each running `port_model`, with the
    /// given one-way latency and backplane capacity.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(
        ports: usize,
        port_model: ChunkThroughput,
        latency: SimDuration,
        backplane: Bandwidth,
    ) -> Self {
        assert!(ports > 0, "a switch needs at least one port");
        SwitchFabric {
            ports,
            port_model,
            latency,
            backplane,
            uplink_busy: vec![SimTime::ZERO; ports],
            downlink_busy: vec![SimTime::ZERO; ports],
            backplane_busy: SimTime::ZERO,
            bytes_switched: 0,
        }
    }

    /// A non-blocking switch in the paper's style: the backplane carries
    /// every port at full rate simultaneously.
    pub fn non_blocking(ports: usize) -> Self {
        let model = ChunkThroughput::paper_10gbe();
        let aggregate = Bandwidth::from_bytes_per_sec(model.peak().bytes_per_sec() * ports as f64);
        SwitchFabric::new(ports, model, SimDuration::from_micros(5), aggregate)
    }

    /// An oversubscribed switch whose backplane carries only `factor` of
    /// the sum of port rates (`factor < 1`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    pub fn oversubscribed(ports: usize, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "oversubscription factor must be in (0, 1], got {factor}"
        );
        let model = ChunkThroughput::paper_10gbe();
        let aggregate =
            Bandwidth::from_bytes_per_sec(model.peak().bytes_per_sec() * ports as f64 * factor);
        SwitchFabric::new(ports, model, SimDuration::from_micros(5), aggregate)
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Total bytes that have crossed the fabric.
    pub fn bytes_switched(&self) -> u64 {
        self.bytes_switched
    }

    /// Reserves a transfer of `bytes` from `from` to `to` at `now`.
    ///
    /// The transfer serializes on three resources in order: the sender's
    /// uplink, the backplane share, and the receiver's downlink. With a
    /// non-blocking backplane the middle stage never delays anything.
    ///
    /// # Panics
    ///
    /// Panics if either port index is out of range or `from == to`.
    pub fn reserve(&mut self, now: SimTime, from: HostId, to: HostId, bytes: u64) -> Reservation {
        assert!(
            from.0 < self.ports && to.0 < self.ports,
            "port out of range"
        );
        assert_ne!(from, to, "a host does not switch traffic to itself");
        let wire = self.port_model.transfer_time(bytes);

        // Uplink: the sender's port.
        let up_start = self.uplink_busy[from.0].max(now);
        let up_free = up_start + wire;
        self.uplink_busy[from.0] = up_free;

        // Backplane: a fabric-wide budget. Time to move `bytes` through
        // the shared fabric; a non-blocking fabric is so fast per byte
        // that this never becomes the bottleneck.
        let bp_time = self.backplane.transfer_time(bytes);
        let bp_start = self.backplane_busy.max(up_start);
        let bp_free = bp_start + bp_time;
        self.backplane_busy = bp_free;

        // Downlink: the receiver's port; cannot finish before both the
        // uplink serialization and the backplane stage are done.
        let down_start = self.downlink_busy[to.0].max(up_start);
        let down_free = down_start + wire;
        self.downlink_busy[to.0] = down_free;

        let last = up_free.max(bp_free).max(down_free);
        self.bytes_switched += bytes;
        Reservation {
            start: up_start,
            wire_free: up_free,
            arrival: last + self.latency,
        }
    }
}

/// Checks whether a fabric behaves as non-blocking for a ring workload:
/// every host forwarding `bytes` to its clockwise neighbor simultaneously
/// should complete in (approximately) one port-serialization time.
pub fn ring_hop_completion(fabric: &mut SwitchFabric, bytes: u64) -> SimDuration {
    let ports = fabric.ports();
    let mut latest = SimTime::ZERO;
    for p in 0..ports {
        let r = fabric.reserve(SimTime::ZERO, HostId(p), HostId((p + 1) % ports), bytes);
        latest = latest.max(r.arrival);
    }
    latest.saturating_duration_since(SimTime::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_blocking_star_equals_dedicated_links() {
        // All six hosts forward 16 MB clockwise at once: a non-blocking
        // fabric completes in one wire time + latency, like the direct
        // ring links the simulator normally uses.
        let mut fabric = SwitchFabric::non_blocking(6);
        let bytes = 16 << 20;
        let completion = ring_hop_completion(&mut fabric, bytes);
        let direct =
            ChunkThroughput::paper_10gbe().transfer_time(bytes) + SimDuration::from_micros(5);
        let ratio = completion.as_secs_f64() / direct.as_secs_f64();
        assert!(
            (0.99..1.30).contains(&ratio),
            "non-blocking star should match direct links, ratio {ratio}"
        );
    }

    #[test]
    fn oversubscription_slows_the_ring() {
        let bytes = 16 << 20;
        let full = ring_hop_completion(&mut SwitchFabric::non_blocking(6), bytes);
        let half = ring_hop_completion(&mut SwitchFabric::oversubscribed(6, 0.5), bytes);
        let quarter = ring_hop_completion(&mut SwitchFabric::oversubscribed(6, 0.25), bytes);
        assert!(half > full);
        assert!(quarter > half);
        // At 4:1 oversubscription the fabric is ≈4× slower for all-to-all
        // simultaneous forwarding.
        let ratio = quarter.as_secs_f64() / full.as_secs_f64();
        assert!((2.5..5.0).contains(&ratio), "got {ratio}");
    }

    #[test]
    fn ports_serialize_their_own_traffic() {
        let mut fabric = SwitchFabric::non_blocking(4);
        let a = fabric.reserve(SimTime::ZERO, HostId(0), HostId(1), 1 << 20);
        let b = fabric.reserve(SimTime::ZERO, HostId(0), HostId(2), 1 << 20);
        assert_eq!(b.start, a.wire_free, "same uplink must serialize");
        let c = fabric.reserve(SimTime::ZERO, HostId(3), HostId(2), 1 << 20);
        assert_eq!(c.start, SimTime::ZERO, "different uplink starts at once");
        assert!(c.arrival > b.start, "shared downlink must queue");
    }

    #[test]
    fn byte_accounting() {
        let mut fabric = SwitchFabric::non_blocking(3);
        fabric.reserve(SimTime::ZERO, HostId(0), HostId(1), 100);
        fabric.reserve(SimTime::ZERO, HostId(1), HostId(2), 200);
        assert_eq!(fabric.bytes_switched(), 300);
    }

    #[test]
    #[should_panic(expected = "does not switch traffic to itself")]
    fn self_traffic_rejected() {
        let mut fabric = SwitchFabric::non_blocking(2);
        fabric.reserve(SimTime::ZERO, HostId(0), HostId(0), 1);
    }
}
