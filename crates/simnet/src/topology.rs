//! Ring topology: hosts connected clockwise by point-to-point links.
//!
//! Host `i` forwards to host `(i + 1) % n` over link `i` (paper Figure 1 —
//! the physical network was a star through a switch, but the logical
//! structure is the ring, and each host only ever talks to its direct
//! neighbors).

use serde::{Deserialize, Serialize};

use crate::link::{Direction, Link, Reservation};
use crate::time::SimTime;

/// Identifier of a host in the ring, `0 .. n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub usize);

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "H{}", self.0)
    }
}

/// A ring of `n` hosts with a clockwise link between each adjacent pair.
#[derive(Debug, Clone)]
pub struct RingNetwork {
    links: Vec<Link>,
}

impl RingNetwork {
    /// Builds a ring of `hosts` nodes, cloning `link` for every hop.
    ///
    /// A single-host "ring" has no links: rotation degenerates to the local
    /// case, which the simulator handles without special-casing callers.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is zero.
    pub fn new(hosts: usize, link: Link) -> Self {
        assert!(hosts > 0, "a ring needs at least one host");
        let links = if hosts == 1 {
            Vec::new()
        } else {
            vec![link; hosts]
        };
        RingNetwork { links }
    }

    /// Number of hosts in the ring.
    pub fn hosts(&self) -> usize {
        if self.links.is_empty() {
            1
        } else {
            self.links.len()
        }
    }

    /// The clockwise successor of `host`.
    pub fn next(&self, host: HostId) -> HostId {
        HostId((host.0 + 1) % self.hosts())
    }

    /// The clockwise predecessor of `host`.
    pub fn prev(&self, host: HostId) -> HostId {
        HostId((host.0 + self.hosts() - 1) % self.hosts())
    }

    /// The link carrying traffic from `host` to its successor, if any.
    pub fn outgoing_link(&self, host: HostId) -> Option<&Link> {
        self.links.get(host.0)
    }

    /// Mutable access to the link out of `host`, for callers that drive
    /// transfers through an RNIC queue pair instead of [`RingNetwork::reserve_hop`].
    pub fn outgoing_link_mut(&mut self, host: HostId) -> Option<&mut Link> {
        self.links.get_mut(host.0)
    }

    /// Reserves the clockwise hop out of `from` for `bytes`, at `now`.
    ///
    /// # Panics
    ///
    /// Panics on a single-host ring (there is no link to reserve) or if
    /// `from` is out of range.
    pub fn reserve_hop(&mut self, now: SimTime, from: HostId, bytes: u64) -> Reservation {
        assert!(
            !self.links.is_empty(),
            "reserve_hop: a single-host ring has no links"
        );
        let link = self
            .links
            .get_mut(from.0)
            .expect("reserve_hop: host out of range");
        link.reserve(now, Direction::Forward, bytes)
    }

    /// Reserves the *backward* direction of the hop out of `from` for a
    /// small control message (acknowledgements travel against the data
    /// flow on the full-duplex link, so they never contend with payload
    /// transfers).
    ///
    /// # Panics
    ///
    /// Panics on a single-host ring or if `from` is out of range.
    pub fn reserve_hop_back(&mut self, now: SimTime, from: HostId, bytes: u64) -> Reservation {
        assert!(
            !self.links.is_empty(),
            "reserve_hop_back: a single-host ring has no links"
        );
        let link = self
            .links
            .get_mut(from.0)
            .expect("reserve_hop_back: host out of range");
        link.reserve(now, Direction::Backward, bytes)
    }

    /// Total bytes that crossed the hop out of `from`.
    pub fn hop_bytes(&self, from: HostId) -> u64 {
        self.links
            .get(from.0)
            .map_or(0, |l| l.bytes_transferred(Direction::Forward))
    }

    /// Iterator over all host ids in the ring.
    pub fn host_ids(&self) -> impl Iterator<Item = HostId> {
        (0..self.hosts()).map(HostId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn ring_wraps_around() {
        let ring = RingNetwork::new(6, Link::paper_10gbe());
        assert_eq!(ring.next(HostId(0)), HostId(1));
        assert_eq!(ring.next(HostId(5)), HostId(0));
        assert_eq!(ring.prev(HostId(0)), HostId(5));
        assert_eq!(ring.prev(HostId(3)), HostId(2));
    }

    #[test]
    fn single_host_ring_has_no_links() {
        let ring = RingNetwork::new(1, Link::paper_10gbe());
        assert_eq!(ring.hosts(), 1);
        assert_eq!(ring.next(HostId(0)), HostId(0));
        assert!(ring.outgoing_link(HostId(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn empty_ring_rejected() {
        let _ = RingNetwork::new(0, Link::paper_10gbe());
    }

    #[test]
    fn hops_use_independent_links() {
        let mut ring = RingNetwork::new(3, Link::paper_10gbe());
        let r0 = ring.reserve_hop(SimTime::ZERO, HostId(0), 1 << 20);
        let r1 = ring.reserve_hop(SimTime::ZERO, HostId(1), 1 << 20);
        // Different links: both start immediately, no queueing between hops.
        assert_eq!(r0.start, SimTime::ZERO);
        assert_eq!(r1.start, SimTime::ZERO);
        assert_eq!(ring.hop_bytes(HostId(0)), 1 << 20);
        assert_eq!(ring.hop_bytes(HostId(2)), 0);
    }

    #[test]
    fn same_hop_serializes() {
        let mut ring = RingNetwork::new(2, Link::paper_10gbe());
        let r0 = ring.reserve_hop(SimTime::ZERO, HostId(0), 1 << 20);
        let r1 = ring.reserve_hop(SimTime::ZERO, HostId(0), 1 << 20);
        assert_eq!(r1.start, r0.wire_free);
    }

    #[test]
    fn acks_travel_backward_without_contending() {
        let mut ring = RingNetwork::new(3, Link::paper_10gbe());
        let data = ring.reserve_hop(SimTime::ZERO, HostId(0), 1 << 20);
        let ack = ring.reserve_hop_back(SimTime::ZERO, HostId(0), 64);
        // The backward direction is free even while data occupies forward.
        assert_eq!(ack.start, SimTime::ZERO);
        assert!(ack.arrival < data.arrival);
        assert_eq!(ring.hop_bytes(HostId(0)), 1 << 20, "data bytes only");
    }

    #[test]
    fn host_ids_enumerates_all() {
        let ring = RingNetwork::new(4, Link::paper_10gbe());
        let ids: Vec<usize> = ring.host_ids().map(|h| h.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_host_ring_has_two_directed_links() {
        // In a 2-ring, H0→H1 and H1→H0 are distinct links (full duplex pairs),
        // so simultaneous forwarding in both "directions" does not contend.
        let mut ring = RingNetwork::new(2, Link::paper_10gbe());
        let a = ring.reserve_hop(SimTime::ZERO, HostId(0), 1 << 20);
        let b = ring.reserve_hop(SimTime::ZERO, HostId(1), 1 << 20);
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, SimTime::ZERO);
        assert!(a.arrival > SimTime::ZERO + SimDuration::from_micros(100));
        assert_eq!(a.arrival, b.arrival);
    }
}
