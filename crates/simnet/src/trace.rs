//! Lightweight event tracing for simulations.
//!
//! A [`Tracer`] records timestamped, host-attributed records. It is off by
//! default (zero cost beyond a branch); tests and debugging sessions enable
//! it to assert on or print the exact interleaving a simulation produced.

use std::fmt;

use crate::time::SimTime;
use crate::topology::HostId;

/// One recorded trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time of the event.
    pub time: SimTime,
    /// Host the event belongs to, if any.
    pub host: Option<HostId>,
    /// Free-form description.
    pub message: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.host {
            Some(h) => write!(f, "[{} {}] {}", self.time, h, self.message),
            None => write!(f, "[{}] {}", self.time, self.message),
        }
    }
}

/// Collects trace records when enabled; drops them when disabled.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    records: Vec<TraceRecord>,
}

impl Tracer {
    /// A disabled tracer (records nothing).
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            records: Vec::new(),
        }
    }

    /// An enabled tracer.
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            records: Vec::new(),
        }
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a host-attributed event (no-op when disabled).
    pub fn record(&mut self, time: SimTime, host: HostId, message: impl Into<String>) {
        if self.enabled {
            self.records.push(TraceRecord {
                time,
                host: Some(host),
                message: message.into(),
            });
        }
    }

    /// Records a global (host-less) event (no-op when disabled).
    pub fn record_global(&mut self, time: SimTime, message: impl Into<String>) {
        if self.enabled {
            self.records.push(TraceRecord {
                time,
                host: None,
                message: message.into(),
            });
        }
    }

    /// All records, in recording order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records whose message contains `needle`.
    pub fn matching<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a TraceRecord> {
        self.records
            .iter()
            .filter(move |r| r.message.contains(needle))
    }

    /// Number of records whose message contains `needle` (shorthand for
    /// `matching(needle).count()`, common in protocol assertions).
    pub fn count_matching(&self, needle: &str) -> usize {
        self.matching(needle).count()
    }

    /// Renders the full trace, one record per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.record(SimTime::ZERO, HostId(0), "ignored");
        t.record_global(SimTime::ZERO, "ignored");
        assert!(t.records().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_tracer_keeps_order() {
        let mut t = Tracer::enabled();
        t.record(SimTime::from_nanos(1), HostId(0), "first");
        t.record(SimTime::from_nanos(2), HostId(1), "second");
        t.record_global(SimTime::from_nanos(3), "third");
        let msgs: Vec<&str> = t.records().iter().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["first", "second", "third"]);
        assert_eq!(t.records()[2].host, None);
    }

    #[test]
    fn matching_filters_by_substring() {
        let mut t = Tracer::enabled();
        t.record(SimTime::ZERO, HostId(0), "buffer forwarded");
        t.record(SimTime::ZERO, HostId(0), "join done");
        t.record(SimTime::ZERO, HostId(1), "buffer forwarded");
        assert_eq!(t.matching("forwarded").count(), 2);
        assert_eq!(t.matching("join").count(), 1);
    }

    #[test]
    fn render_formats_lines() {
        let mut t = Tracer::enabled();
        t.record(SimTime::from_nanos(1_500), HostId(2), "hello");
        let rendered = t.render();
        assert!(rendered.contains("H2"));
        assert!(rendered.contains("hello"));
        assert!(rendered.ends_with('\n'));
    }
}
