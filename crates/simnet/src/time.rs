//! Virtual-time primitives for the discrete-event simulator.
//!
//! All simulated time is kept in integer nanoseconds, which makes event
//! ordering exact and runs deterministic: two simulations with the same
//! inputs produce bit-identical schedules. [`SimTime`] is an absolute
//! point on the virtual clock, [`SimDuration`] a span between two points.
//!
//! ```
//! use simnet::time::{SimTime, SimDuration};
//!
//! let t0 = SimTime::ZERO;
//! let t1 = t0 + SimDuration::from_micros(5);
//! assert_eq!(t1 - t0, SimDuration::from_nanos(5_000));
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute point in virtual time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the virtual clock.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; useful as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is later than self"),
        )
    }

    /// Like [`SimTime::duration_since`] but clamps to zero instead of panicking.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to whole nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration::from_secs_f64: seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The span in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span in fractional milliseconds (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Addition that clamps at [`SimDuration::MAX`] instead of overflowing.
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Subtraction that clamps at zero instead of underflowing.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: simulation ran past u64 nanoseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: subtracted duration before simulation start"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_add(rhs.0)
                .expect("SimDuration overflow in addition"),
        )
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration underflow in subtraction"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(
            self.0
                .checked_mul(rhs)
                .expect("SimDuration overflow in multiplication"),
        )
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: f64) -> SimDuration {
        assert!(
            rhs.is_finite() && rhs >= 0.0,
            "SimDuration * f64: factor must be finite and non-negative, got {rhs}"
        );
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

impl From<std::time::Duration> for SimDuration {
    fn from(d: std::time::Duration) -> Self {
        SimDuration(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

impl From<SimDuration> for std::time::Duration {
    fn from(d: SimDuration) -> Self {
        std::time::Duration::from_nanos(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_000);
        let d = SimDuration::from_nanos(234);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1_500)
        );
    }

    #[test]
    fn duration_since_saturates() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(50);
        assert_eq!(late.saturating_duration_since(early).as_nanos(), 40);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_when_reversed() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(50);
        let _ = early.duration_since(late);
    }

    #[test]
    fn float_seconds_round_trip() {
        let d = SimDuration::from_secs_f64(0.123_456_789);
        assert!((d.as_secs_f64() - 0.123_456_789).abs() < 1e-9);
    }

    #[test]
    fn scalar_multiplication_scales() {
        let d = SimDuration::from_micros(3);
        assert_eq!(d * 4u64, SimDuration::from_micros(12));
        assert_eq!(d * 0.5f64, SimDuration::from_nanos(1_500));
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_nanos(1)),
            SimDuration::MAX
        );
        assert_eq!(
            SimDuration::ZERO.saturating_sub(SimDuration::from_nanos(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total, SimDuration::from_nanos(10));
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000µs");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn std_duration_conversion() {
        let d: SimDuration = std::time::Duration::from_millis(7).into();
        assert_eq!(d, SimDuration::from_millis(7));
        let back: std::time::Duration = d.into();
        assert_eq!(back, std::time::Duration::from_millis(7));
    }

    #[test]
    fn min_max_order() {
        let a = SimDuration::from_nanos(3);
        let b = SimDuration::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
