//! # simnet — deterministic network/CPU simulation substrate
//!
//! `simnet` is the hardware-substitution layer of the cyclo-join
//! reproduction: it stands in for the six-blade RDMA cluster the paper ran
//! on. It provides
//!
//! * a deterministic **discrete-event engine** ([`engine::Simulation`])
//!   with an integer-nanosecond virtual clock,
//! * **link models** with FIFO wire occupancy and the chunk-size→goodput
//!   curve of the paper's Figure 5 ([`link::Link`],
//!   [`throughput::ChunkThroughput`]),
//! * an **RNIC model** with registered memory regions, queue pairs and
//!   completions ([`rnic`]),
//! * a **software TCP cost model** with the Figure 3 CPU breakdown
//!   ([`tcp::TcpModel`]) and a unifying [`transport::TransportModel`],
//! * **CPU accounting** per cost category for Table I-style load reports
//!   ([`cpu::CpuAccount`]),
//! * a **ring topology** ([`topology::RingNetwork`]), a free-text
//!   [`trace::Tracer`], and a structured [`span::SpanTracer`] with a unified
//!   counter registry and a Chrome trace-event (Perfetto) exporter,
//! * a deterministic **fault-injection schedule** ([`fault::FaultPlan`]):
//!   seeded host crashes, pause windows, link drops/corruption/delay
//!   spikes and straggler slowdowns for chaos testing.
//!
//! Everything is single-threaded and pure: the same inputs produce the same
//! virtual-time schedule, bit for bit.
//!
//! ```
//! use simnet::engine::Simulation;
//! use simnet::link::{Direction, Link};
//! use simnet::time::SimTime;
//!
//! // Move 16 MB over a simulated 10 GbE link and observe the virtual time.
//! let mut link = Link::paper_10gbe();
//! let r = link.reserve(SimTime::ZERO, Direction::Forward, 16 << 20);
//! let mut sim: Simulation<&str> = Simulation::new();
//! sim.schedule_at(r.arrival, "transfer done");
//! sim.run(|sim, ev| {
//!     assert_eq!(ev, "transfer done");
//!     assert!(sim.now().as_secs_f64() > 0.012); // ≥ 16 MB / 1.25 GB/s
//! });
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cpu;
pub mod disk;
pub mod engine;
pub mod event;
pub mod fault;
pub mod link;
pub mod rnic;
pub mod span;
pub mod switch;
pub mod tcp;
pub mod throughput;
pub mod time;
pub mod topology;
pub mod trace;
pub mod transport;

pub use cpu::{CostCategory, CpuAccount, CpuSpec};
pub use disk::DiskModel;
pub use engine::Simulation;
pub use fault::FaultPlan;
pub use link::{Direction, Link, Reservation};
pub use rnic::{Rnic, RnicConfig};
pub use span::{CounterRegistry, SpanKind, SpanTracer, Track};
pub use switch::SwitchFabric;
pub use tcp::TcpModel;
pub use throughput::{Bandwidth, ChunkThroughput};
pub use time::{SimDuration, SimTime};
pub use topology::{HostId, RingNetwork};
pub use trace::Tracer;
pub use transport::TransportModel;
