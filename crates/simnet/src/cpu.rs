//! Host CPU model and per-category cycle accounting.
//!
//! The paper's Figure 3 and Table I are statements about *where CPU cycles
//! go* during high-speed communication: payload copying dominates, protocol
//! processing is minor, and only RDMA frees the host CPU almost entirely.
//! [`CpuAccount`] accumulates busy core-time per [`CostCategory`] so the
//! benchmark harness can print exactly those breakdowns.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Static description of a host CPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Number of physical cores.
    pub cores: u32,
    /// Clock frequency in GHz.
    pub ghz: f64,
}

impl CpuSpec {
    /// Creates a CPU spec.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or `ghz` is not finite and positive.
    pub fn new(cores: u32, ghz: f64) -> Self {
        assert!(cores > 0, "a CPU needs at least one core");
        assert!(
            ghz.is_finite() && ghz > 0.0,
            "clock frequency must be finite and positive, got {ghz}"
        );
        CpuSpec { cores, ghz }
    }

    /// The paper's testbed CPU: quad-core Intel Xeon at 2.33 GHz.
    pub fn paper_xeon() -> Self {
        CpuSpec::new(4, 2.33)
    }

    /// Converts a cycle count into busy time on one core.
    pub fn cycles_to_time(&self, cycles: f64) -> SimDuration {
        SimDuration::from_secs_f64(cycles / (self.ghz * 1e9))
    }

    /// Total core-seconds available over a wall-clock window.
    pub fn capacity(&self, window: SimDuration) -> f64 {
        self.cores as f64 * window.as_secs_f64()
    }
}

impl Default for CpuSpec {
    fn default() -> Self {
        CpuSpec::paper_xeon()
    }
}

/// Where CPU cycles were spent. The categories mirror the stacked bars of
/// the paper's Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostCategory {
    /// Useful application work (the join itself).
    Compute,
    /// Moving payload bytes across the memory bus (kernel↔user copies).
    DataCopy,
    /// Running the TCP/IP protocol state machines.
    NetworkStack,
    /// Process/context switches and the cache pollution they cause.
    ContextSwitch,
    /// NIC driver work: interrupts, descriptor management, WR posting.
    Driver,
}

impl CostCategory {
    /// All categories, in Figure 3's stacking order.
    pub const ALL: [CostCategory; 5] = [
        CostCategory::Compute,
        CostCategory::DataCopy,
        CostCategory::NetworkStack,
        CostCategory::ContextSwitch,
        CostCategory::Driver,
    ];

    /// Index into per-category arrays.
    fn index(self) -> usize {
        match self {
            CostCategory::Compute => 0,
            CostCategory::DataCopy => 1,
            CostCategory::NetworkStack => 2,
            CostCategory::ContextSwitch => 3,
            CostCategory::Driver => 4,
        }
    }

    /// Human-readable label used in harness output.
    pub fn label(self) -> &'static str {
        match self {
            CostCategory::Compute => "compute",
            CostCategory::DataCopy => "data copying",
            CostCategory::NetworkStack => "network stack",
            CostCategory::ContextSwitch => "context switches",
            CostCategory::Driver => "driver",
        }
    }
}

impl fmt::Display for CostCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Accumulated busy core-time per cost category on one host.
///
/// Times are *core*-seconds: two cores busy for 1 s accumulate 2 s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CpuAccount {
    busy: [SimDuration; 5],
}

impl CpuAccount {
    /// An account with zero time in every category.
    pub fn new() -> Self {
        CpuAccount::default()
    }

    /// Charges `core_time` of busy time to `category`.
    pub fn charge(&mut self, category: CostCategory, core_time: SimDuration) {
        self.busy[category.index()] += core_time;
    }

    /// Busy core-time accumulated in `category`.
    pub fn busy(&self, category: CostCategory) -> SimDuration {
        self.busy[category.index()]
    }

    /// Total busy core-time across all categories.
    pub fn total_busy(&self) -> SimDuration {
        self.busy.iter().copied().sum()
    }

    /// Communication overhead: everything except useful compute.
    pub fn overhead(&self) -> SimDuration {
        self.total_busy() - self.busy(CostCategory::Compute)
    }

    /// Fraction of total busy time spent in `category` (0 if idle).
    pub fn fraction(&self, category: CostCategory) -> f64 {
        let total = self.total_busy().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.busy(category).as_secs_f64() / total
        }
    }

    /// CPU load over a wall-clock window on `spec`: busy core-seconds
    /// divided by available core-seconds, clamped to `1.0`.
    ///
    /// This is the quantity reported in the paper's Table I ("100 % refers
    /// to all four cores being completely busy").
    pub fn load(&self, spec: CpuSpec, window: SimDuration) -> f64 {
        let capacity = spec.capacity(window);
        if capacity == 0.0 {
            return 0.0;
        }
        (self.total_busy().as_secs_f64() / capacity).min(1.0)
    }

    /// Adds every category of `other` into `self`.
    pub fn merge(&mut self, other: &CpuAccount) {
        for c in CostCategory::ALL {
            self.charge(c, other.busy(c));
        }
    }
}

/// A window of CPU observation: an account plus the wall-clock span it covers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuWindow {
    /// Start of the observation window.
    pub from: SimTime,
    /// End of the observation window.
    pub to: SimTime,
    /// Busy time accumulated inside the window.
    pub account: CpuAccount,
}

impl CpuWindow {
    /// Length of the window.
    pub fn span(&self) -> SimDuration {
        self.to.saturating_duration_since(self.from)
    }

    /// Load over this window on the given CPU.
    pub fn load(&self, spec: CpuSpec) -> f64 {
        self.account.load(spec, self.span())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_converts_cycles() {
        let spec = CpuSpec::new(4, 2.0);
        // 2e9 cycles at 2 GHz = 1 s.
        assert_eq!(spec.cycles_to_time(2e9), SimDuration::from_secs(1));
    }

    #[test]
    fn capacity_scales_with_cores() {
        let spec = CpuSpec::new(4, 2.33);
        assert!((spec.capacity(SimDuration::from_secs(2)) - 8.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = CpuSpec::new(0, 1.0);
    }

    #[test]
    fn account_accumulates_per_category() {
        let mut acc = CpuAccount::new();
        acc.charge(CostCategory::Compute, SimDuration::from_millis(30));
        acc.charge(CostCategory::DataCopy, SimDuration::from_millis(50));
        acc.charge(CostCategory::DataCopy, SimDuration::from_millis(10));
        assert_eq!(
            acc.busy(CostCategory::DataCopy),
            SimDuration::from_millis(60)
        );
        assert_eq!(acc.total_busy(), SimDuration::from_millis(90));
        assert_eq!(acc.overhead(), SimDuration::from_millis(60));
    }

    #[test]
    fn fractions_sum_to_one_when_busy() {
        let mut acc = CpuAccount::new();
        for (i, c) in CostCategory::ALL.into_iter().enumerate() {
            acc.charge(c, SimDuration::from_millis((i as u64 + 1) * 10));
        }
        let sum: f64 = CostCategory::ALL.iter().map(|&c| acc.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn load_is_busy_over_capacity() {
        let spec = CpuSpec::new(4, 1.0);
        let mut acc = CpuAccount::new();
        acc.charge(CostCategory::Compute, SimDuration::from_secs(2));
        // 2 core-seconds over a 1 s window on 4 cores = 50 %.
        assert!((acc.load(spec, SimDuration::from_secs(1)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn load_clamps_at_full() {
        let spec = CpuSpec::new(1, 1.0);
        let mut acc = CpuAccount::new();
        acc.charge(CostCategory::Compute, SimDuration::from_secs(10));
        assert_eq!(acc.load(spec, SimDuration::from_secs(1)), 1.0);
    }

    #[test]
    fn merge_combines_accounts() {
        let mut a = CpuAccount::new();
        a.charge(CostCategory::Driver, SimDuration::from_nanos(5));
        let mut b = CpuAccount::new();
        b.charge(CostCategory::Driver, SimDuration::from_nanos(7));
        b.charge(CostCategory::Compute, SimDuration::from_nanos(1));
        a.merge(&b);
        assert_eq!(a.busy(CostCategory::Driver), SimDuration::from_nanos(12));
        assert_eq!(a.busy(CostCategory::Compute), SimDuration::from_nanos(1));
    }

    #[test]
    fn window_load() {
        let w = CpuWindow {
            from: SimTime::from_nanos(0),
            to: SimTime::from_nanos(1_000_000_000),
            account: {
                let mut acc = CpuAccount::new();
                acc.charge(CostCategory::Compute, SimDuration::from_secs(1));
                acc
            },
        };
        assert!((w.load(CpuSpec::new(4, 1.0)) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn idle_account_has_zero_fractions() {
        let acc = CpuAccount::new();
        assert_eq!(acc.fraction(CostCategory::Compute), 0.0);
        assert_eq!(acc.load(CpuSpec::default(), SimDuration::from_secs(1)), 0.0);
    }
}
