//! Unified view over the three transport cost models the paper compares:
//! kernel TCP, TCP-offload (TOE), and RDMA.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cpu::{CpuAccount, CpuSpec};
use crate::rnic::{rdma_transfer_account, RnicConfig};
use crate::tcp::TcpModel;

/// Which transport drives the Data Roundabout, with its cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TransportModel {
    /// Software TCP in the kernel (Berkeley sockets).
    KernelTcp(TcpModel),
    /// TCP with the protocol stack offloaded to the NIC.
    Toe(TcpModel),
    /// Remote Direct Memory Access.
    Rdma(RnicConfig),
}

impl TransportModel {
    /// Kernel TCP with the paper's default cost constants.
    pub fn kernel_tcp() -> Self {
        TransportModel::KernelTcp(TcpModel::kernel_tcp())
    }

    /// TOE with the paper's default cost constants.
    pub fn toe() -> Self {
        TransportModel::Toe(TcpModel::toe())
    }

    /// RDMA with the paper's default cost constants.
    pub fn rdma() -> Self {
        TransportModel::Rdma(RnicConfig::paper_t3())
    }

    /// True for the RDMA transport.
    pub fn is_rdma(&self) -> bool {
        matches!(self, TransportModel::Rdma(_))
    }

    /// Short name for harness output.
    pub fn name(&self) -> &'static str {
        match self {
            TransportModel::KernelTcp(_) => "TCP",
            TransportModel::Toe(_) => "TOE",
            TransportModel::Rdma(_) => "RDMA",
        }
    }

    /// Host CPU consumed to move `bytes` of payload split into `messages`
    /// transfer units (per host side: the same cost arises on sender and
    /// receiver).
    pub fn comm_cpu(&self, spec: CpuSpec, bytes: u64, messages: u64) -> CpuAccount {
        match self {
            TransportModel::KernelTcp(m) | TransportModel::Toe(m) => m.breakdown(spec, bytes),
            TransportModel::Rdma(cfg) => rdma_transfer_account(cfg, messages),
        }
    }

    /// Multiplicative slowdown suffered by compute threads while this
    /// transport is actively moving data on the same host (cache pollution
    /// plus context-switch disturbance; §V-G).
    pub fn pollution_factor(&self) -> f64 {
        match self {
            TransportModel::KernelTcp(m) | TransportModel::Toe(m) => m.cache_pollution,
            TransportModel::Rdma(_) => 1.0,
        }
    }

    /// Memory-bus traffic caused by `bytes` of payload on one host.
    pub fn bus_bytes(&self, bytes: u64) -> u64 {
        match self {
            TransportModel::KernelTcp(m) | TransportModel::Toe(m) => m.bus_bytes(bytes),
            TransportModel::Rdma(cfg) => bytes * cfg.bus_crossings as u64,
        }
    }
}

impl fmt::Display for TransportModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Default for TransportModel {
    fn default() -> Self {
        TransportModel::rdma()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn figure3_ordering_holds() {
        // Figure 3: kernel TCP > TOE >> RDMA in host CPU overhead.
        let spec = CpuSpec::paper_xeon();
        let bytes = 1u64 << 30;
        let messages = bytes / (1 << 20);
        let tcp = TransportModel::kernel_tcp()
            .comm_cpu(spec, bytes, messages)
            .total_busy();
        let toe = TransportModel::toe()
            .comm_cpu(spec, bytes, messages)
            .total_busy();
        let rdma = TransportModel::rdma()
            .comm_cpu(spec, bytes, messages)
            .total_busy();
        assert!(tcp > toe, "TCP ({tcp}) must exceed TOE ({toe})");
        assert!(toe > rdma, "TOE ({toe}) must exceed RDMA ({rdma})");
        // RDMA is more than an order of magnitude cheaper.
        assert!(rdma.as_secs_f64() * 10.0 < tcp.as_secs_f64());
    }

    #[test]
    fn only_tcp_pollutes_caches() {
        assert!(TransportModel::kernel_tcp().pollution_factor() > 1.0);
        assert!(TransportModel::toe().pollution_factor() > 1.0);
        assert_eq!(TransportModel::rdma().pollution_factor(), 1.0);
    }

    #[test]
    fn bus_traffic_ordering() {
        let payload = 1 << 20;
        let tcp = TransportModel::kernel_tcp().bus_bytes(payload);
        let toe = TransportModel::toe().bus_bytes(payload);
        let rdma = TransportModel::rdma().bus_bytes(payload);
        assert!(tcp > toe && toe > rdma);
        assert_eq!(rdma, payload);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(TransportModel::kernel_tcp().name(), "TCP");
        assert_eq!(TransportModel::toe().name(), "TOE");
        assert_eq!(TransportModel::rdma().name(), "RDMA");
        assert!(TransportModel::rdma().is_rdma());
        assert!(!TransportModel::kernel_tcp().is_rdma());
    }

    #[test]
    fn rdma_cost_scales_with_messages_not_bytes() {
        let spec = CpuSpec::paper_xeon();
        let few = TransportModel::rdma()
            .comm_cpu(spec, 1 << 30, 10)
            .total_busy();
        let many = TransportModel::rdma()
            .comm_cpu(spec, 1 << 30, 1000)
            .total_busy();
        assert!(many > few);
        assert!(many < SimDuration::from_millis(1));
    }
}
