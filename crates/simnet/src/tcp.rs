//! Software (kernel) TCP cost model.
//!
//! Traditional TCP burns host CPU in proportion to the data rate — the
//! folklore figure the paper cites (Foong et al.) is **1 GHz of CPU per
//! 1 Gb/s of throughput**, i.e. ~8 cycles per payload byte. Crucially,
//! protocol processing is *not* where the cycles go: payload copying
//! across the memory bus dominates (~50 %), followed by context switches,
//! with the actual network stack and driver work being minor (Figure 3).
//!
//! The model distinguishes plain kernel TCP from a TCP-offload-engine
//! (TOE) setup, where the protocol stack runs on the NIC but payload
//! copying and most context switching remain — which is why the paper
//! finds TOE "usually yields only little advantage".

use serde::{Deserialize, Serialize};

use crate::cpu::{CostCategory, CpuAccount, CpuSpec};
use crate::throughput::Bandwidth;
use crate::time::SimDuration;

/// How the per-byte CPU cost of software TCP splits across cost categories.
///
/// Fractions are of the *kernel TCP* total; they need not sum to 1 for
/// offloaded variants (the missing share is work moved to the NIC).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostFractions {
    /// Payload copies across the memory bus (kernel ↔ user ↔ NIC).
    pub data_copy: f64,
    /// TCP/IP protocol state machine processing.
    pub network_stack: f64,
    /// Context switches and interrupt handling.
    pub context_switch: f64,
    /// NIC driver and descriptor management.
    pub driver: f64,
}

impl CostFractions {
    /// Sum of all fractions.
    pub fn total(&self) -> f64 {
        self.data_copy + self.network_stack + self.context_switch + self.driver
    }
}

/// Cost model for software-based TCP communication on a host.
///
/// ```
/// use simnet::cpu::CpuSpec;
/// use simnet::tcp::TcpModel;
///
/// // Moving 1 GB through kernel TCP costs seconds of CPU...
/// let tcp = TcpModel::kernel_tcp();
/// let cost = tcp.cpu_time(CpuSpec::paper_xeon(), 1 << 30);
/// assert!(cost.as_secs_f64() > 1.0);
/// // ...about half of it in payload copying.
/// use simnet::cpu::CostCategory;
/// let breakdown = tcp.breakdown(CpuSpec::paper_xeon(), 1 << 30);
/// assert!(breakdown.fraction(CostCategory::DataCopy) > 0.45);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcpModel {
    /// Host CPU cycles consumed per payload byte at full software TCP.
    ///
    /// 8 cycles/byte is the "1 GHz per 1 Gb/s" rule of thumb.
    pub cycles_per_byte: f64,
    /// How the cycles split across categories.
    pub fractions: CostFractions,
    /// Memory-bus crossings per payload byte (the paper assumes 3 for
    /// kernel TCP: NIC→kernel buffer, kernel→user, plus protection copies).
    pub bus_crossings: u32,
    /// Multiplicative slowdown on co-scheduled *compute* threads caused by
    /// cache pollution and context switches when communication competes for
    /// the same cores.
    pub cache_pollution: f64,
}

impl TcpModel {
    /// Plain kernel TCP (Berkeley sockets, no offload) — Figure 3 left bar.
    pub fn kernel_tcp() -> Self {
        TcpModel {
            cycles_per_byte: 8.0,
            fractions: CostFractions {
                data_copy: 0.50,
                network_stack: 0.17,
                context_switch: 0.20,
                driver: 0.13,
            },
            bus_crossings: 3,
            cache_pollution: 1.25,
        }
    }

    /// TCP with full protocol offload to the NIC (TOE) — Figure 3 middle
    /// bar. The stack is gone and context switching is reduced, but payload
    /// copying (the dominant cost) remains.
    pub fn toe() -> Self {
        TcpModel {
            cycles_per_byte: 8.0,
            fractions: CostFractions {
                data_copy: 0.50,
                network_stack: 0.0,
                context_switch: 0.15,
                driver: 0.13,
            },
            bus_crossings: 2,
            cache_pollution: 1.18,
        }
    }

    /// Total host CPU time (core-seconds) to push or receive `bytes` of
    /// payload on the given CPU.
    pub fn cpu_time(&self, spec: CpuSpec, bytes: u64) -> SimDuration {
        spec.cycles_to_time(self.cycles_per_byte * self.fractions.total() * bytes as f64)
    }

    /// Per-category CPU account for transferring `bytes` of payload.
    pub fn breakdown(&self, spec: CpuSpec, bytes: u64) -> CpuAccount {
        let mut acc = CpuAccount::new();
        let base = self.cycles_per_byte * bytes as f64;
        let f = self.fractions;
        acc.charge(
            CostCategory::DataCopy,
            spec.cycles_to_time(base * f.data_copy),
        );
        acc.charge(
            CostCategory::NetworkStack,
            spec.cycles_to_time(base * f.network_stack),
        );
        acc.charge(
            CostCategory::ContextSwitch,
            spec.cycles_to_time(base * f.context_switch),
        );
        acc.charge(CostCategory::Driver, spec.cycles_to_time(base * f.driver));
        acc
    }

    /// The throughput ceiling one core can sustain for this model on `spec`.
    ///
    /// With 8 cycles/byte on a 2.33 GHz core that is ≈ 291 MB/s ≈ 2.3 Gb/s
    /// per core — the reason the paper's TCP runs cannot hide communication
    /// behind computation.
    pub fn per_core_rate(&self, spec: CpuSpec) -> Bandwidth {
        let cycles = self.cycles_per_byte * self.fractions.total();
        Bandwidth::from_bytes_per_sec(spec.ghz * 1e9 / cycles)
    }

    /// Memory-bus traffic generated by `bytes` of payload.
    pub fn bus_bytes(&self, bytes: u64) -> u64 {
        bytes * self.bus_crossings as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_of_thumb_holds() {
        // 1 GHz per 1 Gb/s: a 1 GHz core saturates at 1 Gb/s = 125 MB/s.
        let model = TcpModel {
            fractions: CostFractions {
                data_copy: 1.0,
                network_stack: 0.0,
                context_switch: 0.0,
                driver: 0.0,
            },
            ..TcpModel::kernel_tcp()
        };
        let rate = model.per_core_rate(CpuSpec::new(1, 1.0));
        assert!((rate.gbit_per_sec() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn copying_dominates_kernel_tcp() {
        let model = TcpModel::kernel_tcp();
        let acc = model.breakdown(CpuSpec::paper_xeon(), 1 << 30);
        // Figure 3: data copying is roughly half the total cost and larger
        // than every other single category.
        let copy = acc.fraction(CostCategory::DataCopy);
        assert!(
            (copy - 0.5).abs() < 0.02,
            "copy fraction ≈ 50 %, got {copy}"
        );
        for c in [
            CostCategory::NetworkStack,
            CostCategory::ContextSwitch,
            CostCategory::Driver,
        ] {
            assert!(acc.fraction(c) < copy);
        }
    }

    #[test]
    fn toe_saves_only_the_stack() {
        let spec = CpuSpec::paper_xeon();
        let bytes = 100 << 20;
        let tcp = TcpModel::kernel_tcp().cpu_time(spec, bytes);
        let toe = TcpModel::toe().cpu_time(spec, bytes);
        assert!(toe < tcp, "TOE must be cheaper than kernel TCP");
        // ... but only modestly so ("only little advantage").
        let saving = 1.0 - toe.as_secs_f64() / tcp.as_secs_f64();
        assert!(
            (0.1..0.4).contains(&saving),
            "TOE saving should be modest, got {saving}"
        );
    }

    #[test]
    fn cpu_time_is_linear_in_bytes() {
        let spec = CpuSpec::paper_xeon();
        let m = TcpModel::kernel_tcp();
        let t1 = m.cpu_time(spec, 1 << 20).as_secs_f64();
        let t2 = m.cpu_time(spec, 2 << 20).as_secs_f64();
        assert!((t2 / t1 - 2.0).abs() < 1e-6);
    }

    #[test]
    fn breakdown_total_matches_cpu_time() {
        let spec = CpuSpec::paper_xeon();
        let m = TcpModel::kernel_tcp();
        let bytes = 10 << 20;
        let total = m.breakdown(spec, bytes).total_busy().as_secs_f64();
        let direct = m.cpu_time(spec, bytes).as_secs_f64();
        assert!((total - direct).abs() < 1e-9);
    }

    #[test]
    fn bus_traffic_multiplies_crossings() {
        assert_eq!(TcpModel::kernel_tcp().bus_bytes(1000), 3000);
        assert_eq!(TcpModel::toe().bus_bytes(1000), 2000);
    }

    #[test]
    fn paper_bus_contention_example() {
        // §III-A: 10 Gb/s full duplex with 3 crossings ⇒ ~7.5 GB/s bus traffic.
        let m = TcpModel::kernel_tcp();
        let full_duplex_bytes_per_sec = 2.0 * 1.25e9;
        let bus = m.bus_bytes(full_duplex_bytes_per_sec as u64) as f64;
        assert!((bus - 7.5e9).abs() / 7.5e9 < 0.01);
    }
}
