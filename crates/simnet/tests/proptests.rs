//! Property-based tests of the simulation substrate's invariants.

use proptest::prelude::*;
use simnet::cpu::{CostCategory, CpuAccount};
use simnet::engine::Simulation;
use simnet::link::{Direction, Link};
use simnet::throughput::ChunkThroughput;
use simnet::time::{SimDuration, SimTime};

proptest! {
    /// Events always come out in non-decreasing time order, regardless of
    /// insertion order, and the clock never runs backwards.
    #[test]
    fn events_pop_in_time_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim: Simulation<u64> = Simulation::new();
        for &t in &times {
            sim.schedule_at(SimTime::from_nanos(t), t);
        }
        let mut observed = Vec::new();
        sim.run(|sim, t| observed.push((sim.now(), t)));
        prop_assert_eq!(observed.len(), times.len());
        for window in observed.windows(2) {
            prop_assert!(window[0].0 <= window[1].0, "clock ran backwards");
        }
        for &(now, t) in &observed {
            prop_assert_eq!(now, SimTime::from_nanos(t));
        }
    }

    /// Same-time events preserve insertion (FIFO) order.
    #[test]
    fn ties_are_fifo(n in 1usize..150) {
        let mut sim: Simulation<usize> = Simulation::new();
        for i in 0..n {
            sim.schedule_at(SimTime::from_nanos(42), i);
        }
        let mut expected = 0usize;
        while let Some(i) = sim.step() {
            prop_assert_eq!(i, expected);
            expected += 1;
        }
    }

    /// Link reservations are FIFO per direction: each transfer starts no
    /// earlier than the previous one's wire-free time, and arrival is
    /// always after start.
    #[test]
    fn link_is_fifo(sizes in prop::collection::vec(1u64..10_000_000, 1..50)) {
        let mut link = Link::paper_10gbe();
        let mut prev_free = SimTime::ZERO;
        for &bytes in &sizes {
            let r = link.reserve(SimTime::ZERO, Direction::Forward, bytes);
            prop_assert!(r.start >= prev_free.min(r.start));
            prop_assert!(r.wire_free > r.start || bytes == 0);
            prop_assert!(r.arrival > r.wire_free);
            prop_assert_eq!(r.start, prev_free.max(SimTime::ZERO));
            prev_free = r.wire_free;
        }
        let total: u64 = sizes.iter().sum();
        prop_assert_eq!(link.bytes_transferred(Direction::Forward), total);
    }

    /// Goodput is monotone in chunk size and never exceeds the peak.
    #[test]
    fn goodput_is_monotone_and_bounded(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let model = ChunkThroughput::paper_10gbe();
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(model.goodput(small).bytes_per_sec() <= model.goodput(large).bytes_per_sec() + 1e-6);
        prop_assert!(model.goodput(large).bytes_per_sec() <= model.peak().bytes_per_sec() + 1e-6);
    }

    /// Transfer time is additive-superadditive: splitting a payload into
    /// two messages is never faster than one message.
    #[test]
    fn splitting_never_helps(total in 2u64..10_000_000, cut in 1u64..100) {
        let model = ChunkThroughput::paper_10gbe();
        let first = total * cut.min(99) / 100;
        let second = total - first;
        let whole = model.transfer_time(total);
        let split = model.transfer_time(first.max(1)) + model.transfer_time(second.max(1));
        prop_assert!(split >= whole);
    }

    /// CPU account merge is commutative and total time is preserved.
    #[test]
    fn cpu_merge_commutes(xs in prop::collection::vec((0usize..5, 0u64..1_000_000), 0..40)) {
        let mut a = CpuAccount::new();
        let mut b = CpuAccount::new();
        let mut combined = CpuAccount::new();
        for (i, &(cat, nanos)) in xs.iter().enumerate() {
            let category = CostCategory::ALL[cat];
            let d = SimDuration::from_nanos(nanos);
            combined.charge(category, d);
            if i % 2 == 0 {
                a.charge(category, d);
            } else {
                b.charge(category, d);
            }
        }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(ab.total_busy(), combined.total_busy());
    }
}

// run_until never processes events beyond the deadline.
proptest! {
    #[test]
    fn run_until_respects_deadlines(
        times in prop::collection::vec(0u64..1_000, 1..50),
        deadline in 0u64..1_000,
    ) {
        let mut sim: Simulation<u64> = Simulation::new();
        for &t in &times {
            sim.schedule_at(SimTime::from_nanos(t), t);
        }
        let mut seen = Vec::new();
        sim.run_until(SimTime::from_nanos(deadline), |_, t| seen.push(t));
        prop_assert!(seen.iter().all(|&t| t <= deadline));
        let expected = times.iter().filter(|&&t| t <= deadline).count();
        prop_assert_eq!(seen.len(), expected);
    }
}
