//! The five safety invariant families, checked at every explored state.
//!
//! Each check receives the [`World`] (for environment state: pending
//! wires, the retire ledger), the freshly-taken [`StateSnapshot`] of the
//! protocol, the [`StepOutcome`] of the transition that produced the
//! state, and the parent state's membership epoch. A violation returns
//! the family name plus a human-readable detail line; the explorer
//! attaches the shortest input trace.

use data_roundabout::protocol::{QueryStatus, StateSnapshot};
use data_roundabout::HostId;

use crate::model::{Ev, StepOutcome, World};

/// Checks every per-state invariant family. Stuck-state detection (I5)
/// lives in the explorer — it needs the state's outgoing transitions.
pub fn check(
    world: &World,
    snap: &StateSnapshot,
    outcome: &StepOutcome,
    parent_epoch: u64,
) -> Option<(&'static str, String)> {
    if let Some(reason) = outcome.teardown {
        // Budgets are sized so the failure detector can never
        // legitimately exhaust a retransmission budget against a live
        // host: any teardown in-bounds is a protocol failure.
        return Some(("teardown", format!("protocol tore down: {reason}")));
    }
    if outcome.double_retire {
        return Some((
            "exactly-once-retire",
            "a fragment emitted Retire twice".to_string(),
        ));
    }
    credit_conservation(world, snap)
        .or_else(|| exactly_once_copy(world, snap))
        .or_else(|| role_ledger(world, snap))
        .or_else(|| epoch_accounting(snap, parent_epoch))
        .or_else(|| credit_partition(world, snap))
}

/// I1 — credit conservation. Every occupied buffer-pool element of a
/// live host is explained by a pooled held envelope or by an unaccepted
/// in-flight transfer that reserved the slot at send time (on the
/// classic path, by a pending wire copy); and no pool overflows.
fn credit_conservation(world: &World, snap: &StateSnapshot) -> Option<(&'static str, String)> {
    let cfg = world.proto.config();
    let crashed = snap.fault.as_ref().map_or(0u64, |f| f.crashed);
    for (h, host) in snap.hosts.iter().enumerate() {
        if crashed & (1u64 << h) != 0 {
            continue; // a corpse's frozen counters are settled by salvage
        }
        if host.pool_used > cfg.buffers_per_host {
            return Some((
                "credit-conservation",
                format!(
                    "host {h} pool overflow: {} used of {}",
                    host.pool_used, cfg.buffers_per_host
                ),
            ));
        }
        let held: usize = host.incoming.iter().filter(|e| e.pooled).count()
            + usize::from(host.processing.as_ref().is_some_and(|p| p.pooled));
        let reserved = match &snap.fault {
            Some(f) => {
                let ledgered = f
                    .in_flight
                    .iter()
                    .filter(|e| e.to == h && f.accepted.binary_search(&e.tid).is_err())
                    .count();
                // A sender's death can orphan a still-riding intact copy
                // (the ledger entry is dropped, the wire copy delivers
                // later): the receive slot reserved at send time stays
                // reserved for it until delivery claims it. One slot per
                // transfer, however many late copies ride.
                let mut orphans: Vec<u64> = world
                    .pending
                    .iter()
                    .filter_map(|e| match e {
                        Ev::Wire {
                            to,
                            tid,
                            intact: true,
                            ..
                        } if *to == h
                            && f.in_flight.iter().all(|x| x.tid != *tid)
                            && f.accepted.binary_search(tid).is_err()
                            && f.requeued.binary_search(tid).is_err() =>
                        {
                            Some(*tid)
                        }
                        _ => None,
                    })
                    .collect();
                orphans.sort_unstable();
                orphans.dedup();
                ledgered + orphans.len()
            }
            None => world
                .pending
                .iter()
                .filter(|e| matches!(e, Ev::Wire { to, .. } if *to == h))
                .count(),
        };
        if host.pool_used != held + reserved {
            return Some((
                "credit-conservation",
                format!(
                    "host {h} pool_used {} but {held} pooled envelope(s) + \
                     {reserved} reserved in-flight slot(s)",
                    host.pool_used
                ),
            ));
        }
    }
    None
}

/// I2 — exactly-once join and delivery per fragment. At every state an
/// unretired fragment has exactly one live copy: queued at some host
/// (crashed-but-unconfirmed corpses included — their copies are the
/// salvage source), held as an in-flight master, or riding an orphan
/// wire whose ledger entry was dropped by a sender's death (counted once
/// per transfer id — multiple pending copies of one transfer are
/// attempts of the *same* delivery). A retired fragment has none.
fn exactly_once_copy(world: &World, snap: &StateSnapshot) -> Option<(&'static str, String)> {
    let cfg = world.proto.config();
    let total = world.proto.fragments_total();
    let all_hosts_mask = if cfg.hosts >= 64 {
        u64::MAX
    } else {
        (1u64 << cfg.hosts) - 1
    };
    for fid in 0..total {
        let queued: usize = snap
            .hosts
            .iter()
            .map(|h| {
                h.incoming.iter().filter(|e| e.env.id == fid).count()
                    + usize::from(h.processing.as_ref().is_some_and(|p| p.env.id == fid))
                    + h.outgoing.iter().filter(|e| e.id == fid).count()
            })
            .sum();
        let mut in_flight = 0usize;
        let mut orphan_tids: Vec<u64> = Vec::new();
        if let Some(f) = &snap.fault {
            in_flight = f
                .in_flight
                .iter()
                .filter(|e| e.env.id == fid && f.accepted.binary_search(&e.tid).is_err())
                .count();
            for ev in &world.pending {
                let Ev::Wire {
                    tid, intact, env, ..
                } = ev
                else {
                    continue;
                };
                let settled =
                    f.accepted.binary_search(tid).is_ok() || f.requeued.binary_search(tid).is_ok();
                let ledgered = f.in_flight.iter().any(|e| e.tid == *tid);
                if env.id.0 == fid && *intact && !settled && !ledgered {
                    orphan_tids.push(*tid);
                }
            }
            orphan_tids.sort_unstable();
            orphan_tids.dedup();
        } else {
            // Classic path: the pending wire copy is the one copy.
            orphan_tids.extend(world.pending.iter().enumerate().filter_map(|(i, e)| {
                matches!(e, Ev::Wire { env, .. } if env.id.0 == fid).then_some(i as u64)
            }));
        }
        // Multi-tenant rings park an unadmitted query's envelopes in the
        // admission ledger: each is that fragment's one live copy until
        // admission injects it into its origin host.
        let held_pending = world.proto.query_ledger().map_or(0, |ledger| {
            (0..ledger.len() as u32)
                .filter_map(|q| ledger.entry(q))
                .filter(|e| e.status == QueryStatus::Pending)
                .flat_map(|e| e.batches.iter().flatten())
                .filter(|env| env.id.0 == fid)
                .count()
        });
        let copies = queued + in_flight + orphan_tids.len() + held_pending;
        let retired = world.retired & (1u64 << fid) != 0;
        let want = usize::from(!retired);
        if copies != want {
            return Some((
                "exactly-once-copy",
                format!(
                    "fragment {fid} ({}) has {copies} live copies \
                     ({queued} queued, {in_flight} in flight, {} orphan wires, \
                     {held_pending} held by admission)",
                    if retired { "retired" } else { "unretired" },
                    orphan_tids.len()
                ),
            ));
        }
        if let Some(f) = &snap.fault {
            let bad_visited = snap
                .hosts
                .iter()
                .flat_map(|h| {
                    h.incoming
                        .iter()
                        .map(|e| e.env)
                        .chain(h.processing.as_ref().map(|p| p.env))
                        .chain(h.outgoing.iter().copied())
                })
                .chain(f.in_flight.iter().map(|e| e.env))
                .find(|e| e.id == fid && e.visited & !all_hosts_mask != 0);
            if let Some(e) = bad_visited {
                return Some((
                    "exactly-once-copy",
                    format!(
                        "fragment {fid} visited mask {:#b} exceeds the host universe",
                        e.visited
                    ),
                ));
            }
        }
    }
    None
}

/// I3 — role-ledger exactly-once. Joins, drains, handoffs and crash
/// healing move roles between hosts but never create or destroy one:
/// the union of the per-host role tables is always a permutation of the
/// initial member set.
fn role_ledger(world: &World, snap: &StateSnapshot) -> Option<(&'static str, String)> {
    let Some(f) = &snap.fault else {
        return None;
    };
    let cfg = world.proto.config();
    let expected: Vec<usize> = (0..cfg.hosts)
        .filter(|h| cfg.standby & (1u64 << h) == 0)
        .collect();
    let mut actual: Vec<usize> = f.roles.iter().flatten().copied().collect();
    actual.sort_unstable();
    if actual != expected {
        return Some((
            "role-exactly-once",
            format!("role multiset {actual:?} differs from initial members {expected:?}"),
        ));
    }
    None
}

/// I4 — membership-epoch accounting. The epoch counts completed planned
/// transitions exactly (joins + drains) and never moves backwards.
fn epoch_accounting(snap: &StateSnapshot, parent_epoch: u64) -> Option<(&'static str, String)> {
    let Some(f) = &snap.fault else {
        return None;
    };
    let m = &f.membership;
    if m.epoch != m.joins + m.drains {
        return Some((
            "epoch-accounting",
            format!(
                "epoch {} != joins {} + drains {}",
                m.epoch, m.joins, m.drains
            ),
        ));
    }
    if m.epoch < parent_epoch {
        return Some((
            "epoch-accounting",
            format!("epoch regressed from {parent_epoch} to {}", m.epoch),
        ));
    }
    None
}

/// I6 — per-query credit partition (multi-tenant rings only). Every
/// live host's per-query slot usage respects the partition width
/// (`buffers / max_active`, at least one), the per-query usages sum to
/// exactly the host's occupied pool, and a query never completes more
/// fragments than it submitted. Single-query rings have no ledger and
/// skip the check.
fn credit_partition(world: &World, snap: &StateSnapshot) -> Option<(&'static str, String)> {
    let ledger = world.proto.query_ledger()?;
    let crashed = snap.fault.as_ref().map_or(0u64, |f| f.crashed);
    for (h, host) in snap.hosts.iter().enumerate() {
        if crashed & (1u64 << h) != 0 {
            continue;
        }
        let used = world.proto.host(HostId(h)).used_by_query();
        for (q, &n) in used.iter().enumerate() {
            if n > ledger.quota() {
                return Some((
                    "credit-partition",
                    format!(
                        "host {h} holds {n} slot(s) for query {q}, quota {}",
                        ledger.quota()
                    ),
                ));
            }
        }
        let partitioned: usize = used.iter().sum();
        if partitioned != host.pool_used {
            return Some((
                "credit-partition",
                format!(
                    "host {h} per-query usage sums to {partitioned} but pool_used is {}",
                    host.pool_used
                ),
            ));
        }
    }
    for q in 0..ledger.len() as u32 {
        let entry = ledger.entry(q)?;
        if entry.completed > entry.total {
            return Some((
                "credit-partition",
                format!(
                    "query {q} completed {} of {} fragments",
                    entry.completed, entry.total
                ),
            ));
        }
        if entry.status == QueryStatus::Pending && entry.completed != 0 {
            return Some((
                "credit-partition",
                format!(
                    "query {q} is still pending but completed {} fragment(s)",
                    entry.completed
                ),
            ));
        }
    }
    None
}

/// The membership epoch of a snapshot (0 on the classic path) — threaded
/// through the search as `parent_epoch` for the monotonicity check.
pub fn epoch_of(snap: &StateSnapshot) -> u64 {
    snap.fault.as_ref().map_or(0, |f| f.membership.epoch)
}

/// I5 — the quiescence side of the stuck-state check: does this world
/// still hold undelivered work reachable by a live host? The explorer
/// flags a violation when a quiescent state (no enabled transition
/// changes the fingerprint) answers yes. Work wedged solely on a
/// crashed-but-undetectable corpse is the documented allowed stall: with
/// nothing in flight toward it, no timeout can ever implicate it.
pub fn live_work(snap: &StateSnapshot) -> Option<String> {
    let crashed = snap.fault.as_ref().map_or(0u64, |f| f.crashed);
    for (h, host) in snap.hosts.iter().enumerate() {
        if crashed & (1u64 << h) != 0 {
            continue;
        }
        if let Some(e) = host
            .incoming
            .iter()
            .map(|e| e.env)
            .chain(host.processing.as_ref().map(|p| p.env))
            .chain(host.outgoing.iter().copied())
            .next()
        {
            return Some(format!("fragment {} is queued at live host {h}", e.id));
        }
    }
    if let Some(f) = &snap.fault {
        // An in-flight transfer is live work only while its sender
        // lives: the retransmission machinery (and the master copy) sit
        // at the sender, so a crashed sender's entry is work wedged on
        // the corpse — the allowed stall, unless a wire copy survives
        // (a pending wire event keeps the state non-quiescent anyway).
        if let Some(e) = f
            .in_flight
            .iter()
            .find(|e| f.crashed & (1u64 << e.from) == 0)
        {
            return Some(format!("transfer {} is still in flight", e.tid));
        }
    }
    None
}
